//! `home` — the command-line front end of the checker.
//!
//! ```text
//! home check   <file.hmp> [--procs N] [--threads N] [--seeds a,b,c] [--jobs N] [--faithful]
//!                          [--fail-seed a,b] [--engine batch|stream]
//!                          [--pct-depth D] [--pins thread:prio,...]
//! home explore <file.hmp> [--budget N] [--strategy pct|random|directed|all] [--depth D]
//!                          [--procs N] [--threads N] [--jobs N] [--seed S]
//! home watch   <file.hmp> [--procs N] [--threads N] [--seeds a,b,c] [--faithful]
//!                          [--fail-seed a,b] [--flush every|seed|end]
//! home static  <file.hmp> [--json]
//! home run     <file.hmp> [--procs N] [--threads N] [--seed S] [--tool base|home|marmot|itc]
//!                          [--trace-out trace.json]
//! home record  <file.hmp> -o trace.hbt [--procs N] [--threads N] [--seeds a,b,c] [--faithful]
//!                          [--compress]
//! home replay  <trace.hbt|-> [--jobs N] [--run SEED] [--batch N]
//! home analyze <trace.json|trace.hbt|-> [--jobs N] [--batch N]
//! home serve   --socket path.sock [--max-sessions N] [--status|--stop]
//! home submit  <trace.hbt> --socket path.sock [--json]
//! home fmt     <file.hmp>
//! home help
//! ```
//!
//! * `check`   — the full HOME pipeline; exits nonzero if violations found.
//! * `explore` — guided schedule-space search over one program: PCT priority
//!   schedules, race-directed rescheduling of suspects, and DPOR-lite
//!   fingerprint dedup; every finding carries a token `check` reproduces.
//! * `watch`   — live mode: the same pipeline on the streaming engine, but
//!   each violation is printed the moment its evidence is complete, while
//!   the simulation is still running. Same verdicts and exit codes as
//!   `check`.
//! * `static`  — compile-time phase only: per-site instrumentation decisions,
//!   per-site monitored-variable sets, and static deadlock/violation
//!   candidates (`--json` dumps the full report; exit 1 on candidates).
//! * `run`     — execute once on the simulators and report timing/events;
//!   `--trace-out` dumps the recorded event trace as JSON.
//! * `record`  — run the check seeds, streaming every event into a compact
//!   binary HBT trace file instead of detecting.
//! * `replay`  — offline detection over a recorded HBT trace; same verdicts
//!   and exit codes as `check` on the same program/seeds (deadlocks excepted:
//!   a deadlocked run has no terminal event to replay). `--run SEED` seeks
//!   straight to one recorded run via the v2 index and replays only it.
//! * `analyze` — offline mode: run the dynamic phase + rule matching over a
//!   previously dumped trace (the paper's offline analysis). Accepts JSON or
//!   HBT, auto-detected by magic bytes; `-` reads from stdin.
//! * `serve`   — multi-tenant collector daemon on a Unix socket: accepts
//!   many concurrent HBT streams, analyzes each with the same engine as
//!   `replay`, aggregates verdicts across runs. `--status` prints the
//!   fleet report of a running daemon; `--stop` shuts it down.
//! * `submit`  — send a recorded HBT trace to a running daemon and print
//!   its verdict; same exit codes as `replay` on the same trace.
//! * `fmt`     — parse and reprint in canonical form.
//! * `help`    — print the command and option reference.

// The CLI never panics on user input: every failure is a diagnostic plus a
// documented exit code (0 clean, 1 findings, 2 usage/input, 3 partial).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use home::baselines::Tool;
use home::prelude::*;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set after the first failed stdout write (typically `EPIPE` from a
/// downstream consumer like `| head` exiting early). Further output is
/// suppressed — a bare `println!` would panic — and the process still
/// exits with the verdict it computed; a single stderr note marks the cut.
static STDOUT_CLOSED: AtomicBool = AtomicBool::new(false);

/// Write one stdout record, EPIPE-safe. Every CLI stdout write goes
/// through here: a closed pipe can never panic the checker or make it
/// misreport its exit code.
fn emit(args: std::fmt::Arguments<'_>, newline: bool) {
    use std::io::Write;
    if STDOUT_CLOSED.load(Ordering::Relaxed) {
        return;
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = out
        .write_fmt(args)
        .and_then(|()| {
            if newline {
                out.write_all(b"\n")
            } else {
                Ok(())
            }
        })
        .and_then(|()| out.flush());
    if result.is_err() && !STDOUT_CLOSED.swap(true, Ordering::Relaxed) {
        eprintln!("home: standard output closed; suppressing further output (exit code still reflects the verdict)");
    }
}

macro_rules! oprintln {
    () => { emit(format_args!(""), true) };
    ($($arg:tt)*) => { emit(format_args!($($arg)*), true) };
}

macro_rules! oprint {
    ($($arg:tt)*) => { emit(format_args!($($arg)*), false) };
}

const USAGE: &str =
    "usage: home <check|explore|watch|serve|static|run|record|replay|analyze|submit|fmt|help> [<file>] [options]";

fn print_help() {
    oprintln!("home — detect thread-safety violations in hybrid OpenMP/MPI programs");
    oprintln!();
    oprintln!("{USAGE}");
    oprintln!();
    oprintln!("commands:");
    oprintln!("  check   <file.hmp>   full pipeline: static analysis, multi-seed simulation,");
    oprintln!("                       race detection, violation matching; exit 1 on findings");
    oprintln!("  explore <file.hmp>   guided schedule-space search: PCT priority schedules,");
    oprintln!("                       race-directed rescheduling, fingerprint dedup; each");
    oprintln!("                       finding carries a token `check` reproduces");
    oprintln!("  watch   <file.hmp>   live mode: the same pipeline on the streaming engine,");
    oprintln!("                       printing each violation the moment its evidence is");
    oprintln!("                       complete, while the simulation runs; same exit codes");
    oprintln!("  static  <file.hmp>   compile-time phase only: per-site instrumentation");
    oprintln!("                       decisions, per-site monitored-variable sets, and static");
    oprintln!("                       deadlock/violation candidates; --json dumps the full");
    oprintln!("                       report; exit 1 when candidates are found");
    oprintln!("  run     <file.hmp>   one simulated execution; report timing and events");
    oprintln!("  record  <file.hmp>   run the check seeds and stream every event into a");
    oprintln!("                       compact binary HBT trace (-o trace.hbt)");
    oprintln!("  replay  <trace.hbt>  offline detection over a recorded trace; same");
    oprintln!("                       verdicts and exit codes as `check`");
    oprintln!("  analyze <trace>      offline dynamic phase over a previously dumped trace;");
    oprintln!("                       JSON or HBT auto-detected, `-` reads stdin");
    oprintln!("  serve                collector daemon on a Unix socket: ingest many HBT");
    oprintln!("                       streams concurrently, aggregate verdicts across runs");
    oprintln!("  submit  <trace.hbt>  send a recorded trace to a running daemon and print");
    oprintln!("                       its verdict; same exit codes as replay");
    oprintln!("  fmt     <file.hmp>   parse and reprint in canonical form");
    oprintln!("  help                 print this reference");
    oprintln!();
    oprintln!("check options:");
    oprintln!("  --procs N       MPI processes to simulate (default 2)");
    oprintln!("  --threads N     OpenMP threads per process (default 2)");
    oprintln!("  --seeds a,b,c   scheduler seeds to explore (default 1,2,3,4)");
    oprintln!("  --jobs N        worker threads for the seed/rank fan-out;");
    oprintln!("                  1 = serial, default = available parallelism.");
    oprintln!("                  The report is identical for every value.");
    oprintln!("  --faithful      time-faithful scheduling instead of randomized");
    oprintln!("  --fail-seed a,b inject a deliberate failure into the listed seeds");
    oprintln!("                  (fault-isolation testing; the other seeds still run");
    oprintln!("                  and the partial report exits with code 3)");
    oprintln!("  --engine E      detection engine: `batch` (default) materializes each");
    oprintln!("                  seed's trace before detecting; `stream` detects online");
    oprintln!("                  while the program runs, retiring dead segments as");
    oprintln!("                  regions join. The report is identical either way.");
    oprintln!("  --pct-depth D   schedule under PCT priorities with D change points");
    oprintln!("                  (reproduces `explore` pct findings; implies the");
    oprintln!("                  priority scheduler, incompatible with --faithful)");
    oprintln!("  --pins t:p,...  pin named scheduler threads to fixed priorities");
    oprintln!("                  (reproduces `explore` directed findings)");
    oprintln!();
    oprintln!("explore options:");
    oprintln!("  --budget N      total schedules to attempt (default 64); deduplicated");
    oprintln!("                  and failed schedules count against the budget");
    oprintln!("  --strategy S    pct | random | directed | all (default all):");
    oprintln!("                  pct = PCT priority schedules; random = seeded uniform");
    oprintln!("                  baseline; directed = random plus race-directed flips");
    oprintln!("                  of every suspect; all = pct plus directed flips");
    oprintln!("  --depth D       PCT priority-change points per schedule (default 3)");
    oprintln!("  --seed S        first base-schedule seed (default 1)");
    oprintln!("  --procs N / --threads N / --jobs N   as in check; the report is");
    oprintln!("                  byte-identical for every --jobs value");
    oprintln!();
    oprintln!("watch options:");
    oprintln!("  --procs N / --threads N / --seeds a,b,c / --faithful / --fail-seed a,b");
    oprintln!("                  as in check (the engine is always `stream`; seeds run");
    oprintln!("                  serially so the live output order is deterministic)");
    oprintln!("  --flush P       when to print: `every` (default) prints each violation");
    oprintln!("                  as it fires plus a per-seed summary line; `seed` prints");
    oprintln!("                  each seed's deduplicated findings when that seed ends;");
    oprintln!("                  `end` prints only the final report, like check");
    oprintln!();
    oprintln!("record options:");
    oprintln!("  -o trace.hbt    output path for the binary trace (required)");
    oprintln!("  --compress      write HBT v2: per-section LZ-compressed frames plus a");
    oprintln!("                  seek index, enabling parallel `replay --jobs N` decode");
    oprintln!("  --procs N / --threads N / --seeds a,b,c / --faithful   as in check");
    oprintln!();
    oprintln!("replay / analyze options:");
    oprintln!("  --jobs N        decode workers for seek-indexed (v2) traces;");
    oprintln!("                  default = available parallelism. The verdict is");
    oprintln!("                  identical for every value; v1 traces and stdin");
    oprintln!("                  pipes decode serially regardless");
    oprintln!("  --run SEED      (replay only) seek to the one recorded run with this");
    oprintln!("                  scheduler seed via the v2 index and replay only its");
    oprintln!("                  frames; a miss lists the seeds the trace does hold");
    oprintln!("  --batch N       feed granularity of the detection engine: events go");
    oprintln!("                  in N-sized batches (default: one batch per section).");
    oprintln!("                  The verdict is byte-identical for every value");
    oprintln!();
    oprintln!("run options:");
    oprintln!("  --procs N / --threads N   as above");
    oprintln!("  --seed S                  scheduler seed (default 7)");
    oprintln!("  --tool base|home|marmot|itc  instrumentation profile (default base)");
    oprintln!("  --trace-out trace.json    dump the recorded event trace as JSON");
    oprintln!();
    oprintln!("serve options:");
    oprintln!("  --socket path.sock  Unix socket to listen on (required)");
    oprintln!("  --max-sessions N    concurrent ingest sessions before new streams");
    oprintln!("                      block on the backpressure gate (default 64)");
    oprintln!("  --status            print a running daemon's JSON fleet report and exit");
    oprintln!("  --stop              shut a running daemon down and exit");
    oprintln!();
    oprintln!("submit options:");
    oprintln!("  --socket path.sock  the daemon's Unix socket (required)");
    oprintln!("  --json              print the daemon's raw JSON reply instead of text");
    oprintln!();
    oprintln!("exit codes: 0 clean, 1 violations or deadlock found, 2 usage or input error,");
    oprintln!("            3 partial results (one or more seeds failed; see the report)");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("help") | Some("--help") | Some("-h")
    ) {
        print_help();
        return ExitCode::SUCCESS;
    }
    // `serve` takes no file argument; route it before the <cmd> <file>
    // extraction below.
    if args.first().map(String::as_str) == Some("serve") {
        return cmd_serve(&args);
    }
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) if !f.starts_with("--") => (c.as_str(), f.as_str()),
        _ => {
            eprintln!("{USAGE}");
            eprintln!("run `home help` for details");
            return ExitCode::from(2);
        }
    };

    // Trace-consuming commands read raw bytes (HBT is binary and `-` means
    // stdin), so they branch off before the program-source path.
    if cmd == "analyze" {
        return cmd_analyze(file, &args);
    }
    if cmd == "replay" {
        return cmd_replay(file, &args);
    }
    if cmd == "submit" {
        return cmd_submit(file, &args);
    }

    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("home: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let program = match parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("home: {file}: {e}");
            return ExitCode::from(2);
        }
    };

    match cmd {
        "check" => cmd_check(&program, &args),
        "explore" => cmd_explore(&program, file, &args),
        "watch" => cmd_watch(&program, &args),
        "static" => cmd_static(&program, &args),
        "run" => cmd_run(&program, &args),
        "record" => cmd_record(&program, &args),
        "fmt" => {
            oprint!("{}", print_program(&program));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("home: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

/// A trace argument opened for reading. File paths are memory-mapped so
/// HBT records decode zero-copy straight from the page cache; `-` peeks
/// only standard input's magic bytes, so an HBT pipe streams through the
/// chunked reader with bounded memory instead of being buffered whole.
enum TraceInput {
    Mapped(home::stream::HbtMmapReader),
    Stdin { prefix: Vec<u8> },
}

impl TraceInput {
    fn open(file: &str) -> Result<TraceInput, String> {
        if file == "-" {
            // Peek just enough of stdin to classify the format. A pipe
            // shorter than the magic is classified by what it has.
            let mut prefix = vec![0u8; home::stream::HBT_MAGIC.len()];
            let mut filled = 0;
            while filled < prefix.len() {
                match std::io::Read::read(&mut std::io::stdin().lock(), &mut prefix[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(format!("cannot read stdin: {e}")),
                }
            }
            prefix.truncate(filled);
            Ok(TraceInput::Stdin { prefix })
        } else {
            match home::stream::HbtMmapReader::open(file) {
                Ok(reader) => Ok(TraceInput::Mapped(reader)),
                Err(e) => Err(format!("cannot read {file}: {e}")),
            }
        }
    }

    fn is_hbt(&self) -> bool {
        match self {
            TraceInput::Mapped(reader) => home::stream::is_hbt(reader.bytes()),
            TraceInput::Stdin { prefix } => home::stream::is_hbt(prefix),
        }
    }

    /// Analyze the trace with the shared session-driven verdict path.
    /// Mapped files decode frame-parallel across `jobs` workers
    /// ([`home::core::decode_trace`]); stdin streams record-at-a-time
    /// through [`home::serve::analyze_stream`] — same verdict, bounded
    /// memory, `jobs` irrelevant because a pipe cannot seek.
    fn analyze_hbt(
        &self,
        jobs: usize,
        batch: Option<usize>,
    ) -> Result<home::serve::TraceOutcome, HomeError> {
        match self {
            TraceInput::Mapped(reader) => {
                let sections = home::core::decode_trace(reader.bytes(), jobs)?;
                home::serve::analyze_sections_batched(&sections, batch)
            }
            TraceInput::Stdin { prefix } => {
                let rest = std::io::stdin().lock();
                home::serve::analyze_stream(std::io::Read::chain(
                    std::io::Cursor::new(prefix.clone()),
                    rest,
                ))
            }
        }
    }

    /// The remaining input as one buffer (JSON traces and `submit`, which
    /// forwards raw bytes). Only here does stdin get slurped.
    fn read_all(&self) -> Result<std::borrow::Cow<'_, [u8]>, String> {
        match self {
            TraceInput::Mapped(reader) => Ok(std::borrow::Cow::Borrowed(reader.bytes())),
            TraceInput::Stdin { prefix } => {
                let mut buf = prefix.clone();
                std::io::Read::read_to_end(&mut std::io::stdin().lock(), &mut buf)
                    .map_err(|e| format!("cannot read stdin: {e}"))?;
                Ok(std::borrow::Cow::Owned(buf))
            }
        }
    }
}

/// Parse `--jobs` for the trace-consuming commands (replay/analyze):
/// decode workers for the frame-parallel path, default = available
/// parallelism. The verdict is identical for every value.
fn trace_jobs(args: &[String]) -> Result<usize, String> {
    let jobs = usize_flag(args, "--jobs", home::dynamic::default_jobs())?;
    if jobs == 0 {
        return Err("invalid value `0` for --jobs: expected at least 1".into());
    }
    Ok(jobs)
}

/// Parse `--batch N` (replay/analyze feed granularity): `None` when
/// absent — each section feeds as one whole batch, the fastest path.
/// Verdicts are byte-identical for every granularity.
fn trace_batch(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--batch")? {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "invalid value `{v}` for --batch: expected a batch size of at least 1"
            )),
        },
    }
}

/// Render a combined trace verdict (`replay`/`analyze` over HBT input)
/// and map it to the documented exit code.
fn print_outcome(label: &str, outcome: &home::serve::TraceOutcome) -> ExitCode {
    oprintln!(
        "{label}: {} run(s), {} events, {} monitored race(s), {} violation(s)",
        outcome.sections.len(),
        outcome.events,
        outcome.races,
        outcome.violations.len()
    );
    if outcome.unclassified > 0 {
        oprintln!(
            "warning: {} monitored race(s) lacked MPI call metadata and were not classified",
            outcome.unclassified
        );
    }
    for v in &outcome.violations {
        oprintln!("  - {v}");
    }
    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Value of `name`, if the flag is present. A flag at the end of the
/// argument list with no value following it is an error, not a silent miss.
fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.as_str())),
            None => Err(format!("missing value for {name}")),
        },
    }
}

/// Parse `name`'s value as an unsigned integer, defaulting when absent.
/// An unparseable value is an error (exit 2), never a silent default.
fn usize_flag(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, name)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            format!("invalid value `{v}` for {name}: expected a non-negative integer")
        }),
    }
}

/// Print a usage error and yield exit code 2.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("home: {message}");
    eprintln!("run `home help` for details");
    ExitCode::from(2)
}

/// Parse a comma-separated seed list (`--seeds` / `--fail-seed`).
fn parse_seed_list(value: &str, flag: &str) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    for part in value.split(',') {
        let part = part.trim();
        seeds.push(part.parse::<u64>().map_err(|_| {
            format!("invalid seed `{part}` in {flag}: expected a comma-separated list of integers")
        })?);
    }
    if seeds.is_empty() {
        return Err(format!("{flag} needs a comma-separated list of integers"));
    }
    Ok(seeds)
}

/// Parse `--pins thread:priority,...` (the directed-reschedule pins an
/// `explore` token prints). Names are scheduler thread names (`rank0`,
/// `rank1.r4.t1`); priorities may be negative.
fn parse_pins(value: &str) -> Result<Vec<(String, i64)>, String> {
    let mut pins = Vec::new();
    for part in value.split(',') {
        let part = part.trim();
        let (name, prio) = match part.rsplit_once(':') {
            Some(split) => split,
            None => {
                return Err(format!(
                    "invalid pin `{part}` in --pins: expected thread:priority"
                ))
            }
        };
        if name.is_empty() {
            return Err(format!("invalid pin `{part}` in --pins: empty thread name"));
        }
        let prio: i64 = prio
            .parse()
            .map_err(|_| format!("invalid priority `{prio}` in --pins: expected an integer"))?;
        pins.push((name.to_string(), prio));
    }
    Ok(pins)
}

fn cmd_check(program: &Program, args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<CheckOptions, String> {
        let mut options = CheckOptions::new(
            usize_flag(args, "--procs", 2)?,
            usize_flag(args, "--threads", 2)?,
        );
        if let Some(seeds) = flag_value(args, "--seeds")? {
            options.seeds = parse_seed_list(seeds, "--seeds")?;
        }
        let jobs = usize_flag(args, "--jobs", home::dynamic::default_jobs())?;
        if jobs == 0 {
            return Err("invalid value `0` for --jobs: expected at least 1".into());
        }
        options = options.with_jobs(jobs);
        if args.iter().any(|a| a == "--faithful") {
            options.sched_policy = SchedPolicy::EarliestClockFirst;
        }
        // Priority-schedule reproduction flags (the tokens `explore`
        // prints): --pct-depth replays a PCT schedule, --pins a directed
        // flip. Either selects the priority scheduler outright.
        let pct_depth = match flag_value(args, "--pct-depth")? {
            None => None,
            Some(v) => Some(v.parse::<u8>().map_err(|_| {
                format!("invalid value `{v}` for --pct-depth: expected an integer in 0..=255")
            })?),
        };
        let pins = match flag_value(args, "--pins")? {
            None => Vec::new(),
            Some(v) => parse_pins(v)?,
        };
        if (pct_depth.is_some() || !pins.is_empty()) && args.iter().any(|a| a == "--faithful") {
            return Err(
                "--pct-depth/--pins select the priority scheduler and cannot combine with --faithful"
                    .into(),
            );
        }
        if let Some(depth) = pct_depth {
            options.sched_policy = SchedPolicy::Priority { depth };
        } else if !pins.is_empty() {
            options.sched_policy = SchedPolicy::Priority { depth: 0 };
        }
        options.priority_pins = pins;
        if let Some(fails) = flag_value(args, "--fail-seed")? {
            options.inject_panic_seeds = parse_seed_list(fails, "--fail-seed")?;
        }
        options.engine = match flag_value(args, "--engine")? {
            None | Some("batch") => Engine::Batch,
            Some("stream") => Engine::Stream,
            Some(other) => {
                return Err(format!(
                    "unknown engine `{other}`: expected `batch` or `stream`"
                ))
            }
        };
        Ok(options)
    })();
    let options = match parsed {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let report = check(program, &options);
    oprint!("{}", report.render());
    // Exit-code precedence: usage errors returned 2 above; partial results
    // (a failed seed) trump a violation verdict because the verdict is
    // incomplete; then 1 for findings, 0 for a clean full run.
    if report.partial {
        ExitCode::from(3)
    } else if report.violations.is_empty() && report.deadlocks.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_explore(program: &Program, file: &str, args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<ExploreOptions, String> {
        let defaults = ExploreOptions::default();
        let budget = usize_flag(args, "--budget", defaults.budget)?;
        if budget == 0 {
            return Err("invalid value `0` for --budget: expected at least 1".into());
        }
        let strategy = match flag_value(args, "--strategy")? {
            None => defaults.strategy,
            Some(s) => Strategy::parse(s).ok_or_else(|| {
                format!("unknown strategy `{s}`: expected `pct`, `random`, `directed`, or `all`")
            })?,
        };
        let depth = usize_flag(args, "--depth", defaults.depth as usize)?;
        let depth = u8::try_from(depth)
            .map_err(|_| format!("invalid value `{depth}` for --depth: expected 0..=255"))?;
        let jobs = usize_flag(args, "--jobs", home::dynamic::default_jobs())?;
        if jobs == 0 {
            return Err("invalid value `0` for --jobs: expected at least 1".into());
        }
        let base_seed = match flag_value(args, "--seed")? {
            None => defaults.base_seed,
            Some(v) => v.parse().map_err(|_| {
                format!("invalid value `{v}` for --seed: expected an unsigned integer")
            })?,
        };
        let mut detector = defaults.detector;
        detector.jobs = jobs;
        Ok(ExploreOptions {
            nprocs: usize_flag(args, "--procs", defaults.nprocs)?,
            threads_per_proc: usize_flag(args, "--threads", defaults.threads_per_proc)?,
            budget,
            strategy,
            depth,
            jobs,
            base_seed,
            detector,
        })
    })();
    let options = match parsed {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let report = home::explore::explore(program, &options);
    oprint!("{}", report.render(file));
    // Same exit-code precedence as `check`: partial trumps findings.
    if report.partial {
        ExitCode::from(3)
    } else if report.found_anything() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// When `watch` prints (the `--flush` policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushPolicy {
    /// Print each violation the moment it fires, plus a per-seed summary.
    Every,
    /// Print each seed's deduplicated findings when that seed finishes.
    Seed,
    /// Print only the final report, like `check`.
    End,
}

/// Live renderer behind `home watch`: a [`ViolationSink`] printing each
/// emission with seed/rank/thread provenance. `watch` forces `--jobs 1`,
/// so seeds run serially and the output order is deterministic.
struct WatchRenderer {
    policy: FlushPolicy,
}

impl ViolationSink for WatchRenderer {
    fn violation(&self, v: &EmittedViolation) {
        if self.policy == FlushPolicy::Every {
            // oprintln! flushes and latches EPIPE; a closed pipe can
            // neither panic the run nor silently drop the verdict.
            oprintln!("{v}");
        }
    }

    fn seed_finished(
        &self,
        seed: u64,
        status: &home::core::SeedStatus,
        violations: &[home::core::Violation],
    ) {
        if self.policy == FlushPolicy::End {
            return;
        }
        if self.policy == FlushPolicy::Seed {
            for v in violations {
                oprintln!("[seed {seed}] {v}");
            }
        }
        match status {
            home::core::SeedStatus::Ok {
                events,
                races,
                violations,
            } => oprintln!(
                "watch: seed {seed} finished ({events} events, {races} race(s), {violations} violation(s))"
            ),
            home::core::SeedStatus::Failed { error } => {
                oprintln!("watch: seed {seed} FAILED: {error}")
            }
        }
    }
}

fn cmd_watch(program: &Program, args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(CheckOptions, FlushPolicy), String> {
        let mut options = CheckOptions::new(
            usize_flag(args, "--procs", 2)?,
            usize_flag(args, "--threads", 2)?,
        );
        if let Some(seeds) = flag_value(args, "--seeds")? {
            options.seeds = parse_seed_list(seeds, "--seeds")?;
        }
        if args.iter().any(|a| a == "--faithful") {
            options.sched_policy = SchedPolicy::EarliestClockFirst;
        }
        if let Some(fails) = flag_value(args, "--fail-seed")? {
            options.inject_panic_seeds = parse_seed_list(fails, "--fail-seed")?;
        }
        // Live mode is the streaming engine by definition, and seeds run
        // serially so emissions arrive in seed order. A `--jobs` request
        // other than 1 is rejected loudly instead of silently overridden:
        // the user asked for parallelism watch cannot deliver.
        match usize_flag(args, "--jobs", 1)? {
            1 => {}
            n => {
                return Err(format!(
                    "watch runs seeds serially so live output is deterministic; \
                     --jobs {n} is not supported (use `check --jobs {n}` for a \
                     parallel batch verdict)"
                ))
            }
        }
        options = options.with_jobs(1).with_engine(Engine::Stream);
        let policy = match flag_value(args, "--flush")? {
            None | Some("every") => FlushPolicy::Every,
            Some("seed") => FlushPolicy::Seed,
            Some("end") => FlushPolicy::End,
            Some(other) => {
                return Err(format!(
                    "unknown flush policy `{other}`: expected `every`, `seed`, or `end`"
                ))
            }
        };
        Ok((options, policy))
    })();
    let (options, policy) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let report = check_with_sink(
        program,
        &options,
        std::sync::Arc::new(WatchRenderer { policy }),
    );
    if policy == FlushPolicy::End {
        oprint!("{}", report.render());
    } else {
        oprintln!(
            "watch: done — {} violation(s), {} deadlock(s) across {} seed(s){}",
            report.violations.len(),
            report.deadlocks.len(),
            options.seeds.len(),
            if report.partial {
                " (PARTIAL: one or more seeds failed)"
            } else {
                ""
            }
        );
    }
    // Same exit-code precedence as `check`: partial trumps findings.
    if report.partial {
        ExitCode::from(3)
    } else if report.violations.is_empty() && report.deadlocks.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_static(program: &Program, args: &[String]) -> ExitCode {
    let report = analyze(program);
    if args.iter().any(|a| a == "--json") {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => oprintln!("{json}"),
            Err(e) => {
                eprintln!("home: cannot encode static report: {e}");
                return ExitCode::from(2);
            }
        }
        return if report.candidates.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    oprintln!(
        "{} MPI call sites, {} instrumented, {} skipped, {} unreachable",
        report.stats.total_mpi_calls,
        report.stats.instrumented,
        report.stats.skipped,
        report.stats.unreachable
    );
    oprintln!(
        "{} parallel region(s), {} error-free",
        report.stats.regions,
        report.stats.error_free_regions
    );
    for site in &report.checklist.sites {
        let marks = [
            site.instrument.then_some("instrument"),
            site.in_hybrid_region.then_some("hybrid"),
            (!site.reachable).then_some("unreachable"),
            (site.tag_thread_distinct == Some(true)).then_some("tag=f(tid)"),
            site.is_collective.then_some("collective"),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        oprintln!("  line {:>3}  {:<16} [{marks}]", site.line, site.name);
    }
    if !report.checklist.monitored_vars.is_empty() {
        oprintln!(
            "monitored variables: {}",
            report.checklist.monitored_vars.join(", ")
        );
    }
    if let Some(note) = report.stats.note {
        oprintln!("note: {note:?}");
    }
    if report.candidates.is_empty() {
        ExitCode::SUCCESS
    } else {
        oprintln!("{} static candidate(s):", report.candidates.len());
        for c in &report.candidates {
            oprintln!(
                "  line {:>3}  {}: {}",
                c.line,
                c.kind.label(),
                c.description
            );
            if let Some(hint) = &c.violation_hint {
                oprintln!("            would report {hint} if reproduced");
            }
        }
        ExitCode::FAILURE
    }
}

/// One line naming the input and, when the parser knows it, the byte offset
/// of the problem — greppable and stable for scripting.
fn print_trace_error(file: &str, e: &HomeError) {
    match e.byte_offset() {
        Some(off) => eprintln!("home: {file}: byte {off}: {e}"),
        None => eprintln!("home: {file}: {e}"),
    }
}

fn cmd_replay(file: &str, args: &[String]) -> ExitCode {
    let jobs = match trace_jobs(args) {
        Ok(j) => j,
        Err(e) => return usage_error(&e),
    };
    let batch = match trace_batch(args) {
        Ok(b) => b,
        Err(e) => return usage_error(&e),
    };
    let run_seed = match flag_value(args, "--run") {
        Ok(None) => None,
        Ok(Some(v)) => match v.parse::<u64>() {
            Ok(s) => Some(s),
            Err(_) => {
                return usage_error(&format!(
                    "invalid value `{v}` for --run: expected a scheduler seed (unsigned integer)"
                ))
            }
        },
        Err(e) => return usage_error(&e),
    };
    let input = match TraceInput::open(file) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("home: {e}");
            return ExitCode::from(2);
        }
    };
    if !input.is_hbt() {
        eprintln!("home: {file}: not an HBT trace (bad magic); produce one with `home record`");
        return ExitCode::from(2);
    }
    // --run SEED: seek straight to one recorded section via the v2 index
    // and decode only its frames. Needs a mapped file — a pipe cannot seek.
    if let Some(seed) = run_seed {
        let reader = match &input {
            TraceInput::Mapped(reader) => reader,
            TraceInput::Stdin { .. } => {
                return usage_error(
                    "--run needs a seekable trace file; a stdin pipe cannot seek \
                     (save the trace to a file and replay that)",
                )
            }
        };
        let outcome = home::core::decode_trace_run(reader.bytes(), seed, jobs)
            .and_then(|sections| home::serve::analyze_sections_batched(&sections, batch));
        return match outcome {
            Ok(o) => print_outcome(&format!("replay (run {seed})"), &o),
            Err(e) => {
                print_trace_error(file, &e);
                ExitCode::from(2)
            }
        };
    }
    // Session-driven detection shared with `analyze` and the serve daemon:
    // verdict-identical to check for every `--jobs` and `--batch` value.
    let outcome = match input.analyze_hbt(jobs, batch) {
        Ok(o) => o,
        Err(e) => {
            print_trace_error(file, &e);
            return ExitCode::from(2);
        }
    };
    print_outcome("replay", &outcome)
}

fn cmd_analyze(file: &str, args: &[String]) -> ExitCode {
    let jobs = match trace_jobs(args) {
        Ok(j) => j,
        Err(e) => return usage_error(&e),
    };
    let batch = match trace_batch(args) {
        Ok(b) => b,
        Err(e) => return usage_error(&e),
    };
    let input = match TraceInput::open(file) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("home: {e}");
            return ExitCode::from(2);
        }
    };
    // Format auto-detection: HBT traces start with the 0x89 "HBT" magic,
    // which can never open a JSON document.
    if input.is_hbt() {
        let outcome = match input.analyze_hbt(jobs, batch) {
            Ok(o) => o,
            Err(e) => {
                print_trace_error(file, &e);
                return ExitCode::from(2);
            }
        };
        return print_outcome("offline analysis", &outcome);
    }
    // JSON traces are documents, not streams: buffer and parse whole.
    let bytes = match input.read_all() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("home: {e}");
            return ExitCode::from(2);
        }
    };
    let trace_json = match std::str::from_utf8(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("home: {file}: not valid UTF-8 JSON (and not HBT): {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match home::trace::Trace::from_json(trace_json) {
        Ok(t) => t,
        Err(e) => {
            print_trace_error(file, &e);
            return ExitCode::from(2);
        }
    };
    // Structurally inconsistent traces (parseable JSON, impossible events)
    // surface as typed detector errors, same diagnostic shape as above.
    let races = match home::dynamic::detect(&trace, &home::dynamic::DetectorConfig::hybrid()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("home: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = home::core::match_rules(&trace, &races, &[]);
    oprintln!(
        "offline analysis: {} events, {} monitored race(s), {} violation(s)",
        trace.len(),
        races.len(),
        outcome.violations.len()
    );
    if !outcome.unclassified.is_empty() {
        oprintln!(
            "warning: {} monitored race(s) lacked MPI call metadata and were not classified",
            outcome.unclassified.len()
        );
    }
    for v in &outcome.violations {
        oprintln!("  - {v}");
    }
    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(std::path::PathBuf, usize), String> {
        let socket = flag_value(args, "--socket")?
            .ok_or_else(|| "serve needs a socket path: --socket path.sock".to_string())?
            .into();
        let max = usize_flag(args, "--max-sessions", 64)?;
        if max == 0 {
            return Err("invalid value `0` for --max-sessions: expected at least 1".into());
        }
        Ok((socket, max))
    })();
    let (socket, max_sessions) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    if args.iter().any(|a| a == "--status") {
        return match home::serve::status(&socket) {
            Ok(reply) => {
                oprintln!("{}", reply.raw);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("home: {e}");
                ExitCode::from(2)
            }
        };
    }
    if args.iter().any(|a| a == "--stop") {
        return match home::serve::stop(&socket) {
            Ok(_) => {
                oprintln!("serve: daemon at {} stopping", socket.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("home: {e}");
                ExitCode::from(2)
            }
        };
    }
    let mut config = home::serve::ServeConfig::new(&socket);
    config.max_sessions = max_sessions;
    let server = match home::serve::Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("home: cannot bind {}: {e}", socket.display());
            return ExitCode::from(2);
        }
    };
    oprintln!(
        "serve: listening on {} (max {max_sessions} concurrent sessions)",
        socket.display()
    );
    match server.run() {
        Ok(()) => {
            oprintln!("serve: stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("home: serve failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_submit(file: &str, args: &[String]) -> ExitCode {
    let socket: std::path::PathBuf = match flag_value(args, "--socket") {
        Ok(Some(s)) => s.into(),
        Ok(None) => return usage_error("submit needs the daemon socket: --socket path.sock"),
        Err(e) => return usage_error(&e),
    };
    let input = match TraceInput::open(file) {
        Ok(input) => input,
        Err(e) => {
            eprintln!("home: {e}");
            return ExitCode::from(2);
        }
    };
    if !input.is_hbt() {
        eprintln!("home: {file}: not an HBT trace (bad magic); produce one with `home record`");
        return ExitCode::from(2);
    }
    // `submit` forwards the raw bytes over the socket, so stdin is the one
    // place it still buffers.
    let bytes = match input.read_all() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("home: {e}");
            return ExitCode::from(2);
        }
    };
    match home::serve::submit(&socket, &bytes) {
        Ok(reply) if reply.ok => {
            if args.iter().any(|a| a == "--json") {
                oprintln!("{}", reply.raw);
            } else {
                oprintln!(
                    "submit: {} run(s), {} violation(s)",
                    reply.runs,
                    reply.violations.len()
                );
                for v in &reply.violations {
                    oprintln!("  - {v}");
                }
            }
            if reply.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(reply) => {
            eprintln!(
                "home: {file}: daemon rejected the trace: {}",
                reply.error.as_deref().unwrap_or("unknown error")
            );
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("home: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_run(program: &Program, args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(usize, usize, usize, Tool), String> {
        let nprocs = usize_flag(args, "--procs", 2)?;
        let threads = usize_flag(args, "--threads", 2)?;
        let seed = usize_flag(args, "--seed", 7)?;
        let tool = match flag_value(args, "--tool")?.unwrap_or("base") {
            "base" => Tool::Base,
            "home" => Tool::Home,
            "marmot" => Tool::Marmot,
            "itc" => Tool::Itc,
            other => return Err(format!("unknown tool `{other}`")),
        };
        Ok((nprocs, threads, seed, tool))
    })();
    let (nprocs, threads, seed, tool) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let checklist = std::sync::Arc::new(analyze(program).checklist.clone());
    let mut cfg = RunConfig::cluster(nprocs, seed as u64)
        .with_instrumentation(tool.instrumentation_scaled(nprocs))
        .with_checklist(checklist);
    cfg.threads_per_proc = threads;
    let result = run(program, &cfg);
    oprintln!(
        "tool={} procs={nprocs} threads={} simulated time {}  events {}",
        result.tool,
        cfg.threads_per_proc,
        result.makespan,
        result.events_recorded
    );
    for i in &result.mpi_errors {
        oprintln!(
            "incident: rank {} line {} {}: {}",
            i.rank,
            i.line,
            i.call,
            i.error
        );
    }
    for (r, e) in &result.runtime_errors {
        oprintln!("runtime error: rank {r}: {e}");
    }
    match flag_value(args, "--trace-out") {
        Ok(Some(path)) => match std::fs::write(path, result.trace.to_json()) {
            Ok(()) => oprintln!("trace written to {path}"),
            Err(e) => {
                eprintln!("home: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        },
        Ok(None) => {}
        Err(e) => return usage_error(&e),
    }
    match &result.deadlock {
        Some(d) => {
            oprintln!("DEADLOCK: {d}");
            ExitCode::FAILURE
        }
        None => ExitCode::SUCCESS,
    }
}

/// Trace sink that streams every recorded event straight into an HBT writer.
/// I/O failures are stashed (the sink trait cannot propagate errors) and
/// surfaced once at the end; after the first failure the sink goes quiet.
struct RecordSink<W: std::io::Write> {
    writer: std::sync::Mutex<Option<home::stream::HbtWriter<W>>>,
    error: std::sync::Mutex<Option<std::io::Error>>,
}

impl<W: std::io::Write> RecordSink<W> {
    fn with_writer(&self, f: impl FnOnce(&mut home::stream::HbtWriter<W>) -> std::io::Result<()>) {
        let mut error = self
            .error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if error.is_some() {
            return;
        }
        let mut writer = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(w) = writer.as_mut() {
            if let Err(e) = f(w) {
                *error = Some(e);
            }
        }
    }
}

impl<W: std::io::Write + Send> home::trace::TraceSink for RecordSink<W> {
    fn record(&self, event: home::trace::Event) {
        self.with_writer(|w| w.write_event(&event));
    }
}

/// Parsed `record` flags.
struct RecordArgs {
    out: String,
    procs: usize,
    threads: usize,
    seeds: Vec<u64>,
    policy: SchedPolicy,
    compress: bool,
}

fn cmd_record(program: &Program, args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<RecordArgs, String> {
        let out = flag_value(args, "-o")?
            .ok_or_else(|| "record needs an output path: -o trace.hbt".to_string())?
            .to_string();
        let procs = usize_flag(args, "--procs", 2)?;
        let threads = usize_flag(args, "--threads", 2)?;
        let seeds = match flag_value(args, "--seeds")? {
            Some(s) => parse_seed_list(s, "--seeds")?,
            None => vec![1, 2, 3, 4],
        };
        let policy = if args.iter().any(|a| a == "--faithful") {
            SchedPolicy::EarliestClockFirst
        } else {
            SchedPolicy::Random
        };
        let compress = args.iter().any(|a| a == "--compress");
        Ok(RecordArgs {
            out,
            procs,
            threads,
            seeds,
            policy,
            compress,
        })
    })();
    let RecordArgs {
        out,
        procs,
        threads,
        seeds,
        policy,
        compress,
    } = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };

    let file = match std::fs::File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("home: cannot create {out}: {e}");
            return ExitCode::from(2);
        }
    };
    // --compress writes HBT v2: per-section LZ frames plus a seek index,
    // so `replay --jobs N` can decode sections in parallel.
    let buffered = std::io::BufWriter::new(file);
    let writer = if compress {
        home::stream::HbtWriter::new_compressed(buffered)
    } else {
        home::stream::HbtWriter::new(buffered)
    };
    let writer = match writer {
        Ok(w) => w,
        Err(e) => {
            eprintln!("home: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
    };
    let sink = std::sync::Arc::new(RecordSink {
        writer: std::sync::Mutex::new(Some(writer)),
        error: std::sync::Mutex::new(None),
    });

    // Same pipeline setup as `check`, so a recorded trace replays to the
    // same verdicts: HOME instrumentation, static checklist, test topology.
    let checklist = std::sync::Arc::new(analyze(program).checklist.clone());
    let mut total_events = 0u64;
    let mut total_incidents = 0usize;
    for &seed in &seeds {
        sink.with_writer(|w| w.begin_run(seed));
        let mut cfg = RunConfig::test(procs, seed)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(std::sync::Arc::clone(&checklist));
        cfg.threads_per_proc = threads;
        cfg.sched.policy = policy;
        let result = run_with_sink(program, &cfg, sink.clone());
        total_events += result.events_recorded;
        total_incidents += result.mpi_errors.len();
        for i in &result.mpi_errors {
            let incident = home::stream::TraceIncident {
                rank: i.rank,
                line: i.line,
                call: i.call.clone(),
                error: i.error.clone(),
            };
            sink.with_writer(|w| w.write_incident(&incident));
        }
        if let Some(d) = &result.deadlock {
            eprintln!(
                "warning: seed {seed} deadlocked ({d}); replay cannot reproduce the deadlock verdict"
            );
        }
    }

    let writer = sink
        .writer
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    let finish_result = match writer {
        Some(w) => w.finish().map(|_| ()),
        None => Ok(()),
    };
    let stashed = sink
        .error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(e) = stashed.or(finish_result.err()) {
        eprintln!("home: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    oprintln!(
        "recorded {} run(s), {total_events} events, {total_incidents} incident(s) to {out}",
        seeds.len()
    );
    ExitCode::SUCCESS
}
