//! Violation delivery: where classified violations go as they fire.
//!
//! [`ViolationSink`] mirrors `home_trace::TraceSink` one layer up the
//! pipeline: `TraceSink` carries *events* out of the simulator,
//! `ViolationSink` carries *classified violations* out of the rule engine.
//! The batch path uses [`NullViolationSink`] (the report is assembled from
//! [`crate::RuleEngine::finish`] outcomes); `home watch` plugs in a live
//! renderer; tests use [`ViolationCollector`].
//!
//! Sinks are shared across the per-seed worker threads of the check
//! pipeline, hence `Send + Sync` and `&self` methods. Calls for one seed
//! are ordered (the per-seed chain is single-threaded up to rule
//! evaluation), but calls for *different* seeds interleave arbitrarily
//! when `--jobs > 1`; every emission carries its seed so a sink can
//! demultiplex.

use crate::report::{EmittedViolation, SeedStatus, Violation};
use std::sync::Mutex;

/// Receives classified violations as the rule engine emits them.
pub trait ViolationSink: Send + Sync {
    /// One violation whose evidence just completed. `v.live` is true when
    /// it fired mid-run, false when it surfaced during end-of-seed
    /// evaluation.
    fn violation(&self, v: &EmittedViolation);

    /// One seed's chain finished (successfully or not). `violations` is
    /// the seed's canonical deduplicated list — the same list the batch
    /// report shows — and is empty for failed seeds.
    fn seed_finished(&self, seed: u64, status: &SeedStatus, violations: &[Violation]) {
        let _ = (seed, status, violations);
    }
}

/// Discards everything (the batch `check` path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullViolationSink;

impl ViolationSink for NullViolationSink {
    fn violation(&self, _v: &EmittedViolation) {}
}

/// Buffers every emission, for tests and post-hoc inspection.
#[derive(Debug, Default)]
pub struct ViolationCollector {
    emissions: Mutex<Vec<EmittedViolation>>,
}

impl ViolationCollector {
    /// An empty collector.
    pub fn new() -> ViolationCollector {
        ViolationCollector::default()
    }

    /// Everything received so far, in arrival order.
    pub fn emissions(&self) -> Vec<EmittedViolation> {
        match self.emissions.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

impl ViolationSink for ViolationCollector {
    fn violation(&self, v: &EmittedViolation) {
        match self.emissions.lock() {
            Ok(mut g) => g.push(v.clone()),
            Err(poisoned) => poisoned.into_inner().push(v.clone()),
        }
    }
}
