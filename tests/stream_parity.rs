//! Engine parity: the online streaming detector must be observably
//! indistinguishable from the batch detector — byte-identical rendered
//! reports and identical merged fields for every bundled program, every
//! seed list, and every `--jobs` value — while actually bounding memory
//! (peak live segments strictly below the total) on region-sequential
//! programs.

use home::prelude::*;
use home::stream::{encode_trace, HbtMmapReader};
use std::sync::Arc;

/// Every bundled sample program, in stable name order.
fn programs() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir("programs").unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "hmp") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).unwrap();
            out.push((name, parse(&src).unwrap()));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!out.is_empty(), "no bundled programs found");
    out
}

fn assert_reports_identical(batch: &HomeReport, stream: &HomeReport, context: &str) {
    assert_eq!(batch.render(), stream.render(), "render: {context}");
    assert_eq!(batch.violations, stream.violations, "violations: {context}");
    assert_eq!(
        format!("{:?}", batch.races),
        format!("{:?}", stream.races),
        "races: {context}"
    );
    assert_eq!(
        format!("{:?}", batch.seed_runs),
        format!("{:?}", stream.seed_runs),
        "seed statuses: {context}"
    );
    assert_eq!(
        format!("{:?}", batch.deadlocks),
        format!("{:?}", stream.deadlocks),
        "deadlocks: {context}"
    );
    assert_eq!(batch.total_events, stream.total_events, "events: {context}");
    assert_eq!(batch.partial, stream.partial, "partial: {context}");
}

/// The acceptance bar: for every program, seed set, and jobs value, the
/// streaming engine's report is byte-identical to the batch engine's.
#[test]
fn stream_matches_batch_on_every_program_and_jobs_value() {
    for (name, program) in &programs() {
        for jobs in [1, 2, 4] {
            let opts = CheckOptions::default()
                .with_seeds(vec![1, 2, 3, 4, 5])
                .with_jobs(jobs);
            let batch = check(program, &opts.clone().with_engine(Engine::Batch));
            let stream = check(program, &opts.clone().with_engine(Engine::Stream));
            assert_reports_identical(&batch, &stream, &format!("{name} jobs={jobs}"));
        }
    }
}

/// Parity holds under the time-faithful scheduler too.
#[test]
fn stream_matches_batch_under_faithful_scheduling() {
    for (name, program) in &programs() {
        let mut opts = CheckOptions::default().with_seeds(vec![2, 9]);
        opts.sched_policy = SchedPolicy::EarliestClockFirst;
        let batch = check(program, &opts.clone().with_engine(Engine::Batch));
        let stream = check(program, &opts.clone().with_engine(Engine::Stream));
        assert_reports_identical(&batch, &stream, &format!("{name} faithful"));
    }
}

/// Fault isolation behaves identically: an injected seed failure produces
/// the same partial report under either engine.
#[test]
fn stream_matches_batch_with_failing_seeds() {
    let (name, program) = &programs()[0];
    let opts = CheckOptions::default()
        .with_seeds(vec![1, 2, 3, 4])
        .with_fail_seeds(vec![2])
        .with_jobs(2);
    let batch = check(program, &opts.clone().with_engine(Engine::Batch));
    let stream = check(program, &opts.clone().with_engine(Engine::Stream));
    assert!(batch.partial);
    assert_reports_identical(&batch, &stream, &format!("{name} fail-seed"));
}

/// The streaming engine must actually stream: on a program whose parallel
/// regions run one after another (pipeline.hmp has four region instances
/// per iteration), dead segments are retired at every join, so the peak
/// number of live segments stays strictly below the total ever created.
#[test]
fn streaming_peak_live_segments_stay_below_total_on_pipeline() {
    let src = std::fs::read_to_string("programs/pipeline.hmp").unwrap();
    let program = parse(&src).unwrap();
    let checklist = Arc::new(analyze(&program).checklist.clone());
    let mut cfg = RunConfig::test(2, 1)
        .with_instrumentation(Instrumentation::home())
        .with_checklist(checklist);
    cfg.threads_per_proc = 2;
    let result = run(&program, &cfg);

    let (_, stats) = detect_stream(&result.trace, &DetectorConfig::hybrid()).unwrap();
    assert!(stats.events > 0);
    assert!(
        stats.retired_segments > 0,
        "joined regions must be retired: {stats:?}"
    );
    assert!(
        stats.peak_live_segments < stats.total_segments,
        "streaming must bound live state: {stats:?}"
    );

    // And retirement must not change the verdict: same races as batch.
    let batch = detect(&result.trace, &DetectorConfig::hybrid()).unwrap();
    let (stream_races, _) = detect_stream(&result.trace, &DetectorConfig::hybrid()).unwrap();
    assert_eq!(format!("{batch:?}"), format!("{stream_races:?}"));
}

/// Race-level parity on raw traces: for every program and seed, feeding the
/// recorded trace through the streaming detector yields exactly the batch
/// detector's races.
#[test]
fn detect_stream_matches_detect_on_recorded_traces() {
    for (name, program) in &programs() {
        let checklist = Arc::new(analyze(program).checklist.clone());
        for seed in [1u64, 2, 3] {
            let mut cfg = RunConfig::test(2, seed)
                .with_instrumentation(Instrumentation::home())
                .with_checklist(Arc::clone(&checklist));
            cfg.threads_per_proc = 2;
            let result = run(program, &cfg);
            let batch = detect(&result.trace, &DetectorConfig::hybrid()).unwrap();
            let (stream, stats) = detect_stream(&result.trace, &DetectorConfig::hybrid()).unwrap();
            assert_eq!(
                format!("{batch:?}"),
                format!("{stream:?}"),
                "{name} seed {seed}"
            );
            assert_eq!(
                stats.events as usize,
                result.trace.len(),
                "{name} seed {seed}"
            );
        }
    }
}

/// Zero-copy replay parity: round-tripping a recorded trace through an
/// HBT file decoded by the mmap reader changes nothing — both engines see
/// exactly the events they saw in memory and report exactly the same races.
#[test]
fn detectors_match_on_mmap_replayed_traces() {
    let dir = std::env::temp_dir().join(format!("home_mmap_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, program) in &programs() {
        let checklist = Arc::new(analyze(program).checklist.clone());
        for seed in [1u64, 3] {
            let mut cfg = RunConfig::test(2, seed)
                .with_instrumentation(Instrumentation::home())
                .with_checklist(Arc::clone(&checklist));
            cfg.threads_per_proc = 2;
            let result = run(program, &cfg);

            let path = dir.join(format!("{name}_{seed}.hbt"));
            std::fs::write(&path, encode_trace(&result.trace)).unwrap();
            let reader = HbtMmapReader::open(&path)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: open: {e}"));
            let sections = reader
                .sections()
                .unwrap_or_else(|e| panic!("{name} seed {seed}: decode: {e}"));
            assert_eq!(sections.len(), 1, "{name} seed {seed}");
            let replayed = &sections[0].trace;
            assert_eq!(
                replayed.events(),
                result.trace.events(),
                "{name} seed {seed}: mmap replay must preserve every event"
            );

            let batch_mem = detect(&result.trace, &DetectorConfig::hybrid()).unwrap();
            let batch_mmap = detect(replayed, &DetectorConfig::hybrid()).unwrap();
            let (stream_mmap, _) = detect_stream(replayed, &DetectorConfig::hybrid()).unwrap();
            assert_eq!(
                format!("{batch_mem:?}"),
                format!("{batch_mmap:?}"),
                "{name} seed {seed}: batch verdict must not change under mmap replay"
            );
            assert_eq!(
                format!("{batch_mem:?}"),
                format!("{stream_mmap:?}"),
                "{name} seed {seed}: stream verdict must not change under mmap replay"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
    let _ = std::fs::remove_dir(&dir);
}
