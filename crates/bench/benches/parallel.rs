//! Wall-clock comparison of the serial and parallel check pipeline: the
//! same multi-seed NPB-style check with `jobs = 1` versus `jobs = N`
//! (available parallelism). The per-seed simulate→detect→match chains are
//! independent, so the parallel path should approach `min(N, seeds)`×
//! speedup while producing an identical report (asserted here, too).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use home_core::{check, CheckOptions};
use home_dynamic::default_jobs;
use home_npb::{generate, Benchmark, Class};
use std::time::Duration;

fn bench_check_jobs(c: &mut Criterion) {
    let program = generate(Benchmark::LuMz, Class::W);
    let seeds: Vec<u64> = (1..=8).collect();

    // Sanity: the fan-out must not change the report.
    let serial = check(
        &program,
        &CheckOptions::default()
            .with_seeds(seeds.clone())
            .with_jobs(1),
    );
    let parallel = check(
        &program,
        &CheckOptions::default()
            .with_seeds(seeds.clone())
            .with_jobs(default_jobs()),
    );
    assert_eq!(
        serial.render(),
        parallel.render(),
        "parallel check must match serial"
    );

    let mut group = c.benchmark_group("check_pipeline");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(10);
    // `max(2)` keeps the scoped-thread path exercised even on one core.
    for jobs in [1, default_jobs().max(2)] {
        group.bench_with_input(
            BenchmarkId::new("lu_mz_w_8seeds", jobs),
            &jobs,
            |b, &jobs| {
                let options = CheckOptions::default()
                    .with_seeds(seeds.clone())
                    .with_jobs(jobs);
                b.iter(|| check(&program, &options))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_check_jobs);
criterion_main!(benches);
