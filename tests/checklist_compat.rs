//! Back-compatibility of the static→dynamic contract after the
//! interprocedural per-site refactor: the coarse (global-union) checklist
//! model keeps working — old serialized checklists deserialize, coarse and
//! per-site checklists wrap the identical call sites — while the per-site
//! sets strictly shrink the emitted monitored writes on real programs.

use home::prelude::*;
use home::static_analysis::Checklist;
use std::sync::Arc;

fn bundled_programs() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir("programs")
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().is_some_and(|x| x == "hmp") {
            let src = std::fs::read_to_string(&path).unwrap();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, parse(&src).unwrap()));
        }
    }
    assert!(out.len() >= 6, "bundled corpus went missing");
    out
}

#[test]
fn per_site_and_coarse_checklists_wrap_identical_sites_on_all_programs() {
    let mut strict_shrinks = Vec::new();
    for (name, p) in bundled_programs() {
        let checklist = analyze(&p).checklist;
        let coarse = checklist.coarse();
        // The refinement never changes *which* sites are instrumented,
        // nor the global monitored-variable union old consumers read.
        assert_eq!(
            checklist.instrumented_nodes(),
            coarse.instrumented_nodes(),
            "{name}"
        );
        assert_eq!(checklist.monitored_vars, coarse.monitored_vars, "{name}");

        let run_with = |cl: Checklist| {
            let cfg = RunConfig::test(2, 1)
                .with_instrumentation(Instrumentation::home())
                .with_checklist(Arc::new(cl));
            run(&p, &cfg)
        };
        let fine = run_with(checklist);
        let broad = run_with(coarse);
        assert_eq!(
            fine.trace.mpi_calls().count(),
            broad.trace.mpi_calls().count(),
            "{name}: same wrapped sites either way"
        );
        let (mw_fine, mw_broad) = (
            fine.trace.monitored_writes().count(),
            broad.trace.monitored_writes().count(),
        );
        assert!(mw_fine <= mw_broad, "{name}: refinement never adds writes");
        if mw_fine < mw_broad {
            strict_shrinks.push(name);
        }
    }
    assert!(
        strict_shrinks.len() >= 2,
        "per-site sets must strictly shrink emitted writes on at least \
         two bundled programs, got {strict_shrinks:?}"
    );
}

#[test]
fn pre_per_site_checklist_json_still_deserializes() {
    // A checklist serialized before the per-site fields existed: no
    // `monitored`, `must_locks`, or `multi_thread` keys anywhere.
    let old = r#"{
        "sites": [{
            "node": 5,
            "line": 9,
            "name": "mpi_recv",
            "in_hybrid_region": true,
            "reachable": true,
            "instrument": true,
            "is_collective": false,
            "tag_thread_distinct": false,
            "peer_thread_distinct": false,
            "init_level": null
        }],
        "monitored_vars": ["srctmp", "tagtmp", "commtmp"]
    }"#;
    let cl: Checklist = serde_json::from_str(old).unwrap();
    assert_eq!(cl.instrumented_count(), 1);
    assert_eq!(cl.monitored_vars, vec!["srctmp", "tagtmp", "commtmp"]);
    let site = &cl.sites[0];
    assert_eq!(site.monitored, None, "absent per-site set reads as coarse");
    assert!(site.must_locks.is_empty());
    assert!(!site.multi_thread);
    assert_eq!(cl.site_monitored(site.node), None);
}

#[test]
fn round_tripped_checklist_preserves_per_site_sets() {
    let src = std::fs::read_to_string("programs/interproc2.hmp").unwrap();
    let cl = analyze(&parse(&src).unwrap()).checklist;
    let json = serde_json::to_string(&cl).unwrap();
    let back: Checklist = serde_json::from_str(&json).unwrap();
    for (a, b) in cl.sites.iter().zip(&back.sites) {
        assert_eq!(a, b);
    }
    assert_eq!(cl.monitored_vars, back.monitored_vars);
}
