//! Streaming-engine and HBT-codec benchmarks: online vs batch detection
//! over identical traces, end-to-end `check` under both engines, and
//! JSON vs HBT trace encode/decode throughput (sizes printed once so
//! EXPERIMENTS.md can quote bytes/event).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use home_core::{check, CheckOptions, Engine};
use home_dynamic::{detect, DetectorConfig};
use home_interp::{run, Instrumentation, RunConfig};
use home_ir::{parse, Program};
use home_static::analyze;
use home_stream::{decode_sections, detect_stream, encode_trace};
use home_trace::Trace;
use std::sync::Arc;
use std::time::Duration;

fn pipeline_program() -> Program {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs/pipeline.hmp");
    let src = std::fs::read_to_string(path).expect("bundled program");
    parse(&src).expect("bundled program parses")
}

/// One recorded HOME-instrumented trace of pipeline.hmp (4 procs × 2
/// threads — the detector-facing workload).
fn pipeline_trace(program: &Program) -> Trace {
    let checklist = Arc::new(analyze(program).checklist.clone());
    let mut cfg = RunConfig::test(4, 1)
        .with_instrumentation(Instrumentation::home())
        .with_checklist(checklist);
    cfg.threads_per_proc = 2;
    run(program, &cfg).trace
}

fn bench_detection(c: &mut Criterion) {
    let program = pipeline_program();
    let trace = pipeline_trace(&program);
    let config = DetectorConfig::hybrid();

    let mut group = c.benchmark_group("detect_engine");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("batch", |b| {
        b.iter(|| detect(black_box(&trace), &config).map(|r| r.len()))
    });
    group.bench_function("stream", |b| {
        b.iter(|| detect_stream(black_box(&trace), &config).map(|(r, _)| r.len()))
    });
    group.finish();

    let mut group = c.benchmark_group("check_engine");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for (name, engine) in [("batch", Engine::Batch), ("stream", Engine::Stream)] {
        group.bench_function(name, |b| {
            let options = CheckOptions::default().with_jobs(1).with_engine(engine);
            b.iter(|| check(black_box(&program), &options).violations.len())
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let program = pipeline_program();
    let trace = pipeline_trace(&program);
    let json = trace.to_json();
    let hbt = encode_trace(&trace);
    println!(
        "codec corpus: {} events, JSON {} bytes ({:.1} B/event), HBT {} bytes ({:.1} B/event)",
        trace.len(),
        json.len(),
        json.len() as f64 / trace.len() as f64,
        hbt.len(),
        hbt.len() as f64 / trace.len() as f64,
    );

    let mut group = c.benchmark_group("trace_codec");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("encode_json", |b| {
        b.iter(|| black_box(&trace).to_json().len())
    });
    group.bench_function("encode_hbt", |b| {
        b.iter(|| encode_trace(black_box(&trace)).len())
    });
    group.bench_function("decode_json", |b| {
        b.iter(|| Trace::from_json(black_box(&json)).map(|t| t.len()))
    });
    group.bench_function("decode_hbt", |b| {
        b.iter(|| decode_sections(black_box(&hbt)).map(|s| s.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_detection, bench_codec);
criterion_main!(benches);
