//! The virtual-thread runtime.

use crate::clock::SimTime;
use crate::config::{SchedConfig, SchedMode, PRIORITY_BASE_MAX, PRIORITY_BASE_MIN};
use crate::deadlock::{BlockedThread, DeadlockInfo};
use crate::handle::JoinHandle;
use crate::policy::SchedPolicy;
use crate::state::{BlockReason, Inner, ThreadSlot, ThreadStatus};
use crate::vtid::Vtid;
use crate::{SchedError, SchedResult};
use parking_lot::{Condvar, Mutex, MutexGuard};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct Ctx {
    rt: Runtime,
    vtid: Vtid,
    clock: Arc<AtomicU64>,
}

/// The virtual thread the calling OS thread is executing, if any.
pub fn current_vtid() -> Option<Vtid> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.vtid))
}

/// The runtime owning the calling virtual thread, if any.
pub fn current_runtime() -> Option<Runtime> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.rt.clone()))
}

/// PCT bookkeeping for [`SchedPolicy::Priority`]: which scheduling
/// decisions are priority-change points, how many decisions have been
/// taken, and the next (descending, non-positive) demotion priority.
#[derive(Default)]
struct PctState {
    /// Sorted decision indices (1-based) at which the would-be winner is
    /// demoted below every other thread. Drawn from the seed at
    /// [`Runtime::new`], so `(seed, depth)` fully names the schedule.
    change_points: Vec<u64>,
    /// Scheduling decisions taken under the priority policy.
    decisions: u64,
    /// Priority assigned by the most recent demotion; each demotion takes
    /// the next lower value, so later demotions rank below earlier ones
    /// (PCT's ordering) and all demotions rank below unpinned draws.
    next_demotion: i64,
}

struct RtShared {
    config: SchedConfig,
    mu: Mutex<Inner>,
    /// RNG for the random policy. Only ever locked while `mu` is held.
    rng: Mutex<ChaCha8Rng>,
    /// Priority-change-point state ([`SchedPolicy::Priority`] only).
    /// Only ever locked while `mu` is held.
    pct: Mutex<PctState>,
    /// Signalled on every thread finish (drives `run` and driver-side joins).
    driver_cv: Condvar,
    /// Global maximum over all per-thread virtual clocks, ever.
    makespan: AtomicU64,
    /// Fast-path flag mirroring `Inner::poison.is_some()`.
    poisoned: AtomicBool,
    /// Set by `run()`; allows kicks from driver-side unblocks.
    started: AtomicBool,
}

/// A handle to the scheduler. Cheap to clone (`Arc` inside).
///
/// See the crate-level docs for the execution model. All methods are safe to
/// call from any thread; methods documented as requiring a *virtual thread*
/// panic when called from an unmanaged thread.
#[derive(Clone)]
pub struct Runtime {
    shared: Arc<RtShared>,
}

impl Runtime {
    /// Create a runtime with the given configuration.
    pub fn new(config: SchedConfig) -> Runtime {
        let seed = config.seed;
        // Priority policy: draw the d change points up front from a stream
        // derived from (but independent of) the decision RNG, so the same
        // (seed, depth) always names the same schedule.
        let pct = if let SchedPolicy::Priority { depth } = config.policy {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
            let horizon = config.pct_horizon.max(1);
            let mut change_points: Vec<u64> =
                (0..depth).map(|_| rng.gen_range(0..horizon) + 1).collect();
            change_points.sort_unstable();
            change_points.dedup();
            PctState {
                change_points,
                ..PctState::default()
            }
        } else {
            PctState::default()
        };
        Runtime {
            shared: Arc::new(RtShared {
                config,
                mu: Mutex::new(Inner::new()),
                rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed)),
                pct: Mutex::new(pct),
                driver_cv: Condvar::new(),
                makespan: AtomicU64::new(0),
                poisoned: AtomicBool::new(false),
                started: AtomicBool::new(false),
            }),
        }
    }

    /// The configuration this runtime was created with.
    pub fn config(&self) -> &SchedConfig {
        &self.shared.config
    }

    fn deterministic(&self) -> bool {
        self.shared.config.mode == SchedMode::Deterministic
    }

    /// Spawn a virtual thread. In deterministic mode it does not start
    /// running until [`Runtime::run`] (or a scheduling decision) grants it.
    pub fn spawn<T, F>(&self, name: impl Into<String>, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let name = name.into();
        let vtid;
        let clock;
        {
            let mut inner = self.shared.mu.lock();
            vtid = Vtid::from_index(inner.slots.len());
            let mut slot = ThreadSlot::new(name.clone());
            if !self.deterministic() {
                slot.status = ThreadStatus::Running;
            }
            // Priority policy: a pinned thread takes its pin verbatim;
            // everything else draws from the base range. Spawn order is
            // deterministic in deterministic mode, so the draw sequence —
            // and thus the whole priority assignment — is a function of
            // the seed.
            if let SchedPolicy::Priority { .. } = self.shared.config.policy {
                slot.priority = match self
                    .shared
                    .config
                    .priority_pins
                    .iter()
                    .find(|(pin, _)| *pin == name)
                {
                    Some((_, p)) => *p,
                    None => {
                        let mut rng = self.shared.rng.lock();
                        rng.gen_range(PRIORITY_BASE_MIN..PRIORITY_BASE_MAX + 1)
                    }
                };
            }
            clock = Arc::clone(&slot.clock);
            inner.slots.push(slot);
            inner.live += 1;
        }

        let cell: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
        let cell2 = Arc::clone(&cell);
        let rt = self.clone();
        let deterministic = self.deterministic();

        let os = std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || {
                CURRENT.with(|c| {
                    *c.borrow_mut() = Some(Ctx {
                        rt: rt.clone(),
                        vtid,
                        clock,
                    })
                });
                if deterministic {
                    rt.wait_for_first_grant(vtid);
                }
                let result = catch_unwind(AssertUnwindSafe(f));
                *cell2.lock() = Some(result);
                rt.finish_current(vtid);
            })
            .expect("failed to spawn OS thread for virtual thread");

        JoinHandle::new(self.clone(), vtid, cell, os, name)
    }

    fn wait_for_first_grant(&self, me: Vtid) {
        let mut inner = self.shared.mu.lock();
        loop {
            if inner.poison.is_some() || inner.slot(me).granted {
                break;
            }
            let cv = Arc::clone(&inner.slot(me).cv);
            cv.wait(&mut inner);
        }
        let slot = inner.slot_mut(me);
        slot.granted = false;
        slot.status = ThreadStatus::Running;
    }

    /// Start scheduling (deterministic mode) and wait until every virtual
    /// thread has finished. Returns the poison error if the run deadlocked
    /// or was aborted.
    pub fn run(&self) -> SchedResult<()> {
        self.shared.started.store(true, Ordering::SeqCst);
        let mut inner = self.shared.mu.lock();
        if self.deterministic() {
            self.kick(&mut inner);
        }
        while inner.live > 0 {
            self.shared.driver_cv.wait(&mut inner);
        }
        match &inner.poison {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// The poison error, if the run deadlocked or was shut down.
    pub fn error(&self) -> Option<SchedError> {
        self.shared.mu.lock().poison.clone()
    }

    /// Number of virtual threads that have not yet finished.
    pub fn live_threads(&self) -> usize {
        self.shared.mu.lock().live
    }

    /// Total virtual threads ever spawned.
    pub fn total_threads(&self) -> usize {
        self.shared.mu.lock().slots.len()
    }

    /// Name given to `vtid` at spawn.
    pub fn thread_name(&self, vtid: Vtid) -> String {
        self.shared.mu.lock().slot(vtid).name.clone()
    }

    /// Scheduling decisions taken so far.
    pub fn steps(&self) -> u64 {
        self.shared.mu.lock().steps
    }

    // ---- scheduling primitives -------------------------------------------

    /// A voluntary yield point. In deterministic mode this is where the
    /// scheduler may switch to another virtual thread; in free mode it is a
    /// no-op (modulo poison checking). Must be called from a virtual thread.
    pub fn yield_now(&self) -> SchedResult<()> {
        if self.shared.poisoned.load(Ordering::Relaxed) {
            return Err(self.error().unwrap_or(SchedError::Shutdown));
        }
        if !self.deterministic() {
            return Ok(());
        }
        let me = current_vtid().expect("yield_now called outside a virtual thread");
        let mut inner = self.shared.mu.lock();
        if let Some(p) = &inner.poison {
            return Err(p.clone());
        }
        inner.slot_mut(me).status = ThreadStatus::Runnable;
        let chosen = self.choose(&mut inner);
        self.count_step(&mut inner)?;
        if chosen == Some(me) {
            let slot = inner.slot_mut(me);
            slot.status = ThreadStatus::Running;
            inner.last_granted = Some(me);
            return Ok(());
        }
        if let Some(next) = chosen {
            self.grant(&mut inner, next);
        }
        self.wait_for_grant(inner, me)
    }

    /// Block the calling virtual thread until another thread calls
    /// [`Runtime::unblock`] on it. If an unblock was already delivered
    /// (wake token), returns immediately after a reschedule. Returns an
    /// error if the whole system deadlocks while this thread is blocked.
    pub fn block_current(&self, reason: BlockReason) -> SchedResult<()> {
        let me = current_vtid().expect("block_current called outside a virtual thread");
        let mut inner = self.shared.mu.lock();
        if let Some(p) = &inner.poison {
            return Err(p.clone());
        }
        if inner.slot(me).wake_tokens > 0 {
            inner.slot_mut(me).wake_tokens -= 1;
            drop(inner);
            return self.yield_now();
        }
        inner.slot_mut(me).status = ThreadStatus::Blocked(reason);
        if self.deterministic() {
            match self.choose(&mut inner) {
                Some(next) => {
                    self.count_step(&mut inner)?;
                    self.grant(&mut inner, next);
                }
                None => {
                    if inner.live > 0 && inner.running_count() == 0 {
                        self.declare_deadlock(&mut inner);
                        return Err(inner.poison.clone().expect("poison just set"));
                    }
                }
            }
            self.wait_for_grant(inner, me)
        } else {
            // Free mode: park on our condvar until a wake token arrives.
            loop {
                if let Some(p) = &inner.poison {
                    return Err(p.clone());
                }
                if inner.slot(me).wake_tokens > 0 {
                    inner.slot_mut(me).wake_tokens -= 1;
                    inner.slot_mut(me).status = ThreadStatus::Running;
                    return Ok(());
                }
                let cv = Arc::clone(&inner.slot(me).cv);
                cv.wait(&mut inner);
            }
        }
    }

    /// Make a blocked virtual thread runnable again (or credit it a wake
    /// token if it is not currently blocked). Safe to call from any thread.
    pub fn unblock(&self, vtid: Vtid) {
        let mut inner = self.shared.mu.lock();
        self.unblock_locked(&mut inner, vtid);
        // If nothing is running (e.g. unblock from the driver), kick.
        if self.deterministic()
            && self.shared.started.load(Ordering::SeqCst)
            && inner.running_count() == 0
        {
            self.kick(&mut inner);
        }
    }

    fn unblock_locked(&self, inner: &mut Inner, vtid: Vtid) {
        let deterministic = self.deterministic();
        let slot = inner.slot_mut(vtid);
        match &slot.status {
            ThreadStatus::Blocked(_) if deterministic => {
                slot.status = ThreadStatus::Runnable;
            }
            ThreadStatus::Finished => {}
            _ => {
                slot.wake_tokens += 1;
                if !deterministic {
                    slot.cv.notify_all();
                }
            }
        }
    }

    fn finish_current(&self, me: Vtid) {
        let mut inner = self.shared.mu.lock();
        // Fold our final clock into the makespan.
        let final_clock = inner.slot(me).clock.load(Ordering::Relaxed);
        self.shared
            .makespan
            .fetch_max(final_clock, Ordering::Relaxed);
        inner.slot_mut(me).status = ThreadStatus::Finished;
        inner.live -= 1;
        let waiters = std::mem::take(&mut inner.slot_mut(me).join_waiters);
        for w in waiters {
            self.unblock_locked(&mut inner, w);
        }
        self.shared.driver_cv.notify_all();
        if self.deterministic() && inner.live > 0 {
            match self.choose(&mut inner) {
                Some(next) => {
                    if self.count_step(&mut inner).is_ok() {
                        self.grant(&mut inner, next);
                    }
                }
                None => {
                    if inner.running_count() == 0 {
                        self.declare_deadlock(&mut inner);
                    }
                }
            }
        }
    }

    /// Cooperatively wait for `target` to finish. Used by [`JoinHandle`].
    pub(crate) fn join_wait(&self, target: Vtid) -> SchedResult<()> {
        if let Some(me) = current_vtid() {
            loop {
                let mut inner = self.shared.mu.lock();
                if inner.slot(target).status == ThreadStatus::Finished {
                    return Ok(());
                }
                if let Some(p) = &inner.poison {
                    return Err(p.clone());
                }
                let name = inner.slot(target).name.clone();
                inner.slot_mut(target).join_waiters.push(me);
                drop(inner);
                self.block_current(BlockReason::Join(name))?;
            }
        } else {
            let mut inner = self.shared.mu.lock();
            loop {
                if inner.slot(target).status == ThreadStatus::Finished {
                    return Ok(());
                }
                if inner.poison.is_some() && inner.live == 0 {
                    return Err(inner.poison.clone().unwrap());
                }
                self.shared.driver_cv.wait(&mut inner);
            }
        }
    }

    pub(crate) fn is_finished(&self, target: Vtid) -> bool {
        self.shared.mu.lock().slot(target).status == ThreadStatus::Finished
    }

    // ---- internal scheduling helpers -------------------------------------

    fn choose(&self, inner: &mut Inner) -> Option<Vtid> {
        let runnable = inner.runnable();
        if runnable.is_empty() {
            return None;
        }
        if let SchedPolicy::Priority { .. } = self.shared.config.policy {
            // PCT change point: when this decision's index was drawn at
            // construction, the thread that would win is demoted below
            // every other thread (and below all earlier demotions), handing
            // the step — and all subsequent ones until the next change
            // point — to the runner-up.
            let mut pct = self.shared.pct.lock();
            pct.decisions += 1;
            if pct.change_points.binary_search(&pct.decisions).is_ok() {
                let top = Self::top_priority(inner, &runnable);
                pct.next_demotion -= 1;
                let demoted = pct.next_demotion;
                inner.slot_mut(top).priority = demoted;
            }
        }
        let inner: &Inner = inner;
        let mut rng = self.shared.rng.lock();
        Some(self.shared.config.policy.choose(
            &runnable,
            |v| inner.slot(v).clock_now(),
            |v| inner.slot(v).priority,
            inner.last_granted,
            &mut rng,
        ))
    }

    /// The thread the priority policy would pick: maximum priority, ties
    /// toward the smaller id. Mirrors the policy's own arm so change-point
    /// demotion targets exactly the would-be winner.
    fn top_priority(inner: &Inner, runnable: &[Vtid]) -> Vtid {
        let mut best = runnable[0];
        let mut best_prio = inner.slot(best).priority;
        for &v in &runnable[1..] {
            let p = inner.slot(v).priority;
            if p > best_prio || (p == best_prio && v < best) {
                best = v;
                best_prio = p;
            }
        }
        best
    }

    fn grant(&self, inner: &mut Inner, next: Vtid) {
        inner.last_granted = Some(next);
        let slot = inner.slot_mut(next);
        slot.granted = true;
        slot.status = ThreadStatus::Running;
        slot.cv.notify_all();
    }

    fn kick(&self, inner: &mut Inner) {
        if inner.running_count() > 0 {
            return;
        }
        if let Some(next) = self.choose(inner) {
            if self.count_step(inner).is_ok() {
                self.grant(inner, next);
            }
        } else if inner.live > 0 && !inner.blocked().is_empty() {
            self.declare_deadlock(inner);
        }
    }

    fn count_step(&self, inner: &mut Inner) -> SchedResult<()> {
        inner.steps += 1;
        if let Some(max) = self.shared.config.max_steps {
            if inner.steps > max {
                self.poison_all(inner, SchedError::Shutdown);
                return Err(SchedError::Shutdown);
            }
        }
        Ok(())
    }

    fn wait_for_grant(&self, mut inner: MutexGuard<'_, Inner>, me: Vtid) -> SchedResult<()> {
        loop {
            if let Some(p) = &inner.poison {
                return Err(p.clone());
            }
            if inner.slot(me).granted {
                let slot = inner.slot_mut(me);
                slot.granted = false;
                slot.status = ThreadStatus::Running;
                return Ok(());
            }
            let cv = Arc::clone(&inner.slot(me).cv);
            cv.wait(&mut inner);
        }
    }

    fn declare_deadlock(&self, inner: &mut Inner) {
        let blocked = inner
            .blocked()
            .into_iter()
            .map(|v| {
                let slot = inner.slot(v);
                let reason = match &slot.status {
                    ThreadStatus::Blocked(r) => r.clone(),
                    _ => BlockReason::Other("unknown".into()),
                };
                BlockedThread {
                    vtid: v,
                    name: slot.name.clone(),
                    reason,
                }
            })
            .collect();
        let info = DeadlockInfo {
            blocked,
            step: inner.steps,
        };
        self.poison_all(inner, SchedError::Deadlock(info));
    }

    /// Set the poison, ungate everything, and wake every parked thread so
    /// the whole system can unwind.
    fn poison_all(&self, inner: &mut Inner, err: SchedError) {
        if inner.poison.is_none() {
            inner.poison = Some(err);
        }
        self.shared.poisoned.store(true, Ordering::SeqCst);
        for slot in &mut inner.slots {
            slot.cv.notify_all();
        }
        self.shared.driver_cv.notify_all();
    }

    /// Abort the run: every blocked or parked thread wakes with
    /// [`SchedError::Shutdown`]. Intended for harness-level timeouts.
    pub fn shutdown(&self) {
        let mut inner = self.shared.mu.lock();
        self.poison_all(&mut inner, SchedError::Shutdown);
    }

    // ---- virtual time ------------------------------------------------------

    /// Advance the calling virtual thread's clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.advance(SimTime::from_nanos(ns));
    }

    /// Advance the calling virtual thread's clock by `dt`.
    pub fn advance(&self, dt: SimTime) {
        CURRENT.with(|c| {
            let b = c.borrow();
            let ctx = b.as_ref().expect("advance called outside a virtual thread");
            let new = ctx.clock.fetch_add(dt.as_nanos(), Ordering::Relaxed) + dt.as_nanos();
            self.shared.makespan.fetch_max(new, Ordering::Relaxed);
        });
    }

    /// The calling virtual thread's clock.
    pub fn clock(&self) -> SimTime {
        CURRENT.with(|c| {
            let b = c.borrow();
            let ctx = b.as_ref().expect("clock called outside a virtual thread");
            SimTime::from_nanos(ctx.clock.load(Ordering::Relaxed))
        })
    }

    /// Raise the calling virtual thread's clock to at least `t` (message
    /// delivery: receiver time = max(receiver, sender + latency)).
    pub fn merge_clock(&self, t: SimTime) {
        CURRENT.with(|c| {
            let b = c.borrow();
            let ctx = b
                .as_ref()
                .expect("merge_clock called outside a virtual thread");
            ctx.clock.fetch_max(t.as_nanos(), Ordering::Relaxed);
            self.shared
                .makespan
                .fetch_max(t.as_nanos(), Ordering::Relaxed);
        });
    }

    /// `vtid`'s current clock.
    pub fn clock_of(&self, vtid: Vtid) -> SimTime {
        self.shared.mu.lock().slot(vtid).clock_now()
    }

    /// Maximum virtual clock observed across all threads, ever — the
    /// simulated makespan of the run.
    pub fn makespan(&self) -> SimTime {
        SimTime::from_nanos(self.shared.makespan.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.shared.mu.lock();
        f.debug_struct("Runtime")
            .field("mode", &self.shared.config.mode)
            .field("threads", &inner.slots.len())
            .field("live", &inner.live)
            .field("steps", &inner.steps)
            .field("poison", &inner.poison)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedPolicy;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_runs_to_completion() {
        let rt = Runtime::new(SchedConfig::deterministic(1));
        let h = rt.spawn("solo", || 42);
        rt.run().unwrap();
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(rt.live_threads(), 0);
    }

    #[test]
    fn free_mode_runs_without_run_call_gating() {
        let rt = Runtime::new(SchedConfig::free());
        let h = rt.spawn("free", || "done");
        assert_eq!(h.join().unwrap(), "done");
    }

    #[test]
    fn deterministic_interleaving_is_reproducible() {
        let order_for_seed = |seed: u64| {
            let rt = Runtime::new(SchedConfig::deterministic(seed));
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..4 {
                let rt2 = rt.clone();
                let log2 = Arc::clone(&log);
                handles.push(rt.spawn(format!("t{i}"), move || {
                    for _ in 0..5 {
                        log2.lock().push(i);
                        rt2.yield_now().unwrap();
                    }
                }));
            }
            rt.run().unwrap();
            for h in handles {
                h.join().unwrap();
            }
            Arc::try_unwrap(log).unwrap().into_inner()
        };
        assert_eq!(order_for_seed(11), order_for_seed(11));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let order_for_seed = |seed: u64| {
            let rt = Runtime::new(SchedConfig::deterministic(seed));
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..3 {
                let rt2 = rt.clone();
                let log2 = Arc::clone(&log);
                rt.spawn(format!("t{i}"), move || {
                    for _ in 0..8 {
                        log2.lock().push(i);
                        rt2.yield_now().unwrap();
                    }
                });
            }
            rt.run().unwrap();
            Arc::try_unwrap(log).unwrap().into_inner()
        };
        // Not guaranteed in principle, but over 24 scheduling points the
        // probability of identical random schedules is negligible.
        assert_ne!(order_for_seed(1), order_for_seed(2));
    }

    #[test]
    fn block_unblock_pingpong() {
        let rt = Runtime::new(SchedConfig::deterministic(3));
        let flag = Arc::new(AtomicBool::new(false));
        let rt_a = rt.clone();
        let flag_a = Arc::clone(&flag);
        let a = rt.spawn("blocker", move || {
            while !flag_a.load(Ordering::SeqCst) {
                rt_a.block_current(BlockReason::Other("wait flag".into()))
                    .unwrap();
            }
            true
        });
        let rt_b = rt.clone();
        let flag_b = Arc::clone(&flag);
        let target = a.vtid();
        rt.spawn("waker", move || {
            rt_b.yield_now().unwrap();
            flag_b.store(true, Ordering::SeqCst);
            rt_b.unblock(target);
        });
        rt.run().unwrap();
        assert!(a.join().unwrap());
    }

    #[test]
    fn wake_token_before_block_is_not_lost() {
        let rt = Runtime::new(SchedConfig::deterministic(5));
        let rt_a = rt.clone();
        let a = rt.spawn("late-blocker", move || {
            // Burn some yields so the waker very likely unblocks first.
            for _ in 0..10 {
                rt_a.yield_now().unwrap();
            }
            rt_a.block_current(BlockReason::Other("token".into()))
                .unwrap();
            7
        });
        let rt_b = rt.clone();
        let target = a.vtid();
        rt.spawn("early-waker", move || {
            rt_b.unblock(target);
        });
        rt.run().unwrap();
        assert_eq!(a.join().unwrap(), 7);
    }

    #[test]
    fn whole_system_deadlock_is_detected() {
        let rt = Runtime::new(SchedConfig::deterministic(7));
        for i in 0..2 {
            let rt2 = rt.clone();
            rt.spawn(format!("stuck{i}"), move || {
                let e = rt2
                    .block_current(BlockReason::Message(format!("recv{i}")))
                    .unwrap_err();
                assert!(matches!(e, SchedError::Deadlock(_)));
            });
        }
        let err = rt.run().unwrap_err();
        match err {
            SchedError::Deadlock(info) => {
                assert_eq!(info.blocked.len(), 2);
                assert!(info.involves("recv0"));
                assert!(info.involves("recv1"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn join_from_vthread_is_cooperative() {
        let rt = Runtime::new(SchedConfig::deterministic(9));
        let rt_a = rt.clone();
        let child = rt.spawn("child", move || {
            rt_a.yield_now().unwrap();
            21
        });
        let rt_b = rt.clone();
        let parent = rt.spawn("parent", move || {
            let _ = rt_b.yield_now();
            2 * child.join().unwrap()
        });
        rt.run().unwrap();
        assert_eq!(parent.join().unwrap(), 42);
    }

    #[test]
    fn virtual_clocks_and_makespan() {
        let rt = Runtime::new(SchedConfig::time_faithful(0));
        let rt_a = rt.clone();
        rt.spawn("fast", move || rt_a.advance_ns(10));
        let rt_b = rt.clone();
        rt.spawn("slow", move || {
            rt_b.advance_ns(100);
            assert_eq!(rt_b.clock().as_nanos(), 100);
            rt_b.merge_clock(SimTime::from_nanos(500));
            assert_eq!(rt_b.clock().as_nanos(), 500);
        });
        rt.run().unwrap();
        assert_eq!(rt.makespan().as_nanos(), 500);
    }

    #[test]
    fn earliest_clock_first_serializes_by_time() {
        let rt = Runtime::new(
            SchedConfig::deterministic(0).with_policy(SchedPolicy::EarliestClockFirst),
        );
        let log: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        for (i, cost) in [30u64, 10, 20].into_iter().enumerate() {
            let rt2 = rt.clone();
            let log2 = Arc::clone(&log);
            rt.spawn(format!("w{i}"), move || {
                for _ in 0..3 {
                    log2.lock().push((rt2.clock().as_nanos(), i));
                    rt2.advance_ns(cost);
                    rt2.yield_now().unwrap();
                }
            });
        }
        rt.run().unwrap();
        let log = Arc::try_unwrap(log).unwrap().into_inner();
        // Step *start* times must be nondecreasing: the policy always runs
        // the least-advanced runnable thread next.
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "out of order: {log:?}");
        }
    }

    #[test]
    fn panicking_thread_does_not_hang_the_runtime() {
        let rt = Runtime::new(SchedConfig::deterministic(4));
        let bad = rt.spawn("bad", || panic!("boom"));
        let rt2 = rt.clone();
        let good = rt.spawn("good", move || {
            rt2.yield_now().unwrap();
            1
        });
        rt.run().unwrap();
        assert!(bad.join().is_err());
        assert_eq!(good.join().unwrap(), 1);
    }

    #[test]
    fn max_steps_aborts_livelock() {
        let rt = Runtime::new(SchedConfig::deterministic(0).with_max_steps(Some(100)));
        let rt2 = rt.clone();
        rt.spawn("spinner", move || loop {
            if rt2.yield_now().is_err() {
                break;
            }
        });
        let err = rt.run().unwrap_err();
        assert_eq!(err, SchedError::Shutdown);
    }

    #[test]
    fn dynamic_spawn_from_vthread() {
        let rt = Runtime::new(SchedConfig::deterministic(6));
        let counter = Arc::new(AtomicUsize::new(0));
        let rt2 = rt.clone();
        let c2 = Arc::clone(&counter);
        rt.spawn("forker", move || {
            let mut hs = Vec::new();
            for i in 0..3 {
                let c3 = Arc::clone(&c2);
                let rt3 = rt2.clone();
                hs.push(rt2.spawn(format!("kid{i}"), move || {
                    rt3.yield_now().unwrap();
                    c3.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for h in hs {
                h.join().unwrap();
            }
        });
        rt.run().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    fn priority_order(seed: u64, depth: u8, pins: Vec<(String, i64)>) -> Vec<usize> {
        let rt = Runtime::new(
            SchedConfig::deterministic(seed)
                .with_policy(SchedPolicy::Priority { depth })
                .with_pct_horizon(16)
                .with_priority_pins(pins),
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let rt2 = rt.clone();
            let log2 = Arc::clone(&log);
            rt.spawn(format!("t{i}"), move || {
                for _ in 0..5 {
                    log2.lock().push(i);
                    rt2.yield_now().unwrap();
                }
            });
        }
        rt.run().unwrap();
        Arc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn priority_schedule_is_reproducible() {
        assert_eq!(
            priority_order(42, 3, Vec::new()),
            priority_order(42, 3, Vec::new())
        );
    }

    #[test]
    fn priority_depth_changes_the_schedule() {
        // depth 0 = fixed priorities: strictly one thread to completion,
        // then the next. With change points the prefix winner gets demoted
        // at some step, so (very likely for this seed) the orders differ.
        assert_ne!(
            priority_order(42, 0, Vec::new()),
            priority_order(42, 4, Vec::new())
        );
    }

    #[test]
    fn priority_pins_override_draws() {
        // Pin t2 above PRIORITY_BASE_MAX and t0 below zero: t2 must run all
        // its steps first and t0 all its steps last, regardless of seed.
        let pins = vec![
            ("t2".to_string(), PRIORITY_BASE_MAX + 10),
            ("t0".to_string(), -10),
        ];
        let order = priority_order(7, 0, pins);
        assert_eq!(&order[..5], &[2usize, 2, 2, 2, 2][..]);
        assert_eq!(&order[15..], &[0usize, 0, 0, 0, 0][..]);
    }

    #[test]
    fn steps_are_counted() {
        let rt = Runtime::new(SchedConfig::deterministic(0));
        let rt2 = rt.clone();
        rt.spawn("y", move || {
            for _ in 0..5 {
                rt2.yield_now().unwrap();
            }
        });
        rt.run().unwrap();
        assert!(rt.steps() >= 5);
    }
}

#[cfg(test)]
mod free_mode_tests {
    use super::*;
    use crate::{SchedConfig, SimTime};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn free_mode_runs_threads_concurrently() {
        let rt = Runtime::new(SchedConfig::free());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = Arc::clone(&counter);
            let rt2 = rt.clone();
            handles.push(rt.spawn(format!("w{i}"), move || {
                for _ in 0..100 {
                    c.fetch_add(1, Ordering::Relaxed);
                    rt2.yield_now().unwrap();
                }
            }));
        }
        rt.run().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn free_mode_block_unblock() {
        let rt = Runtime::new(SchedConfig::free());
        let blocker = rt.spawn("blocker", {
            let rt = rt.clone();
            move || {
                rt.block_current(crate::BlockReason::Other("free wait".into()))
                    .unwrap();
                5
            }
        });
        let target = blocker.vtid();
        let rt2 = rt.clone();
        rt.spawn("waker", move || {
            // Give the blocker a moment to actually park, then wake it.
            std::thread::sleep(std::time::Duration::from_millis(10));
            rt2.unblock(target);
        });
        rt.run().unwrap();
        assert_eq!(blocker.join().unwrap(), 5);
    }

    #[test]
    fn free_mode_wake_token_before_block() {
        let rt = Runtime::new(SchedConfig::free());
        let h = rt.spawn("late", {
            let rt = rt.clone();
            move || {
                // Token arrives (possibly) before we block; must not hang.
                std::thread::sleep(std::time::Duration::from_millis(10));
                rt.block_current(crate::BlockReason::Other("token".into()))
                    .unwrap();
                1
            }
        });
        rt.unblock(h.vtid());
        rt.run().unwrap();
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn free_mode_virtual_clocks_still_tracked() {
        let rt = Runtime::new(SchedConfig::free());
        let rt2 = rt.clone();
        rt.spawn("t", move || {
            rt2.advance(SimTime::from_micros(5));
        });
        rt.run().unwrap();
        assert_eq!(rt.makespan(), SimTime::from_micros(5));
    }
}
