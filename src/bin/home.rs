//! `home` — the command-line front end of the checker.
//!
//! ```text
//! home check   <file.hmp> [--procs N] [--threads N] [--seeds a,b,c] [--jobs N] [--faithful]
//!                          [--fail-seed a,b]
//! home static  <file.hmp>
//! home run     <file.hmp> [--procs N] [--threads N] [--seed S] [--tool base|home|marmot|itc]
//!                          [--trace-out trace.json]
//! home analyze <trace.json>
//! home fmt     <file.hmp>
//! home help
//! ```
//!
//! * `check`   — the full HOME pipeline; exits nonzero if violations found.
//! * `static`  — compile-time phase only: per-site instrumentation decisions.
//! * `run`     — execute once on the simulators and report timing/events;
//!   `--trace-out` dumps the recorded event trace as JSON.
//! * `analyze` — offline mode: run the dynamic phase + rule matching over a
//!   previously dumped trace (the paper's offline analysis).
//! * `fmt`     — parse and reprint in canonical form.
//! * `help`    — print the command and option reference.

// The CLI never panics on user input: every failure is a diagnostic plus a
// documented exit code (0 clean, 1 findings, 2 usage/input, 3 partial).
#![deny(clippy::unwrap_used, clippy::expect_used)]

use home::baselines::Tool;
use home::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "usage: home <check|static|run|analyze|fmt|help> <file> [options]";

fn print_help() {
    println!("home — detect thread-safety violations in hybrid OpenMP/MPI programs");
    println!();
    println!("{USAGE}");
    println!();
    println!("commands:");
    println!("  check   <file.hmp>   full pipeline: static analysis, multi-seed simulation,");
    println!("                       race detection, violation matching; exit 1 on findings");
    println!("  static  <file.hmp>   compile-time phase only: per-site instrumentation decisions");
    println!("  run     <file.hmp>   one simulated execution; report timing and events");
    println!("  analyze <trace.json> offline dynamic phase over a previously dumped trace");
    println!("  fmt     <file.hmp>   parse and reprint in canonical form");
    println!("  help                 print this reference");
    println!();
    println!("check options:");
    println!("  --procs N       MPI processes to simulate (default 2)");
    println!("  --threads N     OpenMP threads per process (default 2)");
    println!("  --seeds a,b,c   scheduler seeds to explore (default 1,2,3,4)");
    println!("  --jobs N        worker threads for the seed/rank fan-out;");
    println!("                  1 = serial, default = available parallelism.");
    println!("                  The report is identical for every value.");
    println!("  --faithful      time-faithful scheduling instead of randomized");
    println!("  --fail-seed a,b inject a deliberate failure into the listed seeds");
    println!("                  (fault-isolation testing; the other seeds still run");
    println!("                  and the partial report exits with code 3)");
    println!();
    println!("run options:");
    println!("  --procs N / --threads N   as above");
    println!("  --seed S                  scheduler seed (default 7)");
    println!("  --tool base|home|marmot|itc  instrumentation profile (default base)");
    println!("  --trace-out trace.json    dump the recorded event trace as JSON");
    println!();
    println!("exit codes: 0 clean, 1 violations or deadlock found, 2 usage or input error,");
    println!("            3 partial results (one or more seeds failed; see the report)");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(
        args.first().map(String::as_str),
        Some("help") | Some("--help") | Some("-h")
    ) {
        print_help();
        return ExitCode::SUCCESS;
    }
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) if !f.starts_with("--") => (c.as_str(), f.as_str()),
        _ => {
            eprintln!("{USAGE}");
            eprintln!("run `home help` for details");
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("home: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    if cmd == "analyze" {
        return cmd_analyze(file, &source);
    }
    let program = match parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("home: {file}: {e}");
            return ExitCode::from(2);
        }
    };

    match cmd {
        "check" => cmd_check(&program, &args),
        "static" => cmd_static(&program),
        "run" => cmd_run(&program, &args),
        "fmt" => {
            print!("{}", print_program(&program));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("home: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

/// Value of `name`, if the flag is present. A flag at the end of the
/// argument list with no value following it is an error, not a silent miss.
fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.as_str())),
            None => Err(format!("missing value for {name}")),
        },
    }
}

/// Parse `name`'s value as an unsigned integer, defaulting when absent.
/// An unparseable value is an error (exit 2), never a silent default.
fn usize_flag(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, name)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            format!("invalid value `{v}` for {name}: expected a non-negative integer")
        }),
    }
}

/// Print a usage error and yield exit code 2.
fn usage_error(message: &str) -> ExitCode {
    eprintln!("home: {message}");
    eprintln!("run `home help` for details");
    ExitCode::from(2)
}

fn cmd_check(program: &Program, args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<CheckOptions, String> {
        let mut options = CheckOptions::new(
            usize_flag(args, "--procs", 2)?,
            usize_flag(args, "--threads", 2)?,
        );
        if let Some(seeds) = flag_value(args, "--seeds")? {
            let mut parsed_seeds = Vec::new();
            for part in seeds.split(',') {
                let part = part.trim();
                parsed_seeds.push(part.parse::<u64>().map_err(|_| {
                    format!(
                        "invalid seed `{part}` in --seeds: expected a comma-separated list of integers"
                    )
                })?);
            }
            if parsed_seeds.is_empty() {
                return Err("--seeds needs a comma-separated list of integers".into());
            }
            options.seeds = parsed_seeds;
        }
        let jobs = usize_flag(args, "--jobs", home::dynamic::default_jobs())?;
        if jobs == 0 {
            return Err("invalid value `0` for --jobs: expected at least 1".into());
        }
        options = options.with_jobs(jobs);
        if args.iter().any(|a| a == "--faithful") {
            options.sched_policy = SchedPolicy::EarliestClockFirst;
        }
        if let Some(fails) = flag_value(args, "--fail-seed")? {
            let mut parsed_fails = Vec::new();
            for part in fails.split(',') {
                let part = part.trim();
                parsed_fails.push(part.parse::<u64>().map_err(|_| {
                    format!(
                        "invalid seed `{part}` in --fail-seed: expected a comma-separated list of integers"
                    )
                })?);
            }
            options.inject_panic_seeds = parsed_fails;
        }
        Ok(options)
    })();
    let options = match parsed {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    let report = check(program, &options);
    print!("{}", report.render());
    // Exit-code precedence: usage errors returned 2 above; partial results
    // (a failed seed) trump a violation verdict because the verdict is
    // incomplete; then 1 for findings, 0 for a clean full run.
    if report.partial {
        ExitCode::from(3)
    } else if report.violations.is_empty() && report.deadlocks.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_static(program: &Program) -> ExitCode {
    let report = analyze(program);
    println!(
        "{} MPI call sites, {} instrumented, {} skipped, {} unreachable",
        report.stats.total_mpi_calls,
        report.stats.instrumented,
        report.stats.skipped,
        report.stats.unreachable
    );
    println!(
        "{} parallel region(s), {} error-free",
        report.stats.regions, report.stats.error_free_regions
    );
    for site in &report.checklist.sites {
        let marks = [
            site.instrument.then_some("instrument"),
            site.in_hybrid_region.then_some("hybrid"),
            (!site.reachable).then_some("unreachable"),
            (site.tag_thread_distinct == Some(true)).then_some("tag=f(tid)"),
            site.is_collective.then_some("collective"),
        ]
        .into_iter()
        .flatten()
        .collect::<Vec<_>>()
        .join(", ");
        println!("  line {:>3}  {:<16} [{marks}]", site.line, site.name);
    }
    if !report.checklist.monitored_vars.is_empty() {
        println!(
            "monitored variables: {}",
            report.checklist.monitored_vars.join(", ")
        );
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(file: &str, trace_json: &str) -> ExitCode {
    let trace = match home::trace::Trace::from_json(trace_json) {
        Ok(t) => t,
        // One line naming the file and, when the parser knows it, the byte
        // offset of the problem — greppable and stable for scripting.
        Err(e) => {
            match e.byte_offset() {
                Some(off) => eprintln!("home: {file}: byte {off}: {e}"),
                None => eprintln!("home: {file}: {e}"),
            }
            return ExitCode::from(2);
        }
    };
    // Structurally inconsistent traces (parseable JSON, impossible events)
    // surface as typed detector errors, same diagnostic shape as above.
    let races = match home::dynamic::detect(&trace, &home::dynamic::DetectorConfig::hybrid()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("home: {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = home::core::match_rules(&trace, &races, &[]);
    println!(
        "offline analysis: {} events, {} monitored race(s), {} violation(s)",
        trace.len(),
        races.len(),
        outcome.violations.len()
    );
    if !outcome.unclassified.is_empty() {
        println!(
            "warning: {} monitored race(s) lacked MPI call metadata and were not classified",
            outcome.unclassified.len()
        );
    }
    for v in &outcome.violations {
        println!("  - {v}");
    }
    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_run(program: &Program, args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(usize, usize, usize, Tool), String> {
        let nprocs = usize_flag(args, "--procs", 2)?;
        let threads = usize_flag(args, "--threads", 2)?;
        let seed = usize_flag(args, "--seed", 7)?;
        let tool = match flag_value(args, "--tool")?.unwrap_or("base") {
            "base" => Tool::Base,
            "home" => Tool::Home,
            "marmot" => Tool::Marmot,
            "itc" => Tool::Itc,
            other => return Err(format!("unknown tool `{other}`")),
        };
        Ok((nprocs, threads, seed, tool))
    })();
    let (nprocs, threads, seed, tool) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let checklist = std::sync::Arc::new(analyze(program).checklist.clone());
    let mut cfg = RunConfig::cluster(nprocs, seed as u64)
        .with_instrumentation(tool.instrumentation_scaled(nprocs))
        .with_checklist(checklist);
    cfg.threads_per_proc = threads;
    let result = run(program, &cfg);
    println!(
        "tool={} procs={nprocs} threads={} simulated time {}  events {}",
        result.tool, cfg.threads_per_proc, result.makespan, result.events_recorded
    );
    for i in &result.mpi_errors {
        println!(
            "incident: rank {} line {} {}: {}",
            i.rank, i.line, i.call, i.error
        );
    }
    for (r, e) in &result.runtime_errors {
        println!("runtime error: rank {r}: {e}");
    }
    match flag_value(args, "--trace-out") {
        Ok(Some(path)) => match std::fs::write(path, result.trace.to_json()) {
            Ok(()) => println!("trace written to {path}"),
            Err(e) => {
                eprintln!("home: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        },
        Ok(None) => {}
        Err(e) => return usage_error(&e),
    }
    match &result.deadlock {
        Some(d) => {
            println!("DEADLOCK: {d}");
            ExitCode::FAILURE
        }
        None => ExitCode::SUCCESS,
    }
}
