//! Internal scheduler state.

use crate::clock::SimTime;
use crate::vtid::Vtid;
use crate::SchedError;
use parking_lot::Condvar;
use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Why a virtual thread is blocked. Carried into deadlock reports so the
/// HOME pipeline can explain *what* each participant was waiting for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for a message (MPI receive/wait/probe). The payload is a
    /// human-readable description such as `"MPI_Recv(src=1, tag=0)"`.
    Message(String),
    /// Waiting to acquire a lock (OpenMP critical section or runtime lock).
    Lock(String),
    /// Waiting at a barrier (OpenMP barrier or MPI collective).
    Barrier(String),
    /// Waiting for another virtual thread to finish.
    Join(String),
    /// Waiting on a semaphore.
    Semaphore(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::Message(s) => write!(f, "message: {s}"),
            BlockReason::Lock(s) => write!(f, "lock: {s}"),
            BlockReason::Barrier(s) => write!(f, "barrier: {s}"),
            BlockReason::Join(s) => write!(f, "join: {s}"),
            BlockReason::Semaphore(s) => write!(f, "semaphore: {s}"),
            BlockReason::Other(s) => write!(f, "{s}"),
        }
    }
}

/// Lifecycle state of one virtual thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ThreadStatus {
    /// Wants to run; waiting for a grant.
    Runnable,
    /// Currently holds the execution token (deterministic mode) or is simply
    /// live (free mode).
    Running,
    /// Blocked on a scheduler primitive.
    Blocked(BlockReason),
    /// The closure returned or panicked.
    Finished,
}

/// Per-thread bookkeeping slot.
pub(crate) struct ThreadSlot {
    pub(crate) name: String,
    pub(crate) status: ThreadStatus,
    /// Pending wake tokens (park/unpark protocol): an `unblock` delivered
    /// before the target actually blocks must not be lost.
    pub(crate) wake_tokens: u32,
    /// True once a grant has been issued and not yet consumed.
    pub(crate) granted: bool,
    /// Condvar this thread parks on (paired with the runtime's global mutex).
    pub(crate) cv: Arc<Condvar>,
    /// Virtual clock, shared with the thread-local fast path.
    pub(crate) clock: Arc<AtomicU64>,
    /// Threads blocked in `join` on this thread.
    pub(crate) join_waiters: Vec<Vtid>,
    /// Scheduling priority ([`crate::SchedPolicy::Priority`] only): drawn
    /// or pinned at spawn, lowered by change-point demotions.
    pub(crate) priority: i64,
}

impl ThreadSlot {
    pub(crate) fn new(name: String) -> Self {
        ThreadSlot {
            name,
            status: ThreadStatus::Runnable,
            wake_tokens: 0,
            granted: false,
            cv: Arc::new(Condvar::new()),
            clock: Arc::new(AtomicU64::new(0)),
            join_waiters: Vec::new(),
            priority: 0,
        }
    }

    pub(crate) fn clock_now(&self) -> SimTime {
        SimTime::from_nanos(self.clock.load(std::sync::atomic::Ordering::Relaxed))
    }
}

/// Shared mutable scheduler state, protected by the runtime's global mutex.
pub(crate) struct Inner {
    pub(crate) slots: Vec<ThreadSlot>,
    /// Threads not yet `Finished`.
    pub(crate) live: usize,
    /// Scheduling decisions taken so far (deterministic mode).
    pub(crate) steps: u64,
    /// Last thread granted (for round-robin).
    pub(crate) last_granted: Option<Vtid>,
    /// Once set, every scheduler primitive returns this error and gating is
    /// disabled so that all threads can unwind.
    pub(crate) poison: Option<SchedError>,
}

impl Inner {
    pub(crate) fn new() -> Self {
        Inner {
            slots: Vec::new(),
            live: 0,
            steps: 0,
            last_granted: None,
            poison: None,
        }
    }

    pub(crate) fn runnable(&self) -> Vec<Vtid> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status == ThreadStatus::Runnable)
            .map(|(i, _)| Vtid::from_index(i))
            .collect()
    }

    pub(crate) fn blocked(&self) -> Vec<Vtid> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.status, ThreadStatus::Blocked(_)))
            .map(|(i, _)| Vtid::from_index(i))
            .collect()
    }

    pub(crate) fn running_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.status == ThreadStatus::Running)
            .count()
    }

    pub(crate) fn slot(&self, v: Vtid) -> &ThreadSlot {
        &self.slots[v.index()]
    }

    pub(crate) fn slot_mut(&mut self, v: Vtid) -> &mut ThreadSlot {
        &mut self.slots[v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_reason_display() {
        assert_eq!(
            BlockReason::Message("MPI_Recv(src=1)".into()).to_string(),
            "message: MPI_Recv(src=1)"
        );
        assert_eq!(BlockReason::Lock("cs".into()).to_string(), "lock: cs");
        assert_eq!(BlockReason::Other("x".into()).to_string(), "x");
    }

    #[test]
    fn inner_queries() {
        let mut inner = Inner::new();
        inner.slots.push(ThreadSlot::new("a".into()));
        inner.slots.push(ThreadSlot::new("b".into()));
        inner.live = 2;
        inner.slots[1].status = ThreadStatus::Blocked(BlockReason::Other("x".into()));
        assert_eq!(inner.runnable(), vec![Vtid::from_index(0)]);
        assert_eq!(inner.blocked(), vec![Vtid::from_index(1)]);
        assert_eq!(inner.running_count(), 0);
    }
}
