//! Variable environments with OpenMP shared/private semantics.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Storage slot: private values are per-thread copies; shared values are a
/// single per-process cell.
#[derive(Debug, Clone)]
pub enum Slot {
    Private(i64),
    Shared(Arc<Mutex<i64>>),
}

/// A lexical environment. On parallel-region entry each worker receives a
/// [`Env::fork`] copy: private slots are copied by value (firstprivate
/// semantics), shared slots alias the same cell.
#[derive(Debug, Clone, Default)]
pub struct Env {
    scopes: Vec<HashMap<String, Slot>>,
}

impl Env {
    /// A fresh environment with one global scope.
    pub fn new() -> Env {
        Env {
            scopes: vec![HashMap::new()],
        }
    }

    /// Enter a lexical scope.
    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leave the innermost scope.
    pub fn pop(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the global scope");
        self.scopes.pop();
    }

    /// Declare a variable in the innermost scope.
    pub fn declare(&mut self, name: &str, shared: bool, value: i64) {
        let slot = if shared {
            Slot::Shared(Arc::new(Mutex::new(value)))
        } else {
            Slot::Private(value)
        };
        self.scopes
            .last_mut()
            .expect("environment always has a scope")
            .insert(name.to_string(), slot);
    }

    /// Read a variable (innermost scope wins). `None` if undeclared.
    pub fn get(&self, name: &str) -> Option<i64> {
        for scope in self.scopes.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return Some(match slot {
                    Slot::Private(v) => *v,
                    Slot::Shared(cell) => *cell.lock(),
                });
            }
        }
        None
    }

    /// Write a variable. Returns false if undeclared.
    pub fn set(&mut self, name: &str, value: i64) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                match slot {
                    Slot::Private(v) => *v = value,
                    Slot::Shared(cell) => *cell.lock() = value,
                }
                return true;
            }
        }
        false
    }

    /// Is `name` declared shared (innermost declaration wins)?
    pub fn is_shared(&self, name: &str) -> Option<bool> {
        for scope in self.scopes.iter().rev() {
            if let Some(slot) = scope.get(name) {
                return Some(matches!(slot, Slot::Shared(_)));
            }
        }
        None
    }

    /// Snapshot for a forked OpenMP worker: flattens scopes; private slots
    /// are copied, shared slots alias.
    pub fn fork(&self) -> Env {
        let mut flat: HashMap<String, Slot> = HashMap::new();
        for scope in &self.scopes {
            for (k, v) in scope {
                flat.insert(k.clone(), v.clone());
            }
        }
        Env { scopes: vec![flat] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_get_set() {
        let mut env = Env::new();
        env.declare("x", false, 1);
        assert_eq!(env.get("x"), Some(1));
        assert!(env.set("x", 5));
        assert_eq!(env.get("x"), Some(5));
        assert_eq!(env.get("y"), None);
        assert!(!env.set("y", 1));
    }

    #[test]
    fn scoping_shadows_and_pops() {
        let mut env = Env::new();
        env.declare("x", false, 1);
        env.push();
        env.declare("x", false, 2);
        assert_eq!(env.get("x"), Some(2));
        env.pop();
        assert_eq!(env.get("x"), Some(1));
    }

    #[test]
    fn fork_copies_private_and_aliases_shared() {
        let mut env = Env::new();
        env.declare("p", false, 10);
        env.declare("s", true, 20);
        let mut worker = env.fork();
        worker.set("p", 11);
        worker.set("s", 21);
        assert_eq!(env.get("p"), Some(10), "private copy isolated");
        assert_eq!(env.get("s"), Some(21), "shared cell aliased");
        assert_eq!(env.is_shared("p"), Some(false));
        assert_eq!(env.is_shared("s"), Some(true));
    }

    #[test]
    fn fork_flattens_scopes() {
        let mut env = Env::new();
        env.declare("a", false, 1);
        env.push();
        env.declare("b", false, 2);
        let w = env.fork();
        assert_eq!(w.get("a"), Some(1));
        assert_eq!(w.get("b"), Some(2));
    }

    #[test]
    #[should_panic(expected = "cannot pop the global scope")]
    fn popping_global_scope_panics() {
        let mut env = Env::new();
        env.pop();
    }
}
