//! Figure 4 bench target: LU-MZ execution under each tool.
//!
//! Criterion measures the *wall-clock* cost of simulating each
//! (tool, process-count) cell; the simulated-seconds series itself is
//! printed by `cargo run -p home-bench --bin report -- figure4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use home_baselines::Tool;
use home_bench::measure;
use home_npb::{Benchmark, Class};
use std::time::Duration;

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_lu_mz");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for np in [2usize, 8] {
        for tool in [Tool::Base, Tool::Home, Tool::Marmot, Tool::Itc] {
            group.bench_with_input(BenchmarkId::new(tool.label(), np), &np, |b, &np| {
                b.iter(|| measure(Benchmark::LuMz, Class::W, tool, np))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lu);
criterion_main!(benches);
