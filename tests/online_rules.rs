//! Online rule-engine tests (PR 5): every rule whose evidence completes
//! mid-run must emit its violation *live* — from the `observe_*` call
//! itself, before `RuleEngine::finish` — and `finish` must neither drop
//! nor duplicate it. The one deliberate exception is the
//! `MPI_THREAD_SINGLE` initialization arm, whose description reports the
//! whole-run region call count and therefore only fires at finish.
//!
//! The second half checks the pipeline-level contract: running
//! `check_with_sink` with a [`ViolationCollector`] on the bundled
//! programs, the per-seed emission stream reconstructs the batch report
//! exactly (per-seed canonical order, cross-seed dedup), each
//! [`EmitOrder`] key appears exactly once per seed, and the whole
//! emission sequence is deterministic across engines and repeated runs.

use home::core::{check_with_sink, CheckOptions, Engine, RuleEngine, ViolationCollector};
use home::core::{EmittedViolation, Violation, ViolationKind};
use home::dynamic::{Race, RaceAccess};
use home::interp::MpiIncident;
use home::prelude::parse;
use home::trace::{
    AccessKind, Event, EventKind, MemLoc, MonitoredVar, MpiCallKind, MpiCallRecord, Rank, RegionId,
    ReqId, SrcLoc, ThreadLevel, Tid, COMM_WORLD,
};
use std::path::Path;
use std::sync::Arc;

/// A worker-thread MPI call record with a fully specified envelope.
fn rec(kind: MpiCallKind) -> MpiCallRecord {
    MpiCallRecord {
        kind,
        peer: Some(0),
        tag: Some(7),
        comm: COMM_WORLD,
        request: None,
        is_main_thread: false,
        thread_level: Some(ThreadLevel::Multiple),
    }
}

fn access(seq: u64, tid: u32, mpi: MpiCallRecord) -> RaceAccess {
    RaceAccess {
        seq,
        tid: Tid(tid),
        region: Some(RegionId(0)),
        kind: AccessKind::Write,
        loc: Some(SrcLoc::new("t.hmp", seq as u32)),
        mpi: Some(mpi),
    }
}

fn race_on(var: MonitoredVar, a: MpiCallRecord, b: MpiCallRecord) -> Race {
    Race {
        rank: Rank(0),
        loc: MemLoc::Monitored(var),
        first: access(1, 0, a),
        second: access(2, 1, b),
    }
}

fn event(kind: EventKind) -> Event {
    Event {
        seq: 0,
        rank: Rank(0),
        tid: Tid(1),
        region: Some(RegionId(0)),
        time_ns: 0,
        loc: Some(SrcLoc::new("t.hmp", 3)),
        kind,
    }
}

/// Assert that `live` holds exactly the expected kinds (order-insensitive),
/// all flagged live, and that `finish` re-derives the same violations
/// without re-emitting any of them.
fn assert_live_then_quiet_finish(
    engine: &mut RuleEngine,
    live: &[EmittedViolation],
    kinds: &[ViolationKind],
) {
    assert_eq!(live.len(), kinds.len(), "live emissions: {live:?}");
    for kind in kinds {
        assert!(
            live.iter().any(|e| e.violation.kind == *kind),
            "missing live {kind:?} in {live:?}"
        );
    }
    for e in live {
        assert!(e.live, "emission not flagged live: {e:?}");
    }
    let fin = engine.finish();
    assert!(
        fin.remaining.is_empty(),
        "finish re-emitted: {:?}",
        fin.remaining
    );
    for e in live {
        assert!(
            fin.outcome.violations.contains(&e.violation),
            "canonical outcome lost {:?}",
            e.violation
        );
    }
}

#[test]
fn concurrent_recv_fires_on_race_arrival() {
    let mut engine = RuleEngine::new();
    let live = engine.observe_race(&race_on(
        MonitoredVar::Tag,
        rec(MpiCallKind::Recv),
        rec(MpiCallKind::Irecv),
    ));
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::ConcurrentRecv]);
    assert_eq!(live[0].threads, vec![Tid(0), Tid(1)]);
}

#[test]
fn probe_race_fires_on_race_arrival() {
    let mut engine = RuleEngine::new();
    let live = engine.observe_race(&race_on(
        MonitoredVar::Tag,
        rec(MpiCallKind::Probe),
        rec(MpiCallKind::Recv),
    ));
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::Probe]);
}

#[test]
fn request_completion_race_fires_on_race_arrival() {
    let mut engine = RuleEngine::new();
    let wait = |k| MpiCallRecord {
        request: Some(ReqId(3)),
        ..rec(k)
    };
    let live = engine.observe_race(&race_on(
        MonitoredVar::Request,
        wait(MpiCallKind::Wait),
        wait(MpiCallKind::Test),
    ));
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::ConcurrentRequest]);
}

#[test]
fn collective_race_fires_on_race_arrival() {
    let mut engine = RuleEngine::new();
    let live = engine.observe_race(&race_on(
        MonitoredVar::Collective,
        rec(MpiCallKind::Barrier),
        rec(MpiCallKind::Bcast),
    ));
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::CollectiveCall]);
}

#[test]
fn concurrent_finalize_race_fires_on_race_arrival() {
    let mut engine = RuleEngine::new();
    let live = engine.observe_race(&race_on(
        MonitoredVar::Finalize,
        rec(MpiCallKind::Finalize),
        rec(MpiCallKind::Finalize),
    ));
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::Finalization]);
}

#[test]
fn off_main_finalize_fires_on_the_monitored_write_itself() {
    let mut engine = RuleEngine::new();
    let live = engine.observe_event(&event(EventKind::MonitoredWrite {
        var: MonitoredVar::Finalize,
        call: rec(MpiCallKind::Finalize),
    }));
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::Finalization]);
    assert!(live[0]
        .violation
        .description
        .contains("must be called by the main thread"));
}

#[test]
fn call_after_finalize_incident_fires_on_arrival() {
    let mut engine = RuleEngine::new();
    let live = engine.observe_incident(&MpiIncident {
        rank: 0,
        line: 12,
        call: "MPI_Send".into(),
        error: "MPI_Send after MPI_Finalize".into(),
    });
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::Finalization]);
    assert_eq!(live[0].violation.locations, vec![SrcLoc::new("", 12)]);
}

#[test]
fn collective_mismatch_incident_fires_on_arrival() {
    let mut engine = RuleEngine::new();
    let live = engine.observe_incident(&MpiIncident {
        rank: 1,
        line: 9,
        call: "MPI_Bcast".into(),
        error: "collective mismatch on comm 0".into(),
    });
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::CollectiveCall]);
    assert_eq!(live[0].violation.rank, Rank(1));
}

#[test]
fn serialized_init_fires_on_first_monitored_race() {
    let mut engine = RuleEngine::new();
    let quiet = engine.observe_event(&event(EventKind::MpiInit {
        level: ThreadLevel::Serialized,
        requested_by_init_thread: true,
    }));
    assert!(quiet.is_empty(), "init alone is no violation: {quiet:?}");
    // The first monitored race both is a recv violation and completes the
    // Serialized arm's evidence — two live emissions from one observe call.
    let live = engine.observe_race(&race_on(
        MonitoredVar::Tag,
        rec(MpiCallKind::Recv),
        rec(MpiCallKind::Recv),
    ));
    assert_live_then_quiet_finish(
        &mut engine,
        &live,
        &[ViolationKind::ConcurrentRecv, ViolationKind::Initialization],
    );
}

#[test]
fn funneled_init_fires_on_worker_region_call() {
    let mut engine = RuleEngine::new();
    assert!(engine
        .observe_event(&event(EventKind::MpiInit {
            level: ThreadLevel::Funneled,
            requested_by_init_thread: true,
        }))
        .is_empty());
    let live = engine.observe_event(&event(EventKind::MpiCall {
        call: rec(MpiCallKind::Send),
    }));
    assert_live_then_quiet_finish(&mut engine, &live, &[ViolationKind::Initialization]);
    assert!(live[0].violation.description.contains("worker thread"));
}

#[test]
fn single_init_reports_only_at_finish() {
    // The Single arm's description carries the *total* region call count,
    // so it must stay silent until finish — and then emit with live=false.
    let mut engine = RuleEngine::new();
    assert!(engine
        .observe_event(&event(EventKind::MpiInit {
            level: ThreadLevel::Single,
            requested_by_init_thread: true,
        }))
        .is_empty());
    assert!(engine
        .observe_event(&event(EventKind::Fork {
            region: RegionId(0),
            nthreads: 2,
        }))
        .is_empty());
    for seq in 0..2 {
        let mut e = event(EventKind::MpiCall {
            call: rec(MpiCallKind::Send),
        });
        e.seq = seq;
        assert!(
            engine.observe_event(&e).is_empty(),
            "Single must not fire before the call count is final"
        );
    }
    let fin = engine.finish();
    assert_eq!(fin.remaining.len(), 1, "{:?}", fin.remaining);
    let e = &fin.remaining[0];
    assert!(!e.live, "finish emissions are not live");
    assert_eq!(e.violation.kind, ViolationKind::Initialization);
    assert!(
        e.violation.description.contains("2 MPI call(s)"),
        "must report the final call count: {}",
        e.violation.description
    );
    assert_eq!(fin.outcome.violations, vec![e.violation.clone()]);
}

#[test]
fn seed_is_stamped_onto_every_emission() {
    let mut engine = RuleEngine::for_seed(41);
    let live = engine.observe_race(&race_on(
        MonitoredVar::Tag,
        rec(MpiCallKind::Recv),
        rec(MpiCallKind::Recv),
    ));
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].seed, 41);
    let rendered = live[0].to_string();
    assert!(rendered.starts_with("[seed 41] "), "{rendered}");
    assert!(rendered.ends_with("(tid0 vs tid1)"), "{rendered}");
}

// ---------------------------------------------------------------------------
// Pipeline parity: emissions through `check_with_sink` reconstruct the
// batch report, for both engines, on every bundled program.
// ---------------------------------------------------------------------------

fn bundled_programs() -> Vec<(String, home::ir::Program)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("programs");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("programs/ dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "hmp"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("?")
                .to_string();
            let src = std::fs::read_to_string(&p).expect("read program");
            (name, parse(&src).expect("parse program"))
        })
        .collect()
}

/// Rebuild the report's merged violation list from the raw emission
/// stream: group by seed, sort by canonical key, dedupe per seed by
/// `(kind, rank, locations)` first-wins, then merge across seeds in
/// seed order with the same key.
fn reconstruct(emissions: &[EmittedViolation], seeds: &[u64]) -> Vec<Violation> {
    let mut merged = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &seed in seeds {
        let mut per_seed: Vec<&EmittedViolation> =
            emissions.iter().filter(|e| e.seed == seed).collect();
        per_seed.sort_by_key(|e| e.order);
        for e in per_seed {
            let v = &e.violation;
            if seen.insert((v.kind, v.rank, v.locations.clone())) {
                merged.push(v.clone());
            }
        }
    }
    merged
}

#[test]
fn emissions_reconstruct_the_batch_report_for_both_engines() {
    let seeds: Vec<u64> = vec![1, 2, 3];
    for (name, program) in bundled_programs() {
        for engine in [Engine::Batch, Engine::Stream] {
            let collector = Arc::new(ViolationCollector::new());
            let options = CheckOptions::default()
                .with_seeds(seeds.clone())
                .with_jobs(1)
                .with_engine(engine);
            let report = check_with_sink(&program, &options, collector.clone());
            let emissions = collector.emissions();

            // Each canonical key appears exactly once per seed.
            let mut keys = std::collections::BTreeSet::new();
            for e in &emissions {
                assert!(
                    keys.insert((e.seed, e.order)),
                    "{name}/{engine:?}: duplicate emission key {:?} for seed {}",
                    e.order,
                    e.seed
                );
            }

            assert_eq!(
                reconstruct(&emissions, &seeds),
                report.violations,
                "{name}/{engine:?}: emissions do not reconstruct the report"
            );
        }
    }
}

#[test]
fn emission_sequence_is_deterministic_and_engine_independent() {
    let run = |program: &home::ir::Program, engine: Engine| {
        let collector = Arc::new(ViolationCollector::new());
        let options = CheckOptions::default()
            .with_seeds(vec![1, 2])
            .with_jobs(1)
            .with_engine(engine);
        check_with_sink(program, &options, collector.clone());
        collector.emissions()
    };
    for (name, program) in bundled_programs() {
        let batch = run(&program, Engine::Batch);
        let batch_again = run(&program, Engine::Batch);
        assert_eq!(batch, batch_again, "{name}: batch emissions not stable");
        let stream = run(&program, Engine::Stream);
        // Arrival *order* within a seed may differ between engines (the
        // stream engine fires mid-run, batch post-hoc), but the emitted
        // set — keys and violations — must be identical.
        let key = |e: &EmittedViolation| (e.seed, e.order, e.violation.clone());
        let mut b: Vec<_> = batch.iter().map(key).collect();
        let mut s: Vec<_> = stream.iter().map(key).collect();
        b.sort_by_key(|x| (x.0, x.1));
        s.sort_by_key(|x| (x.0, x.1));
        assert_eq!(b, s, "{name}: engines emitted different violation sets");
    }
}

#[test]
fn stream_engine_emits_live_when_evidence_completes_mid_run() {
    // figure2 is the paper's concurrent-recv case study: the recv race is
    // decidable the moment the detector reports it, so the stream engine
    // must flag those emissions live.
    let src =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("programs/figure2.hmp"))
            .expect("read figure2");
    let program = parse(&src).expect("parse figure2");
    let collector = Arc::new(ViolationCollector::new());
    let options = CheckOptions::default()
        .with_seeds(vec![1, 2, 3, 4])
        .with_jobs(1)
        .with_engine(Engine::Stream);
    let report = check_with_sink(&program, &options, collector.clone());
    assert!(report.has(ViolationKind::ConcurrentRecv));
    let emissions = collector.emissions();
    assert!(
        emissions
            .iter()
            .any(|e| e.live && e.violation.kind == ViolationKind::ConcurrentRecv),
        "no live concurrent-recv emission in {emissions:?}"
    );
}
