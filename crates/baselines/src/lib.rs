//! # home-baselines — the comparison tools of the paper's evaluation
//!
//! Models of the two tools HOME is compared against in Section V, built
//! from the mechanisms the paper attributes to them rather than their
//! binaries:
//!
//! * **Marmot** ([`Tool::Marmot`]) — purely dynamic, manifest-only
//!   detection (no lockset/HB prediction → schedule-dependent false
//!   negatives) plus a central debug-process round trip charged on every
//!   MPI call (its overhead curve).
//! * **Intel Thread Checker** ([`Tool::Itc`]) — records *every* shared
//!   memory access at binary-instrumentation cost (its ~200% overhead),
//!   runs happens-before without `omp critical` awareness (its BT false
//!   positive), and does not wrap `MPI_Probe` (its LU false negatives).
//!
//! Both share HOME's interpreter, trace model, and rule matcher, so
//! accuracy differences come purely from instrumentation scope and
//! detection engine — the paper's claim under test.

mod marmot;
mod tools;

pub use marmot::manifest_races;
pub use tools::{run_tool, Tool};
