//! Offline shim for the `rand` trait subset used in this repository.
//!
//! Provides `RngCore`, `Rng` (with `gen_range`/`gen_bool`), and
//! `SeedableRng` (with rand_core's splitmix64-based `seed_from_u64`
//! seed-expansion, so seeded streams stay stable and well-mixed). Generators
//! live in their own crates (see the `rand_chacha` shim).

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny bias for
                // astronomically large spans is irrelevant for scheduling.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as u128).wrapping_add(hi as u128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open `low..high` range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli sample: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, same construction as rand's.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array in practice).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via splitmix64 (rand_core's scheme).
    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Re-exports matching rand's module layout.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is plenty for testing the trait plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
