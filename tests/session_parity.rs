//! Session-object parity: detection driven through [`Session`] — the
//! engine behind `home serve`, `replay`, and the streaming pipeline — must
//! be byte-identical to the batch reference (`detect` + `match_rules`) and
//! to `check_with_sink`, for every sample program × seed × engine.

use home::core::Session;
use home::prelude::*;
use std::sync::{Arc, Mutex};

fn sample_programs() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir("programs")
        .expect("programs dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "hmp"))
        .collect();
    entries.sort();
    for path in entries {
        let source = std::fs::read_to_string(&path).expect("read program");
        let program = parse(&source).expect("sample program parses");
        out.push((path.display().to_string(), program));
    }
    assert!(out.len() >= 4, "expected the sample program corpus");
    out
}

/// The batch reference for one seed, configured exactly like the pipeline:
/// HOME instrumentation, static checklist, test topology, random policy.
fn reference(program: &Program, seed: u64) -> (home::interp::RunResult, Vec<Race>) {
    let checklist = Arc::new(analyze(program).checklist.clone());
    let mut cfg = RunConfig::test(2, seed)
        .with_instrumentation(Instrumentation::home())
        .with_checklist(checklist);
    cfg.threads_per_proc = 2;
    cfg.sched.policy = SchedPolicy::Random;
    let result = run(program, &cfg);
    let races = detect(&result.trace, &DetectorConfig::hybrid()).expect("batch detect");
    (result, races)
}

#[test]
fn streaming_session_matches_the_batch_reference() {
    for (name, program) in sample_programs() {
        for seed in [1u64, 2, 3] {
            let (result, races) = reference(&program, seed);
            let batch = home::core::match_rules(&result.trace, &races, &result.mpi_errors);

            let sink = Arc::new(home::core::NullViolationSink);
            let session = Session::streaming(seed, DetectorConfig::hybrid(), sink);
            for e in result.trace.events() {
                session.feed_event(e);
            }
            for i in &result.mpi_errors {
                session.feed_incident(i);
            }
            let outcome = session.finish().expect("session finish");

            assert_eq!(outcome.seed, seed);
            assert_eq!(
                outcome.events,
                result.trace.events().len() as u64,
                "{name} seed {seed}: event count"
            );
            assert_eq!(
                format!("{:?}", outcome.races),
                format!("{races:?}"),
                "{name} seed {seed}: races diverge"
            );
            assert_eq!(
                format!("{:?}", outcome.violations),
                format!("{:?}", batch.violations),
                "{name} seed {seed}: violations diverge"
            );
            assert_eq!(
                format!("{:?}", outcome.unclassified),
                format!("{:?}", batch.unclassified),
                "{name} seed {seed}: unclassified races diverge"
            );
        }
    }
}

#[test]
fn classifier_session_matches_the_batch_reference() {
    // Classifier mode: races come from an external detector (the batch
    // pipeline's shape) instead of the in-session streaming detector.
    for (name, program) in sample_programs() {
        for seed in [1u64, 2] {
            let (result, races) = reference(&program, seed);
            let batch = home::core::match_rules(&result.trace, &races, &result.mpi_errors);

            let sink = Arc::new(home::core::NullViolationSink);
            let session = Session::classifier(seed, sink);
            for e in result.trace.events() {
                session.feed_event(e);
            }
            for r in &races {
                session.feed_race(r);
            }
            for i in &result.mpi_errors {
                session.feed_incident(i);
            }
            let outcome = session.finish().expect("session finish");

            assert_eq!(
                format!("{:?}", outcome.violations),
                format!("{:?}", batch.violations),
                "{name} seed {seed}: classifier violations diverge"
            );
            assert_eq!(
                format!("{:?}", outcome.unclassified),
                format!("{:?}", batch.unclassified),
                "{name} seed {seed}: classifier unclassified diverge"
            );
        }
    }
}

/// Captures the canonical per-seed violation lists `check_with_sink`
/// reports through `seed_finished`.
#[derive(Default)]
struct SeedCapture {
    seeds: Mutex<Vec<(u64, Vec<Violation>)>>,
}

impl ViolationSink for SeedCapture {
    fn violation(&self, _v: &EmittedViolation) {}

    fn seed_finished(&self, seed: u64, _status: &home::core::SeedStatus, violations: &[Violation]) {
        self.seeds
            .lock()
            .expect("capture lock")
            .push((seed, violations.to_vec()));
    }
}

#[test]
fn check_with_sink_matches_the_reference_for_both_engines() {
    let seeds = [1u64, 2, 3];
    for (name, program) in sample_programs() {
        let mut per_engine = Vec::new();
        for engine in [Engine::Batch, Engine::Stream] {
            let capture = Arc::new(SeedCapture::default());
            let options = CheckOptions {
                seeds: seeds.to_vec(),
                engine,
                ..CheckOptions::default()
            };
            let report = check_with_sink(&program, &options, capture.clone());

            let captured = capture.seeds.lock().expect("capture lock").clone();
            assert_eq!(captured.len(), seeds.len(), "{name}: one callback per seed");
            for (seed, violations) in &captured {
                let (result, races) = reference(&program, *seed);
                let batch = home::core::match_rules(&result.trace, &races, &result.mpi_errors);
                assert_eq!(
                    format!("{violations:?}"),
                    format!("{:?}", batch.violations),
                    "{name} seed {seed} ({engine:?}): per-seed violations diverge"
                );
            }
            per_engine.push(report.render());
        }
        assert_eq!(
            per_engine[0], per_engine[1],
            "{name}: batch and stream engines must render identical reports"
        );
    }
}
