//! Matching concurrency results against the six thread-safety rules
//! (paper Section III-A) — incrementally.
//!
//! The matcher is a single online state machine, [`RuleEngine`]: feed it
//! trace events ([`RuleEngine::observe_event`]), race candidates as the
//! detector discovers them ([`RuleEngine::observe_race`]), and runtime
//! incidents ([`RuleEngine::observe_incident`]), and it emits each typed
//! [`Violation`] the moment its evidence is complete — a concurrent-recv
//! race classifies on arrival, an off-main-thread `MPI_Finalize` on the
//! monitored write itself. Rules whose verdict depends on whole-run
//! evidence (the `MPI_THREAD_SINGLE` arm reports the *total* region call
//! count) emit from [`RuleEngine::finish`].
//!
//! **Canonical order.** Online emission order is temporal and interleaved;
//! the batch report is rule-major. Every emission therefore carries an
//! [`EmitOrder`] key — its position in the batch evaluation order — and
//! `finish` re-evaluates every rule over the accumulated evidence,
//! emitting only keys not already emitted live. The union of live and
//! finish emissions, sorted by key and deduplicated first-wins, is exactly
//! the batch violation list; `finish` computes that list directly, so the
//! reported [`RuleOutcome`] never depends on what was emitted early.
//!
//! The batch entry point [`match_rules`] is a thin wrapper: observe the
//! trace, the races (in the detector's rank-major order), the incidents,
//! then `finish`.

use crate::report::{EmitOrder, EmittedViolation, Violation, ViolationKind};
use home_dynamic::{Race, RaceAccess};
use home_interp::MpiIncident;
use home_trace::{
    Event, EventKind, MemLoc, MonitoredVar, MpiCallRecord, Rank, SrcLoc, ThreadLevel, Tid, Trace,
};
use std::collections::{BTreeMap, BTreeSet};

/// Rule indices of the [`EmitOrder`] key, in the paper's rule order.
const RULE_INIT: u8 = 0;
const RULE_FINALIZE: u8 = 1;
const RULE_RECV: u8 = 2;
const RULE_REQUEST: u8 = 3;
const RULE_PROBE: u8 = 4;
const RULE_COLLECTIVE: u8 = 5;

/// What one rule-matching pass produced: the classified violations plus
/// the races the rules could *not* classify (monitored-variable races whose
/// accesses lack MPI call metadata — possible with hand-built or corrupted
/// offline traces). Unclassifiable races are reported, not unwrapped: they
/// surface in the report as degraded diagnostics instead of a panic.
#[derive(Debug, Clone, Default)]
pub struct RuleOutcome {
    /// Concrete violations, matched and deduplicated.
    pub violations: Vec<Violation>,
    /// Monitored-variable races the rules had to skip because one or both
    /// accesses carry no MPI call record.
    pub unclassified: Vec<Race>,
}

/// Result of [`RuleEngine::finish`]: the emissions not already produced
/// live, plus the canonical outcome for the report.
#[derive(Debug, Clone, Default)]
pub struct RuleFinish {
    /// Violations whose evidence completed only at end-of-run (or that
    /// were never eligible for early emission), in canonical order, with
    /// [`EmittedViolation::live`] false. Together with the live emissions
    /// this covers every [`EmitOrder`] key exactly once.
    pub remaining: Vec<EmittedViolation>,
    /// The canonical (batch-identical) outcome.
    pub outcome: RuleOutcome,
}

/// Match rules over one run's evidence, returning only the violations.
///
/// Convenience wrapper over [`match_rules`] for callers that do not care
/// about unclassifiable races.
pub fn match_violations(
    trace: &Trace,
    races: &[Race],
    incidents: &[MpiIncident],
) -> Vec<Violation> {
    match_rules(trace, races, incidents).violations
}

/// Match rules over one run's evidence (the batch entry point).
///
/// A thin wrapper over [`RuleEngine`]: the whole trace, race list, and
/// incident list are observed in order, then [`RuleEngine::finish`]
/// produces the outcome. Races on monitored variables whose accesses lack
/// MPI metadata cannot be matched against any rule; they are collected
/// into [`RuleOutcome::unclassified`] rather than panicking mid-pipeline.
pub fn match_rules(trace: &Trace, races: &[Race], incidents: &[MpiIncident]) -> RuleOutcome {
    let mut engine = RuleEngine::new();
    for e in trace.events() {
        engine.observe_event(e);
    }
    for race in races {
        engine.observe_race(race);
    }
    for incident in incidents {
        engine.observe_incident(incident);
    }
    engine.finish().outcome
}

/// The incremental rule matcher: per-rule state machines over the evidence
/// of one run, emitting typed violations as soon as each is decidable.
///
/// Ordered maps throughout: rules iterate these, and violation order must
/// be deterministic (it is part of the rendered report). Observing a
/// trace's events in sequence order accumulates evidence identical to
/// batch-gathering the materialized trace, so [`RuleEngine::finish`] is
/// order-for-order identical to the batch matcher in both engines.
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    /// Scheduler seed stamped onto emissions (provenance only).
    seed: u64,
    /// Thread level each rank initialized with.
    init_levels: BTreeMap<Rank, ThreadLevel>,
    /// Ranks that forked a multi-thread parallel region.
    multi_threaded: BTreeSet<Rank>,
    /// Instrumented MPI calls inside parallel regions (rank, record, loc,
    /// issuing thread), in event order.
    region_calls: Vec<(Rank, MpiCallRecord, Option<SrcLoc>, Tid)>,
    /// Finalize monitored writes (rank, record, loc, issuing thread).
    finalizes: Vec<(Rank, MpiCallRecord, Option<SrcLoc>, Tid)>,
    /// Races observed so far as (rank, per-rank discovery index, race).
    /// Per-rank arrival order is the detector's per-rank discovery order
    /// in both engines, so the indices are engine-independent.
    races: Vec<(Rank, u64, Race)>,
    /// Next per-rank race index.
    race_counts: BTreeMap<Rank, u64>,
    /// Runtime incidents observed so far, in arrival order.
    incidents: Vec<MpiIncident>,
    /// Keys already emitted (live); `finish` suppresses these.
    emitted: BTreeSet<EmitOrder>,
}

impl RuleEngine {
    /// An empty engine (seed provenance 0).
    pub fn new() -> RuleEngine {
        RuleEngine::default()
    }

    /// An empty engine stamping `seed` onto every emission.
    pub fn for_seed(seed: u64) -> RuleEngine {
        RuleEngine {
            seed,
            ..RuleEngine::default()
        }
    }

    /// Fold one trace event into the evidence, returning any violations
    /// this event just made decidable.
    pub fn observe_event(&mut self, e: &Event) -> Vec<EmittedViolation> {
        let mut fresh = Vec::new();
        match &e.kind {
            EventKind::MpiInit { level, .. } => {
                let level = *self.init_levels.entry(e.rank).or_insert(*level);
                // Evidence for this rank may already have arrived (offline
                // traces can order init late); re-check its init rule now.
                fresh.extend(self.init_emission(e.rank, level, false));
            }
            EventKind::Fork { nthreads, .. } if *nthreads > 1 => {
                self.multi_threaded.insert(e.rank);
            }
            EventKind::MpiCall { call } if e.region.is_some() => {
                self.region_calls
                    .push((e.rank, call.clone(), e.loc.clone(), e.tid));
                if let Some(&level) = self.init_levels.get(&e.rank) {
                    fresh.extend(self.init_emission(e.rank, level, false));
                }
            }
            EventKind::MonitoredWrite { var, call } if *var == MonitoredVar::Finalize => {
                let idx = self.finalizes.len() as u64;
                self.finalizes
                    .push((e.rank, call.clone(), e.loc.clone(), e.tid));
                if !call.is_main_thread {
                    fresh.push(self.finalize_off_main(idx, e.rank, e.loc.clone(), e.tid));
                }
            }
            _ => {}
        }
        self.take_new(fresh)
    }

    /// True when [`RuleEngine::observe_event`] would ignore `e` entirely:
    /// no evidence folded, nothing emitted. The batch feed path uses this
    /// to skip the engine lock for batches of plain access/sync events —
    /// the overwhelming majority of a monitored stream.
    pub fn event_is_inert(e: &Event) -> bool {
        match &e.kind {
            EventKind::MpiInit { .. } => false,
            EventKind::Fork { nthreads, .. } => *nthreads <= 1,
            EventKind::MpiCall { .. } => e.region.is_none(),
            EventKind::MonitoredWrite { var, .. } => *var != MonitoredVar::Finalize,
            _ => true,
        }
    }

    /// Fold a batch of trace events, skipping inert ones without the
    /// per-event match. Byte-identical to calling
    /// [`RuleEngine::observe_event`] per event in order.
    pub fn observe_batch(&mut self, events: &[Event]) -> Vec<EmittedViolation> {
        let mut out = Vec::new();
        for e in events {
            if RuleEngine::event_is_inert(e) {
                continue;
            }
            out.extend(self.observe_event(e));
        }
        out
    }

    /// Fold one race candidate into the evidence, returning any violations
    /// it just made decidable. Races must arrive in per-rank discovery
    /// order (any interleaving across ranks is fine).
    pub fn observe_race(&mut self, race: &Race) -> Vec<EmittedViolation> {
        let counter = self.race_counts.entry(race.rank).or_insert(0);
        let idx = *counter;
        *counter += 1;
        self.races.push((race.rank, idx, race.clone()));

        let mut fresh = self.race_emissions(race.rank, idx, race);
        // A monitored race can complete the Serialized initialization arm.
        if let Some(&level) = self.init_levels.get(&race.rank) {
            fresh.extend(self.init_emission(race.rank, level, false));
        }
        self.take_new(fresh)
    }

    /// Fold one runtime incident into the evidence, returning any
    /// violations it implies (calls after finalize, collective mismatch).
    pub fn observe_incident(&mut self, incident: &MpiIncident) -> Vec<EmittedViolation> {
        let idx = self.incidents.len() as u64;
        self.incidents.push(incident.clone());
        let mut fresh = Vec::new();
        if incident.error.contains("after MPI_Finalize") {
            fresh.push(self.finalize_incident(idx, incident));
        }
        if incident.error.contains("collective mismatch") {
            fresh.push(self.collective_incident(idx, incident));
        }
        self.take_new(fresh)
    }

    /// End of run: evaluate every rule over the full evidence. Returns the
    /// emissions not already produced live plus the canonical outcome.
    pub fn finish(&mut self) -> RuleFinish {
        let all = self.eval_all();
        let remaining: Vec<EmittedViolation> = all
            .iter()
            .filter(|e| !self.emitted.contains(&e.order))
            .cloned()
            .collect();
        for e in &remaining {
            self.emitted.insert(e.order);
        }

        // Unclassifiable monitored races, in the batch (rank-major) order.
        let mut unmatched: Vec<&(Rank, u64, Race)> = self
            .races
            .iter()
            .filter(|(_, _, r)| matches!(r.loc, MemLoc::Monitored(_)) && !r.is_monitored())
            .collect();
        unmatched.sort_by_key(|(rank, idx, _)| (*rank, *idx));
        let unclassified = unmatched.into_iter().map(|(_, _, r)| r.clone()).collect();

        RuleFinish {
            outcome: RuleOutcome {
                violations: dedupe(all.into_iter().map(|e| e.violation).collect()),
                unclassified,
            },
            remaining,
        }
    }

    /// The full batch evaluation over the accumulated evidence, sorted by
    /// canonical key (live flag false; callers flip it for live paths).
    fn eval_all(&self) -> Vec<EmittedViolation> {
        let mut out = Vec::new();
        for (&rank, &level) in &self.init_levels {
            out.extend(self.init_emission(rank, level, true));
        }
        for (idx, (rank, call, loc, tid)) in self.finalizes.iter().enumerate() {
            if !call.is_main_thread {
                out.push(self.finalize_off_main(idx as u64, *rank, loc.clone(), *tid));
            }
        }
        for (idx, incident) in self.incidents.iter().enumerate() {
            if incident.error.contains("after MPI_Finalize") {
                out.push(self.finalize_incident(idx as u64, incident));
            }
        }
        for (rank, idx, race) in &self.races {
            out.extend(self.race_emissions(*rank, *idx, race));
        }
        for (idx, incident) in self.incidents.iter().enumerate() {
            if incident.error.contains("collective mismatch") {
                out.push(self.collective_incident(idx as u64, incident));
            }
        }
        out.sort_by_key(|e| e.order);
        out
    }

    /// Keep only candidates not yet emitted, mark them emitted, and flag
    /// them live.
    fn take_new(&mut self, candidates: Vec<EmittedViolation>) -> Vec<EmittedViolation> {
        candidates
            .into_iter()
            .filter(|e| self.emitted.insert(e.order))
            .map(|mut e| {
                e.live = true;
                e
            })
            .collect()
    }

    fn emission(
        &self,
        order: EmitOrder,
        threads: Vec<Tid>,
        violation: Violation,
    ) -> EmittedViolation {
        EmittedViolation {
            seed: self.seed,
            order,
            live: false,
            threads,
            violation,
        }
    }

    /// The initialization rule for one rank. The Single arm reports the
    /// final region call count, so it is decidable only `at_finish`; the
    /// Serialized and Funneled arms fire on their first piece of evidence.
    /// The evidence is recomputed from accumulated state (first matching
    /// call / first monitored race), never from "the event at hand", so a
    /// live emission is byte-identical to the finish-time evaluation.
    fn init_emission(
        &self,
        rank: Rank,
        level: ThreadLevel,
        at_finish: bool,
    ) -> Option<EmittedViolation> {
        let order = EmitOrder::new(RULE_INIT, 0, rank.0 as u64, 0);
        match level {
            ThreadLevel::Single => {
                // MPI_THREAD_SINGLE but an OpenMP parallel region issues
                // MPI calls.
                if !at_finish {
                    return None;
                }
                let calls: Vec<&(Rank, MpiCallRecord, Option<SrcLoc>, Tid)> = self
                    .region_calls
                    .iter()
                    .filter(|(r, _, _, _)| *r == rank)
                    .collect();
                if !self.multi_threaded.contains(&rank) || calls.is_empty() {
                    return None;
                }
                let mut locs: Vec<SrcLoc> =
                    calls.iter().filter_map(|(_, _, l, _)| l.clone()).collect();
                locs.sort();
                locs.dedup();
                Some(self.emission(
                    order,
                    Vec::new(),
                    Violation {
                        kind: ViolationKind::Initialization,
                        rank,
                        description: format!(
                            "process initialized with {level} but {} MPI call(s) execute inside an OpenMP parallel region",
                            calls.len()
                        ),
                        locations: locs,
                    },
                ))
            }
            ThreadLevel::Serialized => {
                // Any concurrent monitored-variable race on this rank means
                // two threads were inside MPI at the same time.
                let first = self
                    .races
                    .iter()
                    .find(|(r, _, race)| *r == rank && race.is_monitored())
                    .map(|(_, _, race)| race)?;
                Some(self.emission(
                    order,
                    vec![first.first.tid, first.second.tid],
                    Violation {
                        kind: ViolationKind::Initialization,
                        rank,
                        description: format!(
                            "{level} allows only one thread in MPI at a time, but concurrent MPI calls were detected on {}",
                            first.loc
                        ),
                        locations: locations(&[&first.first, &first.second]),
                    },
                ))
            }
            ThreadLevel::Funneled => {
                // Only the main thread may call MPI.
                let (_, call, loc, tid) = self
                    .region_calls
                    .iter()
                    .find(|(r, c, _, _)| *r == rank && !c.is_main_thread)?;
                Some(self.emission(
                    order,
                    vec![*tid],
                    Violation {
                        kind: ViolationKind::Initialization,
                        rank,
                        description: format!(
                            "{level} restricts MPI to the main thread, but {} was issued by a worker thread",
                            call.kind
                        ),
                        locations: loc.clone().into_iter().collect(),
                    },
                ))
            }
            ThreadLevel::Multiple => None,
        }
    }

    /// Finalization rule (a): Finalize issued off the main thread.
    fn finalize_off_main(
        &self,
        idx: u64,
        rank: Rank,
        loc: Option<SrcLoc>,
        tid: Tid,
    ) -> EmittedViolation {
        self.emission(
            EmitOrder::new(RULE_FINALIZE, 0, idx, 0),
            vec![tid],
            Violation {
                kind: ViolationKind::Finalization,
                rank,
                description: "MPI_Finalize must be called by the main thread".into(),
                locations: loc.into_iter().collect(),
            },
        )
    }

    /// Finalization rule (b): MPI communication attempted after finalize
    /// (the simulator reports those calls as incidents).
    fn finalize_incident(&self, idx: u64, incident: &MpiIncident) -> EmittedViolation {
        self.emission(
            EmitOrder::new(RULE_FINALIZE, 1, idx, 0),
            Vec::new(),
            Violation {
                kind: ViolationKind::Finalization,
                rank: Rank(incident.rank),
                description: format!("{} issued after MPI_Finalize", incident.call),
                locations: vec![SrcLoc::new("", incident.line)],
            },
        )
    }

    /// Collective rule, incident stage: slot corruption the simulator
    /// actually observed — supporting evidence.
    fn collective_incident(&self, idx: u64, incident: &MpiIncident) -> EmittedViolation {
        self.emission(
            EmitOrder::new(RULE_COLLECTIVE, 1, idx, 0),
            Vec::new(),
            Violation {
                kind: ViolationKind::CollectiveCall,
                rank: Rank(incident.rank),
                description: format!("collective slot corruption observed: {}", incident.error),
                locations: vec![SrcLoc::new("", incident.line)],
            },
        )
    }

    /// Every per-race rule applied to one race: finalize (c), concurrent
    /// recv, concurrent request, probe, collective. Each race is decidable
    /// in isolation, so these fire the moment the detector reports it.
    fn race_emissions(&self, rank: Rank, idx: u64, race: &Race) -> Vec<EmittedViolation> {
        let mut out = Vec::new();
        if !race.is_monitored() {
            return out;
        }
        let MemLoc::Monitored(var) = race.loc else {
            return out;
        };
        let threads = vec![race.first.tid, race.second.tid];
        let locs = || locations(&[&race.first, &race.second]);
        let order = |rule: u8| EmitOrder::new(rule, 0, rank.0 as u64, idx);
        match var {
            // Finalization rule (c): Finalize concurrent with other MPI
            // activity (race on finalizetmp).
            MonitoredVar::Finalize => {
                out.push(self.emission(
                    EmitOrder::new(RULE_FINALIZE, 2, rank.0 as u64, idx),
                    threads,
                    Violation {
                        kind: ViolationKind::Finalization,
                        rank,
                        description: "concurrent MPI_Finalize calls from multiple threads".into(),
                        locations: locs(),
                    },
                ));
            }
            MonitoredVar::Tag => {
                let Some((a, b)) = race.mpi_pair() else {
                    return out;
                };
                if a.kind.is_recv() && b.kind.is_recv() && envelope_collides(a, b) {
                    out.push(self.emission(
                        order(RULE_RECV),
                        threads.clone(),
                        Violation {
                            kind: ViolationKind::ConcurrentRecv,
                            rank,
                            description: format!(
                                "concurrent {} and {} with undistinguished envelope (tag {:?}, peer {:?}, {}) — message matching order is undefined",
                                a.kind, b.kind, a.tag, a.peer, a.comm
                            ),
                            locations: locs(),
                        },
                    ));
                }
                let probe_pair = (a.kind.is_probe() && (b.kind.is_probe() || b.kind.is_recv()))
                    || (b.kind.is_probe() && (a.kind.is_probe() || a.kind.is_recv()));
                if probe_pair && envelope_collides(a, b) {
                    out.push(self.emission(
                        order(RULE_PROBE),
                        threads,
                        Violation {
                            kind: ViolationKind::Probe,
                            rank,
                            description: format!(
                                "concurrent {} and {} with the same source/tag on {} — the probed message may be stolen",
                                a.kind, b.kind, a.comm
                            ),
                            locations: locs(),
                        },
                    ));
                }
            }
            MonitoredVar::Request => {
                let Some((a, b)) = race.mpi_pair() else {
                    return out;
                };
                if let (true, true, Some(request)) =
                    (a.kind.is_completion(), b.kind.is_completion(), a.request)
                {
                    if Some(request) == b.request {
                        out.push(self.emission(
                            order(RULE_REQUEST),
                            threads,
                            Violation {
                                kind: ViolationKind::ConcurrentRequest,
                                rank,
                                description: format!(
                                    "{} and {} concurrently completing the same request {request}",
                                    a.kind, b.kind
                                ),
                                locations: locs(),
                            },
                        ));
                    }
                }
            }
            MonitoredVar::Collective => {
                let Some((a, b)) = race.mpi_pair() else {
                    return out;
                };
                if a.kind.is_collective() && b.kind.is_collective() && a.comm == b.comm {
                    out.push(self.emission(
                        order(RULE_COLLECTIVE),
                        threads,
                        Violation {
                            kind: ViolationKind::CollectiveCall,
                            rank,
                            description: format!(
                                "{} and {} concurrently on {} from threads of one process",
                                a.kind, b.kind, a.comm
                            ),
                            locations: locs(),
                        },
                    ));
                }
            }
            _ => {}
        }
        out
    }
}

fn locations(accesses: &[&RaceAccess]) -> Vec<SrcLoc> {
    let mut locs: Vec<SrcLoc> = accesses.iter().filter_map(|a| a.loc.clone()).collect();
    locs.sort();
    locs.dedup();
    locs
}

/// Envelope collision: the messages the two calls handle are not
/// differentiated — tags equal or either side a wildcard, same for peers,
/// and the same communicator.
fn envelope_collides(a: &MpiCallRecord, b: &MpiCallRecord) -> bool {
    let field = |x: Option<i32>, y: Option<i32>| match (x, y) {
        (Some(x), Some(y)) => x == y || x < 0 || y < 0,
        // Calls without the argument do not differentiate on it.
        _ => true,
    };
    a.comm == b.comm && field(a.tag, b.tag) && field(a.peer, b.peer)
}

fn dedupe(violations: Vec<Violation>) -> Vec<Violation> {
    let mut seen: BTreeSet<(ViolationKind, Rank, Vec<SrcLoc>)> = BTreeSet::new();
    let mut out = Vec::new();
    for v in violations {
        let key = (v.kind, v.rank, v.locations.clone());
        if seen.insert(key) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use home_trace::{AccessKind, MpiCallKind, Tid, COMM_WORLD};

    fn record(kind: MpiCallKind, tag: Option<i32>, main: bool) -> MpiCallRecord {
        MpiCallRecord {
            kind,
            peer: Some(0),
            tag,
            comm: COMM_WORLD,
            request: None,
            is_main_thread: main,
            thread_level: Some(ThreadLevel::Multiple),
        }
    }

    #[test]
    fn envelope_collision_logic() {
        let a = record(MpiCallKind::Recv, Some(0), false);
        let b = record(MpiCallKind::Recv, Some(0), false);
        assert!(envelope_collides(&a, &b));
        let c = record(MpiCallKind::Recv, Some(1), false);
        assert!(!envelope_collides(&a, &c), "distinct tags differentiate");
        let any = record(MpiCallKind::Recv, Some(-1), false);
        assert!(envelope_collides(&a, &any), "wildcard collides with all");
        let mut other_comm = record(MpiCallKind::Recv, Some(0), false);
        other_comm.comm = home_trace::CommId(1);
        assert!(!envelope_collides(&a, &other_comm));
    }

    #[test]
    fn non_mpi_monitored_race_is_unclassified_not_a_panic() {
        // A hand-built race on a monitored variable whose accesses carry no
        // MPI call records (possible with corrupted or synthetic offline
        // traces). Every rule must skip it; match_rules reports it as
        // unclassified instead of unwrapping.
        let access = |seq| RaceAccess {
            seq,
            tid: Tid(seq as u32),
            region: None,
            kind: AccessKind::Write,
            loc: None,
            mpi: None,
        };
        let race = Race {
            rank: Rank(0),
            loc: MemLoc::Monitored(MonitoredVar::Tag),
            first: access(1),
            second: access(2),
        };
        let outcome = match_rules(&Trace::default(), std::slice::from_ref(&race), &[]);
        assert!(outcome.violations.is_empty());
        assert_eq!(outcome.unclassified.len(), 1);
        assert_eq!(outcome.unclassified[0], race);

        // The convenience wrapper drops the unclassified set silently.
        let vs = match_violations(&Trace::default(), &[race], &[]);
        assert!(vs.is_empty());
    }

    #[test]
    fn dedupe_removes_identical_violations() {
        let v = Violation {
            kind: ViolationKind::Probe,
            rank: Rank(0),
            description: "x".into(),
            locations: vec![SrcLoc::new("a", 1)],
        };
        let out = dedupe(vec![v.clone(), v.clone()]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn late_init_still_matches_the_first_worker_call() {
        // Offline traces may order MPI_Init after region calls. The eager
        // Funneled emission must then report the *first* worker-thread
        // call (what the batch evaluation reports), not the most recent.
        let call = |tag| EventKind::MpiCall {
            call: record(MpiCallKind::Send, Some(tag), false),
        };
        let mk = |seq, kind| Event {
            seq,
            rank: Rank(0),
            tid: Tid(1),
            region: Some(home_trace::RegionId(0)),
            time_ns: seq,
            loc: Some(SrcLoc::new("x.hmp", seq as u32)),
            kind,
        };
        let mut engine = RuleEngine::new();
        assert!(engine.observe_event(&mk(1, call(1))).is_empty());
        assert!(engine.observe_event(&mk(2, call(2))).is_empty());
        let init = Event {
            kind: EventKind::MpiInit {
                level: ThreadLevel::Funneled,
                requested_by_init_thread: true,
            },
            ..mk(3, call(0))
        };
        let live = engine.observe_event(&init);
        assert_eq!(live.len(), 1, "{live:?}");
        assert!(live[0].live);
        assert_eq!(
            live[0].violation.locations,
            vec![SrcLoc::new("x.hmp", 1)],
            "must report the first worker call"
        );
        let fin = engine.finish();
        assert!(fin.remaining.is_empty(), "{:?}", fin.remaining);
        assert_eq!(fin.outcome.violations.len(), 1);
        assert_eq!(fin.outcome.violations[0], live[0].violation);
    }
}
