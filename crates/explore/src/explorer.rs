//! The exploration budget loop.

use crate::fingerprint::schedule_fingerprint;
use crate::token::{ScheduleToken, DIRECTED_HIGH, DIRECTED_LOW};
use home_core::{
    fan_out_indexed, violation_identity, NullViolationSink, Session, SessionOutcome, Violation,
    ViolationIdentity,
};
use home_dynamic::{detect, DetectorConfig, Race, RaceAccess};
use home_interp::{run, RunConfig, RunResult};
use home_ir::Program;
use home_static::analyze;
use home_trace::{HomeError, Rank};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Schedules per exploration round. Fixed (never derived from `--jobs`):
/// the token sequence — and with it every statistic the report shows —
/// must be a function of `(program, strategy, seed, budget)` alone. Jobs
/// only parallelize *within* a round.
const ROUND: usize = 8;

/// Which schedules the explorer generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// PCT priority schedules (all base schedules are priority schedules).
    Pct,
    /// Seeded uniform-random schedules — the paper's default coverage and
    /// the baseline the guided strategies are measured against.
    Random,
    /// Random base schedules plus race-directed flips of every suspect
    /// they surface.
    Directed,
    /// PCT base schedules plus race-directed flips.
    All,
}

impl Strategy {
    /// Parse a `--strategy` value.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "pct" => Some(Strategy::Pct),
            "random" => Some(Strategy::Random),
            "directed" => Some(Strategy::Directed),
            "all" => Some(Strategy::All),
            _ => None,
        }
    }

    /// CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Pct => "pct",
            Strategy::Random => "random",
            Strategy::Directed => "directed",
            Strategy::All => "all",
        }
    }

    fn launches_directed(self) -> bool {
        matches!(self, Strategy::Directed | Strategy::All)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Options for one exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// MPI processes to simulate.
    pub nprocs: usize,
    /// OpenMP threads per process.
    pub threads_per_proc: usize,
    /// Total schedules to attempt (deduplicated and failed ones count —
    /// the budget bounds work, not luck).
    pub budget: usize,
    /// Schedule-generation strategy.
    pub strategy: Strategy,
    /// PCT depth `d` for priority schedules.
    pub depth: u8,
    /// Worker threads within each round (never affects the result set).
    pub jobs: usize,
    /// First base-schedule seed; base seeds count up from here.
    pub base_seed: u64,
    /// Dynamic-detector configuration.
    pub detector: DetectorConfig,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            nprocs: 2,
            threads_per_proc: 2,
            budget: 64,
            strategy: Strategy::All,
            depth: 3,
            jobs: home_dynamic::default_jobs(),
            base_seed: 1,
            detector: DetectorConfig::hybrid(),
        }
    }
}

/// One violation with its discovery provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FoundViolation {
    /// The classified violation.
    pub violation: Violation,
    /// The strategy whose schedule found it first (`Pct`/`Random` for base
    /// schedules, `Directed` for flips).
    pub found_by: Strategy,
    /// 1-based index of the finding schedule in attempt order — the
    /// "schedules to first violation" number.
    pub schedule_index: usize,
    /// The reproduction token.
    pub token: ScheduleToken,
}

/// Coverage statistics over one exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Schedules attempted (= budget unless the budget was not exhausted).
    pub attempted: usize,
    /// Schedules with a novel fingerprint, analyzed end to end.
    pub analyzed: usize,
    /// Schedules skipped as HB-equivalent to an earlier one.
    pub deduped: usize,
    /// Schedules whose simulate or detect chain failed.
    pub failed: usize,
    /// Directed flips launched from suspects.
    pub directed_launched: usize,
    /// Schedules that ended in whole-system deadlock.
    pub deadlocks: usize,
}

/// Final output of one exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Deduplicated violations, in discovery order.
    pub violations: Vec<FoundViolation>,
    /// Coverage statistics.
    pub coverage: Coverage,
    /// First deadlocking schedule, when any schedule deadlocked.
    pub first_deadlock: Option<ScheduleToken>,
    /// True when at least one schedule's chain failed: the report covers
    /// only the schedules that completed.
    pub partial: bool,
}

impl ExploreReport {
    /// Did the exploration find anything actionable (violation or
    /// deadlock)?
    pub fn found_anything(&self) -> bool {
        !self.violations.is_empty() || self.coverage.deadlocks > 0
    }

    /// Render the report as text. `program` names the checked file in the
    /// reproduction commands.
    pub fn render(&self, program: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let c = &self.coverage;
        let _ = writeln!(out, "=== HOME schedule exploration report ===");
        let _ = writeln!(
            out,
            "schedules: {} attempted, {} analyzed, {} deduplicated, {} failed",
            c.attempted, c.analyzed, c.deduped, c.failed
        );
        let _ = writeln!(
            out,
            "directed flips launched: {}; deadlocking schedules: {}",
            c.directed_launched, c.deadlocks
        );
        if self.partial {
            let _ = writeln!(
                out,
                "PARTIAL RESULTS: the report covers only the schedules that completed"
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "no thread-safety violations detected");
        } else {
            let _ = writeln!(out, "{} violation(s):", self.violations.len());
            for f in &self.violations {
                let _ = writeln!(
                    out,
                    "  - {} [found by {} at schedule {}, token {}]",
                    f.violation, f.found_by, f.schedule_index, f.token
                );
                let _ = writeln!(
                    out,
                    "    reproduce: home check {program} {}",
                    f.token.repro_flags()
                );
            }
            let mut by: Vec<(&'static str, usize)> = Vec::new();
            for f in &self.violations {
                match by.iter_mut().find(|(s, _)| *s == f.found_by.label()) {
                    Some((_, n)) => *n += 1,
                    None => by.push((f.found_by.label(), 1)),
                }
            }
            let _ = writeln!(
                out,
                "first finder: {}",
                by.iter()
                    .map(|(s, n)| format!("{s} x{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        if let Some(t) = &self.first_deadlock {
            let _ = writeln!(out, "first deadlock under token {t}");
        }
        out
    }
}

/// What one novel schedule's detect chain produced.
struct Analysis {
    races: Vec<Race>,
    outcome: SessionOutcome,
}

/// Explore `program`'s schedule space (see the crate docs).
pub fn explore(program: &Program, options: &ExploreOptions) -> ExploreReport {
    let static_report = analyze(program);
    let checklist = Arc::new(static_report.checklist.clone());

    let mut next_seed = options.base_seed;
    let mut directed_queue: VecDeque<ScheduleToken> = VecDeque::new();
    let mut directed_seen: BTreeSet<(u64, Vec<(String, i64)>)> = BTreeSet::new();
    let mut fingerprints: BTreeSet<u64> = BTreeSet::new();
    let mut found_ids: BTreeSet<ViolationIdentity> = BTreeSet::new();
    let mut report = ExploreReport::default();

    while report.coverage.attempted < options.budget {
        // 1. Assemble one round of tokens. Directed flips queued by earlier
        //    rounds take precedence over fresh base schedules.
        let mut round: Vec<(Strategy, ScheduleToken)> = Vec::new();
        while round.len() < ROUND && report.coverage.attempted + round.len() < options.budget {
            if options.strategy.launches_directed() {
                if let Some(tok) = directed_queue.pop_front() {
                    report.coverage.directed_launched += 1;
                    round.push((Strategy::Directed, tok));
                    continue;
                }
            }
            let seed = next_seed;
            next_seed += 1;
            let entry = match options.strategy {
                Strategy::Pct | Strategy::All => {
                    (Strategy::Pct, ScheduleToken::pct(seed, options.depth))
                }
                Strategy::Random | Strategy::Directed => {
                    (Strategy::Random, ScheduleToken::random(seed))
                }
            };
            round.push(entry);
        }

        // 2. Simulate the round in parallel (indexed slots keep order).
        let sim_slots = fan_out_indexed(&round, options.jobs, |_, (_, tok)| {
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut cfg = RunConfig::test(options.nprocs, tok.seed)
                    .with_checklist(Arc::clone(&checklist));
                cfg.threads_per_proc = options.threads_per_proc;
                cfg.sched.policy = tok.policy();
                cfg.sched.priority_pins = tok.pins.clone();
                run(program, &cfg)
            }))
        });

        // 3. Serial pass in attempt order: fingerprint, dedup, and keep the
        //    novel runs for detection.
        let round_len = round.len();
        let mut novel: Vec<(usize, Strategy, ScheduleToken, RunResult)> = Vec::new();
        for (i, (slot, (origin, tok))) in sim_slots.into_iter().zip(round).enumerate() {
            let attempt = report.coverage.attempted + i + 1;
            match slot {
                Some(Ok(result)) => {
                    if fingerprints.insert(schedule_fingerprint(&result)) {
                        novel.push((attempt, origin, tok, result));
                    } else {
                        report.coverage.deduped += 1;
                    }
                }
                _ => {
                    report.coverage.failed += 1;
                    report.partial = true;
                }
            }
        }
        report.coverage.attempted += round_len;

        // 4. Detect + classify the novel runs in parallel.
        let det_slots = fan_out_indexed(&novel, options.jobs, |_, (_, _, tok, result)| {
            std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<Analysis, HomeError> {
                let races = detect(&result.trace, &options.detector)?;
                let session = Session::classifier(tok.seed, Arc::new(NullViolationSink));
                for e in result.trace.events() {
                    session.feed_event(e);
                }
                for race in &races {
                    session.feed_race(race);
                }
                for incident in &result.mpi_errors {
                    session.feed_incident(incident);
                }
                let outcome = session.finish()?;
                Ok(Analysis { races, outcome })
            }))
        });

        // 5. Merge in attempt order: aggregate violations by identity
        //    (first finder wins) and harvest suspects into directed flips.
        for (slot, (attempt, origin, tok, result)) in det_slots.into_iter().zip(novel) {
            let analysis = match slot {
                Some(Ok(Ok(a))) => a,
                _ => {
                    report.coverage.failed += 1;
                    report.partial = true;
                    continue;
                }
            };
            report.coverage.analyzed += 1;
            if result.deadlock.is_some() {
                report.coverage.deadlocks += 1;
                if report.first_deadlock.is_none() {
                    report.first_deadlock = Some(tok.clone());
                }
            }
            for v in analysis.outcome.violations {
                if found_ids.insert(violation_identity(&v)) {
                    report.violations.push(FoundViolation {
                        violation: v,
                        found_by: origin,
                        schedule_index: attempt,
                        token: tok.clone(),
                    });
                }
            }
            if options.strategy.launches_directed() {
                let suspects = analysis
                    .races
                    .iter()
                    .filter(|r| !r.is_monitored())
                    .chain(analysis.outcome.unclassified.iter());
                for race in suspects {
                    let Some(pins) = flip_pins(race) else {
                        continue;
                    };
                    if directed_seen.insert((tok.seed, pins.clone())) {
                        directed_queue.push_back(ScheduleToken::directed(tok.seed, pins));
                    }
                }
            }
        }
    }
    report
}

/// The scheduler thread name executing one racing access, when it can be
/// named: the rank's master thread runs inline on the rank thread
/// (`rank{r}`), workers are spawned per region instance
/// (`rank{r}.r{region}.t{tid}`).
fn access_thread_name(rank: Rank, access: &RaceAccess) -> Option<String> {
    if access.tid.0 == 0 {
        Some(format!("rank{}", rank.0))
    } else {
        access
            .region
            .map(|r| format!("rank{}.r{}.t{}", rank.0, r.0, access.tid.0))
    }
}

/// Pins that flip the observed order of a suspect race's two accesses:
/// the *later* access's thread is pinned above every random draw, the
/// *earlier* one below everything, so the directed re-run executes them
/// in the opposite order.
fn flip_pins(race: &Race) -> Option<Vec<(String, i64)>> {
    let hi = access_thread_name(race.rank, &race.second)?;
    let lo = access_thread_name(race.rank, &race.first)?;
    if hi == lo {
        return None;
    }
    Some(vec![(hi, DIRECTED_HIGH), (lo, DIRECTED_LOW)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_trace::{AccessKind, MemLoc, RegionId, SrcLoc, Tid, VarId};

    fn access(tid: u32, region: Option<u64>) -> RaceAccess {
        RaceAccess {
            seq: 1,
            tid: Tid(tid),
            region: region.map(RegionId),
            kind: AccessKind::Write,
            loc: Some(SrcLoc::new("x.hmp", 3)),
            mpi: None,
        }
    }

    #[test]
    fn flip_pins_name_both_sides() {
        let race = Race {
            rank: Rank(1),
            loc: MemLoc::Var(VarId(0)),
            first: access(0, None),
            second: access(1, Some(4)),
        };
        let pins = flip_pins(&race).unwrap();
        assert_eq!(
            pins,
            vec![
                ("rank1.r4.t1".to_string(), DIRECTED_HIGH),
                ("rank1".to_string(), DIRECTED_LOW),
            ]
        );
    }

    #[test]
    fn flip_pins_skip_unnameable_and_same_thread_races() {
        let unnameable = Race {
            rank: Rank(0),
            loc: MemLoc::Var(VarId(0)),
            first: access(1, None), // worker without a region: no name
            second: access(0, None),
        };
        assert_eq!(flip_pins(&unnameable), None);
        let same = Race {
            rank: Rank(0),
            loc: MemLoc::Var(VarId(0)),
            first: access(0, None),
            second: access(0, None),
        };
        assert_eq!(flip_pins(&same), None);
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(Strategy::parse("pct"), Some(Strategy::Pct));
        assert_eq!(Strategy::parse("random"), Some(Strategy::Random));
        assert_eq!(Strategy::parse("directed"), Some(Strategy::Directed));
        assert_eq!(Strategy::parse("all"), Some(Strategy::All));
        assert_eq!(Strategy::parse("dfs"), None);
    }

    #[test]
    fn explore_finds_figure1_violation() {
        let program = home_ir::parse(
            r#"
            program fig1 {
                mpi_init();
                omp parallel num_threads(2) {
                    omp sections {
                        section { if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); } }
                        section { if (rank == 1) { mpi_recv(from: 0, tag: 0); } }
                    }
                }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let options = ExploreOptions {
            budget: 8,
            ..ExploreOptions::default()
        };
        let report = explore(&program, &options);
        assert!(report.found_anything(), "{}", report.render("fig1.hmp"));
        assert!(!report.partial);
        assert_eq!(report.coverage.attempted, 8);
        let first = &report.violations[0];
        assert!(first.schedule_index >= 1);
        assert!(first.token.repro_flags().contains("--seeds"));
    }
}
