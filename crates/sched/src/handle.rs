//! Join handles for virtual threads.

use crate::runtime::Runtime;
use crate::vtid::Vtid;
use parking_lot::Mutex;
use std::sync::Arc;

/// Error returned by [`JoinHandle::join`].
#[derive(Debug)]
pub enum JoinError {
    /// The virtual thread panicked; the payload is its panic message when
    /// it was a string.
    Panicked(String),
    /// The scheduler was poisoned (deadlock/shutdown) and the thread's
    /// result never materialized.
    Sched(crate::SchedError),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked(msg) => write!(f, "virtual thread panicked: {msg}"),
            JoinError::Sched(e) => write!(f, "scheduler error during join: {e}"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Handle to a spawned virtual thread.
///
/// `join` is cooperative when called from another virtual thread (it blocks
/// through the scheduler, participating in deadlock detection) and a plain
/// condition wait when called from the driver.
pub struct JoinHandle<T> {
    rt: Runtime,
    vtid: Vtid,
    cell: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
    name: String,
}

impl<T: Send + 'static> JoinHandle<T> {
    pub(crate) fn new(
        rt: Runtime,
        vtid: Vtid,
        cell: Arc<Mutex<Option<std::thread::Result<T>>>>,
        os: std::thread::JoinHandle<()>,
        name: String,
    ) -> Self {
        JoinHandle {
            rt,
            vtid,
            cell,
            os: Some(os),
            name,
        }
    }

    /// The virtual thread id of the spawned thread.
    pub fn vtid(&self) -> Vtid {
        self.vtid
    }

    /// The name given at spawn.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True if the thread's closure has returned (or panicked).
    pub fn is_finished(&self) -> bool {
        self.rt.is_finished(self.vtid)
    }

    /// Wait for the thread to finish and return its result.
    pub fn join(mut self) -> Result<T, JoinError> {
        if let Err(e) = self.rt.join_wait(self.vtid) {
            // Poisoned run: the thread may still produce a result while
            // unwinding; give the OS thread a chance to exit, then check.
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
            if self.cell.lock().is_none() {
                return Err(JoinError::Sched(e));
            }
        } else if crate::runtime::current_vtid().is_none() {
            // Driver-side join: also reap the OS thread.
            if let Some(os) = self.os.take() {
                let _ = os.join();
            }
        }
        let result = self
            .cell
            .lock()
            .take()
            .expect("finished virtual thread must have stored its result");
        result.map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            JoinError::Panicked(msg)
        })
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("vtid", &self.vtid)
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedConfig;

    #[test]
    fn handle_reports_metadata() {
        let rt = Runtime::new(SchedConfig::deterministic(0));
        let h = rt.spawn("meta", || ());
        assert_eq!(h.name(), "meta");
        assert_eq!(h.vtid().index(), 0);
        rt.run().unwrap();
        assert!(h.is_finished());
        h.join().unwrap();
    }

    #[test]
    fn join_error_display() {
        let e = JoinError::Panicked("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
