//! The static analysis procedure (paper Algorithm 1 plus precision hints).
//!
//! Walks the linearized CFG; between an `ompParallelBegin` and its matching
//! `ompParallelEnd`, every reachable MPI call node is marked for replacement
//! with an instrumented HMPI wrapper. Calls outside parallel regions are
//! *skipped* during instrumentation — the paper's central overhead
//! reduction, since thread-safety violations can only arise where multiple
//! threads exist.

use crate::abstract_eval::AbsEnv;
use crate::cfg::{Cfg, CfgNode, OmpRegionKind};
use crate::checklist::{Checklist, StaticCallSite, ALL_MONITORED};
use crate::deadlock::{self, StaticCandidate};
use crate::summary::Summaries;
use home_ir::{MpiStmt, NodeId, Program, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Classification of one parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionClass {
    /// No MPI calls inside — guaranteed free of *hybrid* violations, so the
    /// dynamic phase does not monitor it.
    ErrorFree,
    /// Contains MPI calls: candidate for runtime checking.
    PotentiallyErroneous,
}

/// Summary of one `omp parallel` region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionInfo {
    /// IR node of the `omp parallel` statement.
    pub node: NodeId,
    /// Source line.
    pub line: u32,
    /// MPI calls syntactically inside.
    pub mpi_calls: usize,
    /// Classification.
    pub class: RegionClass,
}

/// A typed note the static phase attaches to its stats instead of falling
/// back silently (e.g. defaulting the monitored set to [`ALL_MONITORED`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticNote {
    /// Sites are instrumented, but none maps to a recognized monitored-
    /// variable class: the global monitored set is genuinely empty, not an
    /// "instrument everything" default.
    NoRecognizedMpiKinds,
}

/// Aggregate statistics (reported by the tool and the benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticStats {
    /// All MPI call sites in the program.
    pub total_mpi_calls: usize,
    /// Sites selected for instrumentation.
    pub instrumented: usize,
    /// Sites skipped (outside hybrid regions or unreachable).
    pub skipped: usize,
    /// Sites in unreachable code.
    pub unreachable: usize,
    /// Parallel regions found.
    pub regions: usize,
    /// Regions classified error-free.
    pub error_free_regions: usize,
    /// Anomaly note, when the analysis hit a case that previously degraded
    /// silently.
    #[serde(default)]
    pub note: Option<StaticNote>,
}

/// Full output of the static phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticReport {
    /// The instrumentation checklist.
    pub checklist: Checklist,
    /// Per-region summaries.
    pub regions: Vec<RegionInfo>,
    /// Aggregate statistics.
    pub stats: StaticStats,
    /// Static deadlock/violation candidates (see [`crate::deadlock`]).
    #[serde(default)]
    pub candidates: Vec<StaticCandidate>,
}

/// Run the static phase on `program`.
///
/// ```
/// let program = home_ir::parse(
///     "program p {
///          mpi_barrier();
///          omp parallel num_threads(2) { mpi_barrier(); }
///      }",
/// )
/// .unwrap();
/// let report = home_static::analyze(&program);
/// assert_eq!(report.stats.total_mpi_calls, 2);
/// assert_eq!(report.stats.instrumented, 1, "only the in-region call");
/// ```
pub fn analyze(program: &Program) -> StaticReport {
    let env = AbsEnv::of_program(program);

    // Map statement ids to their Stmt for argument inspection.
    let mut stmt_of: HashMap<NodeId, &home_ir::Stmt> = HashMap::new();
    program.visit(&mut |s| {
        stmt_of.insert(s.id, s);
    });

    // Interprocedural context: one bottom-up summary per function over the
    // call graph (locks held, MPI calls reachable, thread-context
    // sensitivity) — see [`crate::summary`].
    let summaries = Summaries::build(program);

    let empty_locks = BTreeSet::new();
    let mut sites = Vec::new();
    // Main body: Algorithm 1 over the linearized CFG.
    collect_sites(
        &Cfg::build_block(&program.body),
        &stmt_of,
        &env,
        BodyCtx {
            hybrid: false,
            reachable: true,
            multi: false,
            entry_locks: &empty_locks,
        },
        &mut sites,
    );
    // Each function body, with its interprocedural context as the base.
    for func in &program.functions {
        collect_sites(
            &Cfg::build_block(&func.body),
            &stmt_of,
            &env,
            BodyCtx {
                hybrid: summaries.hybrid(&func.name),
                reachable: summaries.reachable(&func.name),
                multi: summaries.multi(&func.name),
                entry_locks: summaries.entry_locks(&func.name),
            },
            &mut sites,
        );
    }

    // Which monitored variables does the instrumented call mix need
    // (global union, kept for the dynamic phase's setup and old
    // consumers), and per-site: which writes each wrapper must emit.
    let (monitored_vars, note) = needed_monitored(&sites);
    refine_site_monitored(&mut sites);

    // Region summaries from the AST (function bodies included via visit).
    // `call`s to (transitively) MPI-bearing functions count as MPI calls
    // for classification.
    let mut regions = Vec::new();
    program.visit(&mut |s| {
        if let StmtKind::OmpParallel { body, .. } = &s.kind {
            let mut mpi_calls = 0;
            fn count(stmts: &[home_ir::Stmt], summaries: &Summaries, n: &mut usize) {
                for s in stmts {
                    match &s.kind {
                        StmtKind::Mpi(_) => *n += 1,
                        StmtKind::Call { name } if summaries.mpi_bearing(name) => *n += 1,
                        _ => {}
                    }
                    for b in s.kind.blocks() {
                        count(b, summaries, n);
                    }
                }
            }
            count(body, &summaries, &mut mpi_calls);
            regions.push(RegionInfo {
                node: s.id,
                line: s.line,
                mpi_calls,
                class: if mpi_calls == 0 {
                    RegionClass::ErrorFree
                } else {
                    RegionClass::PotentiallyErroneous
                },
            });
        }
    });

    let candidates = deadlock::candidates(program, &sites, &summaries);

    let stats = StaticStats {
        total_mpi_calls: sites.len(),
        instrumented: sites.iter().filter(|s| s.instrument).count(),
        skipped: sites.iter().filter(|s| !s.instrument).count(),
        unreachable: sites.iter().filter(|s| !s.reachable).count(),
        regions: regions.len(),
        error_free_regions: regions
            .iter()
            .filter(|r| r.class == RegionClass::ErrorFree)
            .count(),
        note,
    };

    StaticReport {
        checklist: Checklist {
            sites,
            monitored_vars,
        },
        regions,
        stats,
        candidates,
    }
}

/// Interprocedural base context of one body: the facts the summaries
/// establish about every execution of it.
struct BodyCtx<'a> {
    /// Already in a parallel context when the body is entered.
    hybrid: bool,
    /// The body can execute at all (false for functions never called).
    reachable: bool,
    /// More than one thread per region instance can enter the body.
    multi: bool,
    /// Locks provably held on entry.
    entry_locks: &'a BTreeSet<String>,
}

/// Algorithm 1's linear CFG walk over one body, now tracking the full
/// lexical context per site: parallel-region depth, serializing-construct
/// depth (`master`/`single`/`sections`), and the critical-section stack —
/// combined with the interprocedural [`BodyCtx`] base.
fn collect_sites(
    cfg: &Cfg,
    stmt_of: &HashMap<NodeId, &home_ir::Stmt>,
    env: &AbsEnv,
    ctx: BodyCtx<'_>,
    sites: &mut Vec<StaticCallSite>,
) {
    let reachable = cfg.reachable();
    let mut depth: u32 = 0;
    let mut serialize_depth: u32 = 0;
    let mut lock_stack: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    for (ix, node) in cfg.linearized() {
        match node {
            CfgNode::OmpBegin(_, OmpRegionKind::Parallel) => depth += 1,
            CfgNode::OmpEnd(_, OmpRegionKind::Parallel) => depth -= 1,
            CfgNode::OmpBegin(
                _,
                OmpRegionKind::Master | OmpRegionKind::Single | OmpRegionKind::Sections,
            ) => serialize_depth += 1,
            CfgNode::OmpEnd(
                _,
                OmpRegionKind::Master | OmpRegionKind::Single | OmpRegionKind::Sections,
            ) => serialize_depth -= 1,
            CfgNode::OmpBegin(id, OmpRegionKind::Critical) => {
                if let StmtKind::OmpCritical { name, .. } = &stmt_of[id].kind {
                    lock_stack.push(name);
                }
            }
            CfgNode::OmpEnd(id, OmpRegionKind::Critical) => {
                if matches!(stmt_of[id].kind, StmtKind::OmpCritical { .. }) {
                    lock_stack.pop();
                }
            }
            CfgNode::Stmt(id) => {
                if seen.contains(id) {
                    continue; // if-join duplicates
                }
                let stmt = stmt_of[id];
                if let StmtKind::Mpi(call) = &stmt.kind {
                    seen.insert(*id);
                    let is_reachable = reachable[ix] && ctx.reachable;
                    let in_hybrid = depth > 0 || ctx.hybrid;
                    let mut must_locks: BTreeSet<&str> =
                        ctx.entry_locks.iter().map(String::as_str).collect();
                    must_locks.extend(lock_stack.iter());
                    let (tag, peer) = call_args(call);
                    sites.push(StaticCallSite {
                        node: *id,
                        line: stmt.line,
                        name: call.name().to_string(),
                        in_hybrid_region: in_hybrid,
                        reachable: is_reachable,
                        instrument: in_hybrid && is_reachable,
                        is_collective: call.is_collective(),
                        tag_thread_distinct: tag.map(|e| env.is_thread_distinct(e)),
                        peer_thread_distinct: peer.map(|e| env.is_thread_distinct(e)),
                        init_level: match call {
                            MpiStmt::Init => Some(home_ir::IrThreadLevel::Single),
                            MpiStmt::InitThread { required } => Some(*required),
                            _ => None,
                        },
                        monitored: None, // filled by `refine_site_monitored`
                        must_locks: must_locks.into_iter().map(str::to_string).collect(),
                        multi_thread: (depth > 0 || ctx.multi) && serialize_depth == 0,
                    });
                }
            }
            _ => {}
        }
    }
    debug_assert_eq!(depth, 0, "unbalanced parallel markers");
    debug_assert_eq!(serialize_depth, 0, "unbalanced serializing markers");
}

/// (tag expr, peer expr) of a call, when present.
fn call_args(call: &MpiStmt) -> (Option<&home_ir::Expr>, Option<&home_ir::Expr>) {
    match call {
        MpiStmt::Send { dest, tag, .. }
        | MpiStmt::Ssend { dest, tag, .. }
        | MpiStmt::Isend { dest, tag, .. } => (Some(tag), Some(dest)),
        MpiStmt::Recv { src, tag, .. }
        | MpiStmt::Irecv { src, tag, .. }
        | MpiStmt::Probe { src, tag, .. }
        | MpiStmt::Iprobe { src, tag, .. } => (Some(tag), Some(src)),
        _ => (None, None),
    }
}

/// The global monitored-variable union the dynamic phase sets up. A call
/// mix with zero recognized kinds produces an *empty* set plus a typed
/// [`StaticNote`] — never an "instrument everything" default.
fn needed_monitored(sites: &[StaticCallSite]) -> (Vec<String>, Option<StaticNote>) {
    let instrumented: Vec<&StaticCallSite> = sites.iter().filter(|s| s.instrument).collect();
    let mut vars = BTreeSet::new();
    for s in &instrumented {
        match s.name.as_str() {
            "mpi_send" | "mpi_ssend" | "mpi_recv" | "mpi_isend" | "mpi_irecv" | "mpi_probe"
            | "mpi_iprobe" => {
                vars.insert("srctmp");
                vars.insert("tagtmp");
                vars.insert("commtmp");
            }
            "mpi_wait" | "mpi_test" | "mpi_waitall" => {
                vars.insert("requesttmp");
            }
            "mpi_finalize" => {
                vars.insert("finalizetmp");
            }
            _ if s.is_collective => {
                vars.insert("collectivetmp");
                vars.insert("commtmp");
            }
            _ => {}
        }
    }
    let note = if vars.is_empty() && !instrumented.is_empty() {
        Some(StaticNote::NoRecognizedMpiKinds)
    } else {
        None
    };
    // Keep the paper's canonical order.
    let ordered = ALL_MONITORED
        .iter()
        .filter(|v| vars.contains(*v))
        .map(|v| v.to_string())
        .collect();
    (ordered, note)
}

/// The monitored variable whose write the rule engine actually *consumes*
/// for each call class. The coarse wrapper also writes `srctmp`/`commtmp`
/// on point-to-point calls and `commtmp` on collectives, but no rule ever
/// fires on a src/comm race (the envelope metadata rules need rides on the
/// call record attached to every write), and a src/comm race exists exactly
/// when the corresponding tag/collective race does — same wrapper pair,
/// same locksets, same clocks. Dropping them per-site loses no verdict.
fn rule_bearing_monitored(site: &StaticCallSite) -> &'static [&'static str] {
    match site.name.as_str() {
        "mpi_send" | "mpi_ssend" | "mpi_recv" | "mpi_isend" | "mpi_irecv" | "mpi_probe"
        | "mpi_iprobe" => &["tagtmp"],
        "mpi_wait" | "mpi_test" | "mpi_waitall" => &["requesttmp"],
        "mpi_finalize" => &["finalizetmp"],
        _ if site.is_collective => &["collectivetmp"],
        _ => &[],
    }
}

/// Compute each instrumented site's per-site monitored-write set: the
/// rule-bearing variables of its call class, minus those the lock model
/// proves race-free. A variable `v` is dropped at site `s` exactly when `s`
/// holds at least one lock and *every* instrumented site writing `v`
/// (including `s` itself) shares a must-held lock with `s` — the runtime
/// locksets then always intersect, so the detector could never report a
/// race on `v` involving `s`. `finalizetmp` is exempt: the finalization
/// rule consumes the write event directly, not just races over it.
fn refine_site_monitored(sites: &mut [StaticCallSite]) {
    let mut sharers: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
    for (ix, site) in sites.iter().enumerate() {
        if site.instrument {
            for &v in rule_bearing_monitored(site) {
                sharers.entry(v).or_default().push(ix);
            }
        }
    }
    let must_locks: Vec<BTreeSet<&str>> = sites
        .iter()
        .map(|s| s.must_locks.iter().map(String::as_str).collect())
        .collect();
    let refined: Vec<Option<Vec<String>>> = sites
        .iter()
        .enumerate()
        .map(|(ix, site)| {
            if !site.instrument {
                return None;
            }
            let mine = &must_locks[ix];
            let keep: Vec<String> = rule_bearing_monitored(site)
                .iter()
                .filter(|&&v| {
                    v == "finalizetmp"
                        || mine.is_empty()
                        || sharers
                            .get(v)
                            .is_some_and(|xs| xs.iter().any(|&o| mine.is_disjoint(&must_locks[o])))
                })
                .map(|v| v.to_string())
                .collect();
            Some(keep)
        })
        .collect();
    for (site, monitored) in sites.iter_mut().zip(refined) {
        site.monitored = monitored;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_ir::parse;

    #[test]
    fn calls_outside_regions_are_skipped() {
        let p = parse(
            r#"
            program filter {
                mpi_init_thread(multiple);
                mpi_barrier();
                omp parallel num_threads(2) {
                    mpi_send(to: 1, tag: 0, count: 1);
                }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.total_mpi_calls, 4);
        assert_eq!(r.stats.instrumented, 1);
        assert_eq!(r.stats.skipped, 3);
        let send = r
            .checklist
            .sites
            .iter()
            .find(|s| s.name == "mpi_send")
            .unwrap();
        assert!(send.instrument);
        assert!(send.in_hybrid_region);
        let bar = r
            .checklist
            .sites
            .iter()
            .find(|s| s.name == "mpi_barrier")
            .unwrap();
        assert!(!bar.instrument);
    }

    #[test]
    fn nested_constructs_inside_parallel_still_count() {
        let p = parse(
            r#"
            program nest {
                omp parallel {
                    if (rank == 0) {
                        omp critical(c) { mpi_recv(from: any, tag: any); }
                    }
                    omp sections {
                        section { mpi_send(to: 1, tag: 0, count: 1); }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.instrumented, 2);
    }

    #[test]
    fn region_classification() {
        let p = parse(
            r#"
            program regions {
                omp parallel { compute(100); }
                omp parallel { mpi_barrier(); }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.regions, 2);
        assert_eq!(r.stats.error_free_regions, 1);
        assert_eq!(r.regions[0].class, RegionClass::ErrorFree);
        assert_eq!(r.regions[1].class, RegionClass::PotentiallyErroneous);
        assert_eq!(r.regions[1].mpi_calls, 1);
    }

    #[test]
    fn thread_distinct_tags_are_flagged() {
        let p = parse(
            r#"
            program tags {
                omp parallel {
                    mpi_send(to: 1, tag: tid, count: 1);
                    mpi_send(to: 1, tag: 7, count: 1);
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        let tags: Vec<Option<bool>> = r
            .checklist
            .sites
            .iter()
            .map(|s| s.tag_thread_distinct)
            .collect();
        assert_eq!(tags, vec![Some(true), Some(false)]);
    }

    #[test]
    fn monitored_vars_follow_call_mix() {
        let p = parse(
            r#"
            program mix {
                omp parallel {
                    mpi_recv(from: any, tag: any);
                    mpi_wait(req: r);
                    mpi_barrier();
                    mpi_finalize();
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.checklist.monitored_vars,
            vec![
                "srctmp",
                "tagtmp",
                "commtmp",
                "requesttmp",
                "collectivetmp",
                "finalizetmp"
            ]
        );
    }

    #[test]
    fn p2p_only_program_needs_only_envelope_vars() {
        let p = parse("program p { omp parallel { mpi_send(to: 1, tag: 0, count: 1); } }").unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.checklist.monitored_vars,
            vec!["srctmp", "tagtmp", "commtmp"]
        );
    }

    #[test]
    fn init_levels_are_recorded() {
        let p =
            parse("program i { mpi_init(); omp parallel { mpi_send(to: 1, tag: 0, count: 1); } }")
                .unwrap();
        let r = analyze(&p);
        let init = r
            .checklist
            .sites
            .iter()
            .find(|s| s.name == "mpi_init")
            .unwrap();
        assert_eq!(init.init_level, Some(home_ir::IrThreadLevel::Single));
    }

    #[test]
    fn zero_recognized_kinds_sets_a_note_not_a_fallback() {
        let p = parse("program z { omp parallel { mpi_init_thread(multiple); } }").unwrap();
        let r = analyze(&p);
        assert!(r.stats.instrumented > 0);
        assert!(r.checklist.monitored_vars.is_empty(), "no silent default");
        assert_eq!(r.stats.note, Some(StaticNote::NoRecognizedMpiKinds));
        // A recognized mix carries no note.
        let p = parse("program ok { omp parallel { mpi_barrier(); } }").unwrap();
        assert_eq!(analyze(&p).stats.note, None);
    }

    #[test]
    fn per_site_sets_shrink_to_rule_bearing_vars() {
        let p = parse(
            r#"
            program shrink {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    mpi_recv(from: 0, tag: 7);
                    mpi_barrier();
                }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        let site = |name: &str| r.checklist.sites.iter().find(|s| s.name == name).unwrap();
        // Instrumented sites carry only the rule-bearing variable of their
        // class — strictly fewer than the coarse per-kind table.
        assert_eq!(
            site("mpi_recv").monitored.as_deref(),
            Some(&["tagtmp".to_string()][..])
        );
        assert_eq!(
            site("mpi_barrier").monitored.as_deref(),
            Some(&["collectivetmp".to_string()][..])
        );
        // Skipped sites stay coarse (they emit nothing anyway).
        assert_eq!(site("mpi_finalize").monitored, None);
        // The global union is unchanged by the refinement.
        assert_eq!(
            r.checklist.monitored_vars,
            vec!["srctmp", "tagtmp", "commtmp", "collectivetmp"]
        );
    }

    #[test]
    fn lock_serialized_sole_sharer_drops_its_var_but_finalize_never_drops() {
        let p = parse(
            r#"
            program locked {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    omp critical(net) { mpi_recv(from: 0, tag: 4); }
                    omp critical(fin) { mpi_finalize(); }
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        let site = |name: &str| r.checklist.sites.iter().find(|s| s.name == name).unwrap();
        // The recv is the only tagtmp writer and every execution holds
        // `net`: its runtime locksets always intersect, so the write can
        // never race — drop it.
        assert_eq!(site("mpi_recv").monitored.as_deref(), Some(&[][..]));
        assert_eq!(site("mpi_recv").must_locks, vec!["net".to_string()]);
        // finalizetmp is consumed directly by the off-main-finalize rule,
        // not only via races: never dropped.
        assert_eq!(
            site("mpi_finalize").monitored.as_deref(),
            Some(&["finalizetmp".to_string()][..])
        );
    }

    #[test]
    fn shared_lock_discipline_drops_vars_at_all_sharers() {
        let p = parse(
            r#"
            program pair {
                omp parallel num_threads(2) {
                    omp critical(m) { mpi_send(to: 1, tag: 0, count: 1); }
                    omp critical(m) { mpi_recv(from: 0, tag: 0); }
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        for s in r.checklist.sites.iter().filter(|s| s.instrument) {
            assert_eq!(s.monitored.as_deref(), Some(&[][..]), "{}", s.name);
        }
        // One unlocked sharer breaks the discipline for everyone.
        let p = parse(
            r#"
            program broken {
                omp parallel num_threads(2) {
                    omp critical(m) { mpi_send(to: 1, tag: 0, count: 1); }
                    mpi_recv(from: 0, tag: 0);
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        for s in r.checklist.sites.iter().filter(|s| s.instrument) {
            assert_eq!(
                s.monitored.as_deref(),
                Some(&["tagtmp".to_string()][..]),
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn sites_carry_interprocedural_lock_and_thread_context() {
        let p = parse(
            r#"
            program ctx {
                fn fetch() { mpi_recv(from: 0, tag: 4); }
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    omp critical(net) { call fetch(); }
                    omp master { mpi_send(to: 1, tag: 0, count: 1); }
                }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        let site = |name: &str| r.checklist.sites.iter().find(|s| s.name == name).unwrap();
        let recv = site("mpi_recv");
        assert!(recv.instrument, "hybrid context flows through the call");
        assert_eq!(
            recv.must_locks,
            vec!["net".to_string()],
            "entry locks flow in"
        );
        assert!(recv.multi_thread);
        let send = site("mpi_send");
        assert!(send.instrument);
        assert!(!send.multi_thread, "master serializes the site");
        assert!(!site("mpi_finalize").multi_thread, "outside the region");
    }

    #[test]
    fn empty_program_is_clean() {
        let p = parse("program e { }").unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.total_mpi_calls, 0);
        assert!(r.checklist.monitored_vars.is_empty());
        assert_eq!(r.stats.regions, 0);
    }
}
