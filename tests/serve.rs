//! In-process tests of the `home serve` daemon: concurrent multi-tenant
//! ingest, verdict parity with the offline analyzers, typed rejection of
//! hostile streams, and clean shutdown.

use home::prelude::*;
use home::serve::{analyze_sections, ping, status, stop, submit, ServeConfig, Server};
use home::stream::{decode_sections, HbtWriter};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Barrier};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Record `programs/figure2.hmp` under `seeds`, exactly like `home record`.
fn recorded_trace(seeds: &[u64]) -> Vec<u8> {
    let source = std::fs::read_to_string("programs/figure2.hmp").expect("sample program");
    let program = parse(&source).expect("sample program parses");
    let checklist = Arc::new(analyze(&program).checklist.clone());
    let mut writer = HbtWriter::new(Vec::new()).expect("header write");
    for &seed in seeds {
        writer.begin_run(seed).expect("run record");
        let mut cfg = RunConfig::test(2, seed)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(Arc::clone(&checklist));
        cfg.threads_per_proc = 2;
        cfg.sched.policy = SchedPolicy::Random;
        let result = run(&program, &cfg);
        for e in result.trace.events() {
            writer.write_event(e).expect("event record");
        }
        for i in &result.mpi_errors {
            writer
                .write_incident(&home::stream::TraceIncident {
                    rank: i.rank,
                    line: i.line,
                    call: i.call.clone(),
                    error: i.error.clone(),
                })
                .expect("incident record");
        }
    }
    writer.finish().expect("trailer write")
}

fn start_server(config: ServeConfig) -> (std::path::PathBuf, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind serve socket");
    let socket = server.socket_path().to_path_buf();
    let handle = std::thread::spawn(move || server.run().expect("serve run"));
    (socket, handle)
}

#[test]
fn eight_concurrent_submissions_match_the_offline_verdict() {
    let dir = tmp_dir("serve_concurrent");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);

    // max_sessions = 2 with 8 concurrent clients: the gate must make the
    // excess block (backpressure), never drop or reject them.
    let mut config = ServeConfig::new(&socket_path);
    config.max_sessions = 2;
    let (socket, server) = start_server(config);

    let trace = recorded_trace(&[1, 2]);
    let expected = analyze_sections(&decode_sections(&trace).expect("trace decodes"))
        .expect("offline analyze");
    let expected_lines: Vec<String> = expected.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        !expected_lines.is_empty(),
        "figure2 must produce violations for the parity check to bite"
    );

    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let socket = socket.clone();
        let trace = trace.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            submit(&socket, &trace)
        }));
    }
    for handle in handles {
        let reply = handle
            .join()
            .expect("client thread")
            .expect("submit succeeds");
        assert!(
            reply.ok,
            "daemon rejected a well-formed trace: {:?}",
            reply.error
        );
        assert_eq!(reply.runs, 2, "one verdict covers both recorded runs");
        assert_eq!(
            reply.violations, expected_lines,
            "daemon verdict differs from the offline analyzer"
        );
    }

    let fleet = status(&socket).expect("status");
    assert!(fleet.ok);
    assert_eq!(fleet.runs, CLIENTS as u64 * 2, "fleet run count");
    assert!(
        fleet.raw.contains("\"submissions\":8"),
        "fleet submissions: {}",
        fleet.raw
    );
    // Every violation was seen by every submission.
    assert!(
        fleet.raw.contains("\"runs\":16") || fleet.raw.contains("\"runs\":8"),
        "aggregated per-violation run counts: {}",
        fleet.raw
    );

    let reply = stop(&socket).expect("stop");
    assert!(reply.ok);
    server.join().expect("server thread");
    assert!(!socket.exists(), "socket file removed on shutdown");
}

#[test]
fn hostile_streams_get_typed_errors_and_the_daemon_survives() {
    let dir = tmp_dir("serve_hostile");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    // Garbage after a valid magic byte: typed rejection.
    let reply = submit(&socket, b"\x89garbage-not-hbt").expect("reply arrives");
    assert!(!reply.ok);
    assert!(
        reply.error.as_deref().unwrap_or("").contains("HBT"),
        "rejection names the format: {:?}",
        reply.error
    );

    // A trace truncated mid-record: typed rejection, not a hang or panic.
    let trace = recorded_trace(&[1]);
    let reply = submit(&socket, &trace[..trace.len() / 2]).expect("reply arrives");
    assert!(!reply.ok, "truncated stream must be rejected");
    assert!(reply.error.is_some());

    // A client that connects and immediately disappears costs nothing.
    drop(UnixStream::connect(&socket).expect("connect"));

    // The daemon is still alive and counted the rejections.
    let alive = ping(&socket).expect("ping");
    assert!(alive.ok);
    let fleet = status(&socket).expect("status");
    assert!(
        fleet.raw.contains("\"rejected\":2"),
        "rejections are counted: {}",
        fleet.raw
    );

    // A well-formed submission still works after the abuse.
    let reply = submit(&socket, &trace).expect("submit");
    assert!(reply.ok);
    assert_eq!(reply.runs, 1);

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}

#[test]
fn trickling_clients_hit_the_session_deadline_and_release_their_slot() {
    use std::time::{Duration, Instant};

    let dir = tmp_dir("serve_trickle");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);

    // One ingest slot, a generous per-read timeout, and a tight overall
    // session deadline: a client feeding one byte per read period would
    // hold the only slot forever if the deadline were not enforced.
    let mut config = ServeConfig::new(&socket_path);
    config.max_sessions = 1;
    config.read_timeout = Some(Duration::from_secs(10));
    config.session_deadline = Some(Duration::from_millis(250));
    let (socket, server) = start_server(config);

    let start = Instant::now();
    let mut trickler = UnixStream::connect(&socket).expect("connect");
    trickler
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    // Valid HBT header, then a record declaring a 100000-byte payload
    // (varint 0xA0 0x8D 0x06) dribbled one byte at a time: the reader
    // legitimately needs more data, so only the deadline can cut it.
    // Writes start failing once the daemon does — that's the signal.
    let _ = trickler.write_all(&[0x89, b'H', b'B', b'T', 1, 0xA0, 0x8D, 0x06]);
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        if trickler.write_all(&[0x01]).is_err() || trickler.flush().is_err() {
            break;
        }
    }
    let mut reply = String::new();
    let _ = BufReader::new(&trickler).read_line(&mut reply);
    if !reply.is_empty() {
        assert!(reply.contains("\"ok\":false"), "reply: {reply}");
        assert!(
            reply.contains("deadline"),
            "rejection names the deadline: {reply}"
        );
    }
    drop(trickler);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the trickler was cut by the deadline, not by its own patience"
    );

    // The slot is free again: a real submission on the 1-slot daemon works.
    let trace = recorded_trace(&[1]);
    let reply = submit(&socket, &trace).expect("submit after trickler");
    assert!(reply.ok, "daemon still ingests: {:?}", reply.error);
    let fleet = status(&socket).expect("status");
    assert!(
        fleet.raw.contains("\"rejected\":1"),
        "the trickled session was rejected and counted: {}",
        fleet.raw
    );

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}

#[test]
fn compressed_submissions_reach_the_same_verdict() {
    // A v2 (`record --compress`) stream through the daemon's record-at-a-
    // time ingest loop must produce the exact verdict of the v1 stream.
    let dir = tmp_dir("serve_v2");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    let v1 = recorded_trace(&[1, 2]);
    let sections = decode_sections(&v1).expect("v1 decodes");
    let mut writer = HbtWriter::new_compressed(Vec::new()).expect("v2 header");
    for s in &sections {
        if let Some(seed) = s.seed {
            writer.begin_run(seed).expect("run record");
        }
        for e in s.trace.events() {
            writer.write_event(e).expect("event record");
        }
        for i in &s.incidents {
            writer.write_incident(i).expect("incident record");
        }
    }
    let v2 = writer.finish().expect("v2 trailer");
    assert!(v2.len() < v1.len(), "compression shrinks the figure2 trace");

    let a = submit(&socket, &v1).expect("v1 submit");
    let b = submit(&socket, &v2).expect("v2 submit");
    assert!(a.ok && b.ok);
    assert_eq!(a.runs, b.runs, "same run count through both formats");
    assert_eq!(
        a.violations, b.violations,
        "v1 and v2 submissions must reach identical verdicts"
    );

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}

/// Record `programs/figure2.hmp` under `seeds` as a compressed v2 stream.
fn recorded_v2(seeds: &[u64]) -> Vec<u8> {
    let source = std::fs::read_to_string("programs/figure2.hmp").expect("sample program");
    let program = parse(&source).expect("sample program parses");
    let checklist = Arc::new(analyze(&program).checklist.clone());
    let mut writer = home::stream::HbtWriter::new_compressed(Vec::new()).expect("v2 header");
    for &seed in seeds {
        writer.begin_run(seed).expect("run record");
        let mut cfg = RunConfig::test(2, seed)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(Arc::clone(&checklist));
        cfg.threads_per_proc = 2;
        let result = run(&program, &cfg);
        for e in result.trace.events() {
            writer.write_event(e).expect("event record");
        }
    }
    writer.finish().expect("v2 trailer")
}

/// A forged v2 stream whose run record claims `claimed` but whose events
/// are `source`'s section for `actual` with the final event dropped —
/// a well-formed stream that reuses a known seed over different records.
fn forged_v2(source: &[u8], claimed: u64, actual: u64) -> Vec<u8> {
    let sections = decode_sections(source).expect("source decodes");
    let section = sections
        .iter()
        .find(|s| s.seed == Some(actual))
        .expect("seed recorded in source");
    let events = section.trace.events();
    assert!(events.len() > 1, "need an event to drop");
    let mut writer = home::stream::HbtWriter::new_compressed(Vec::new()).expect("v2 header");
    writer.begin_run(claimed).expect("run record");
    for e in &events[..events.len() - 1] {
        writer.write_event(e).expect("event record");
    }
    writer.finish().expect("v2 trailer")
}

#[test]
fn known_runs_are_skipped_and_conflicting_seed_reuse_is_rejected() {
    let dir = tmp_dir("serve_known_runs");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    // First submission of a seeded compressed stream: analyzed in full.
    let good = recorded_v2(&[1, 2]);
    let first = submit(&socket, &good).expect("first submit");
    assert!(first.ok, "honest v2 stream ingests: {:?}", first.error);
    assert_eq!(first.runs, 2);

    // Resubmitting byte-identical runs hits the validated-index fast
    // path: the verdict is byte-identical, and the daemon reports the
    // frames it never had to re-decompress.
    let second = submit(&socket, &good).expect("second submit");
    assert!(second.ok);
    assert_eq!(second.runs, first.runs, "cached verdict covers both runs");
    assert_eq!(
        second.violations, first.violations,
        "fast-path verdict must be byte-identical to the analyzed one"
    );
    let fleet = status(&socket).expect("status");
    assert!(
        fleet.raw.contains("\"skipped_known_runs\":2"),
        "STATUS reports the skipped runs: {}",
        fleet.raw
    );
    assert_eq!(fleet.runs, 4, "cached runs still aggregate into the fleet");

    // A hostile stream whose index entry claims an already-seen seed but
    // carries different records (seed 1's section with the final event
    // dropped) must be rejected as a whole — not silently skipped as
    // known, and nothing absorbed.
    let imposter = forged_v2(&good, 1, 1);
    let reply = submit(&socket, &imposter).expect("imposter submit");
    assert!(!reply.ok, "conflicting seed reuse must be rejected");
    assert!(
        reply
            .error
            .as_deref()
            .unwrap_or("")
            .contains("already aggregated"),
        "rejection names the conflict: {:?}",
        reply.error
    );

    // The rejection absorbed nothing and was counted; the known-run
    // cache was not polluted, so the honest stream still fast-paths.
    let fleet = status(&socket).expect("status");
    assert_eq!(fleet.runs, 4, "rejected submission absorbs nothing");
    assert!(
        fleet.raw.contains("\"rejected\":1"),
        "conflict counted as a rejection: {}",
        fleet.raw
    );
    let third = submit(&socket, &good).expect("third submit");
    assert!(third.ok);
    assert_eq!(third.violations, first.violations);
    let fleet = status(&socket).expect("status");
    assert!(
        fleet.raw.contains("\"skipped_known_runs\":4"),
        "fast path still live after the attack: {}",
        fleet.raw
    );

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}

#[test]
fn unknown_commands_are_rejected_politely() {
    let dir = tmp_dir("serve_commands");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream.write_all(b"BOGUS\n").expect("send command");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("reply");
    assert!(line.contains("\"ok\":false"), "reply: {line}");
    assert!(line.contains("unknown command"), "reply: {line}");

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}

#[test]
fn bind_recovers_stale_sockets_but_respects_live_daemons() {
    let dir = tmp_dir("serve_bind");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);

    // A stale socket file (no daemon behind it) is silently reclaimed.
    {
        let server = Server::bind(ServeConfig::new(&socket_path)).expect("first bind");
        drop(server); // never ran: socket file left behind
    }
    assert!(socket_path.exists(), "stale socket file left behind");
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    // A second daemon on the same live socket is refused.
    let err = Server::bind(ServeConfig::new(&socket_path)).expect_err("live socket is claimed");
    assert!(
        err.to_string().contains("already serving"),
        "unexpected error: {err}"
    );

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}
