//! Nonblocking-request bookkeeping.

use crate::error::{MpiError, MpiResult};
use crate::msg::{Message, SrcSpec, TagSpec};
use home_sched::Vtid;
use home_trace::{CommId, Rank, ReqId};
use std::collections::HashMap;

/// What a pending request is waiting for.
#[derive(Debug, Clone)]
pub enum ReqState {
    /// An `MPI_Irecv` that has not matched yet.
    PendingRecv {
        /// Receiving world rank.
        dst: Rank,
        src: SrcSpec,
        tag: TagSpec,
        comm: CommId,
        /// Post order among this rank's pending receives (earlier posts
        /// match first).
        post_seq: u64,
    },
    /// An `MPI_Irecv` that matched; the message is ready to be consumed.
    ReadyRecv(Message),
    /// An `MPI_Isend` (eager: the data is already in flight).
    SendInFlight {
        /// Virtual time at which the send buffer is reusable.
        complete_at_ns: u64,
    },
    /// Completed and consumed by `MPI_Wait`/`MPI_Test`.
    Consumed,
}

/// One request record.
#[derive(Debug)]
pub struct Request {
    /// Owning world rank.
    pub owner: Rank,
    /// Current state.
    pub state: ReqState,
    /// Threads blocked in `MPI_Wait` on this request.
    pub waiters: Vec<Vtid>,
}

/// The request table of a [`crate::World`].
#[derive(Debug, Default)]
pub struct RequestTable {
    next: u64,
    post_seq: u64,
    reqs: HashMap<ReqId, Request>,
}

impl RequestTable {
    /// Create an empty table.
    pub fn new() -> Self {
        RequestTable::default()
    }

    /// Allocate a new request.
    pub fn alloc(&mut self, owner: Rank, state: ReqState) -> ReqId {
        let id = ReqId(self.next);
        self.next += 1;
        self.reqs.insert(
            id,
            Request {
                owner,
                state,
                waiters: Vec::new(),
            },
        );
        id
    }

    /// Next posting sequence number (ordering of pending receives).
    pub fn next_post_seq(&mut self) -> u64 {
        let s = self.post_seq;
        self.post_seq += 1;
        s
    }

    /// Borrow a request.
    pub fn get(&self, id: ReqId) -> MpiResult<&Request> {
        self.reqs.get(&id).ok_or(MpiError::RequestUnknown)
    }

    /// Mutably borrow a request.
    pub fn get_mut(&mut self, id: ReqId) -> MpiResult<&mut Request> {
        self.reqs.get_mut(&id).ok_or(MpiError::RequestUnknown)
    }

    /// All pending receive requests of `dst`, ordered by post sequence.
    pub fn pending_recvs_of(&self, dst: Rank) -> Vec<(ReqId, SrcSpec, TagSpec, CommId, u64)> {
        let mut v: Vec<_> = self
            .reqs
            .iter()
            .filter_map(|(&id, r)| match &r.state {
                ReqState::PendingRecv {
                    dst: d,
                    src,
                    tag,
                    comm,
                    post_seq,
                } if *d == dst => Some((id, *src, *tag, *comm, *post_seq)),
                _ => None,
            })
            .collect();
        v.sort_by_key(|&(_, _, _, _, seq)| seq);
        v
    }

    /// Complete a pending receive with `msg`, returning the threads to wake.
    pub fn complete_recv(&mut self, id: ReqId, msg: Message) -> Vec<Vtid> {
        let r = self.reqs.get_mut(&id).expect("completing unknown request");
        debug_assert!(matches!(r.state, ReqState::PendingRecv { .. }));
        r.state = ReqState::ReadyRecv(msg);
        std::mem::take(&mut r.waiters)
    }

    /// Number of live (non-consumed) requests, for leak assertions in tests.
    pub fn live(&self) -> usize {
        self.reqs
            .values()
            .filter(|r| !matches!(r.state, ReqState::Consumed))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::payload;
    use home_trace::COMM_WORLD;

    #[test]
    fn alloc_and_lookup() {
        let mut t = RequestTable::new();
        let id = t.alloc(Rank(0), ReqState::SendInFlight { complete_at_ns: 5 });
        assert!(t.get(id).is_ok());
        assert!(t.get(ReqId(99)).is_err());
        assert_eq!(t.live(), 1);
    }

    #[test]
    fn pending_recvs_ordered_by_post_seq() {
        let mut t = RequestTable::new();
        let s1 = t.next_post_seq();
        let s0 = t.next_post_seq();
        assert!(s1 < s0);
        let a = t.alloc(
            Rank(1),
            ReqState::PendingRecv {
                dst: Rank(1),
                src: SrcSpec::Any,
                tag: TagSpec::Any,
                comm: COMM_WORLD,
                post_seq: s0,
            },
        );
        let b = t.alloc(
            Rank(1),
            ReqState::PendingRecv {
                dst: Rank(1),
                src: SrcSpec::Any,
                tag: TagSpec::Any,
                comm: COMM_WORLD,
                post_seq: s1,
            },
        );
        let pending = t.pending_recvs_of(Rank(1));
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].0, b, "earlier post first");
        assert_eq!(pending[1].0, a);
        // Other ranks see nothing.
        assert!(t.pending_recvs_of(Rank(0)).is_empty());
    }

    #[test]
    fn complete_recv_transitions_state() {
        let mut t = RequestTable::new();
        let seq = t.next_post_seq();
        let id = t.alloc(
            Rank(0),
            ReqState::PendingRecv {
                dst: Rank(0),
                src: SrcSpec::Rank(1),
                tag: TagSpec::Tag(0),
                comm: COMM_WORLD,
                post_seq: seq,
            },
        );
        let msg = Message {
            src: 1,
            src_world: Rank(1),
            tag: 0,
            comm: COMM_WORLD,
            data: payload(vec![3.0]),
            available_at_ns: 0,
            fifo_seq: 0,
            uid: 0,
        };
        let woken = t.complete_recv(id, msg);
        assert!(woken.is_empty());
        assert!(matches!(t.get(id).unwrap().state, ReqState::ReadyRecv(_)));
    }
}
