//! Abstract syntax of the hybrid MPI/OpenMP mini-language.
//!
//! The paper's static analysis works on a compiler front-end's CFG of a
//! C/Fortran hybrid program. Our substitution is a small C-like language
//! rich enough to express the paper's case studies and the NPB-MZ-style
//! workloads: scalar variables, control flow, the OpenMP constructs, the
//! MPI calls the wrappers monitor, and an abstract `compute` statement that
//! performs (and charges virtual time for) floating-point work.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an AST statement node. Dense per program; the CFG and the
/// instrumentation checklist refer to statements by `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Expressions. All arithmetic is over 64-bit integers (the language models
/// control and MPI arguments; bulk floating-point work lives in `compute`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// `rank` — this process's world rank.
    Rank,
    /// `size` — world size.
    Size,
    /// `tid` — OpenMP thread id (0 outside parallel regions).
    ThreadId,
    /// `nthreads` — OpenMP team size (1 outside parallel regions).
    NumThreads,
    /// `any` — the wildcard value (−1) for source/tag arguments.
    Any,
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Convenience variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Free variables referenced by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) if !out.contains(v) => out.push(v.clone()),
            Expr::Var(_) => {}
            Expr::Neg(e) | Expr::Not(e) => e.free_vars(out),
            Expr::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            _ => {}
        }
    }

    /// True if the expression depends on the OpenMP thread id — used by the
    /// static analysis to recognize thread-distinct tags (`tag = tid`).
    pub fn depends_on_tid(&self) -> bool {
        match self {
            Expr::ThreadId => true,
            Expr::Neg(e) | Expr::Not(e) => e.depends_on_tid(),
            Expr::Bin(_, a, b) => a.depends_on_tid() || b.depends_on_tid(),
            _ => false,
        }
    }
}

/// The four thread levels, surface form of `home_trace::ThreadLevel`
/// (kept separate so `home-ir` does not depend on the trace crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IrThreadLevel {
    Single,
    Funneled,
    Serialized,
    Multiple,
}

impl IrThreadLevel {
    /// Surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            IrThreadLevel::Single => "single",
            IrThreadLevel::Funneled => "funneled",
            IrThreadLevel::Serialized => "serialized",
            IrThreadLevel::Multiple => "multiple",
        }
    }
}

/// Reduction operators in the surface language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IrReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

impl IrReduceOp {
    /// Surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            IrReduceOp::Sum => "sum",
            IrReduceOp::Prod => "prod",
            IrReduceOp::Min => "min",
            IrReduceOp::Max => "max",
        }
    }
}

/// MPI statements of the surface language. Arguments are expressions so
/// programs can compute tags from thread ids, ranks, etc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MpiStmt {
    /// `mpi_init();`
    Init,
    /// `mpi_init_thread(level);`
    InitThread { required: IrThreadLevel },
    /// `mpi_finalize();`
    Finalize,
    /// `mpi_send(to: e, tag: e, count: e [, comm: c]);`
    Send {
        dest: Expr,
        tag: Expr,
        count: Expr,
        comm: Option<String>,
    },
    /// `mpi_ssend(to: e, tag: e, count: e [, comm: c]);` — synchronous
    /// (rendezvous) send: returns only once matched by a receive.
    Ssend {
        dest: Expr,
        tag: Expr,
        count: Expr,
        comm: Option<String>,
    },
    /// `mpi_recv(from: e, tag: e [, comm: c]);`
    Recv {
        src: Expr,
        tag: Expr,
        comm: Option<String>,
    },
    /// `mpi_isend(to: e, tag: e, count: e, req: r [, comm: c]);`
    Isend {
        dest: Expr,
        tag: Expr,
        count: Expr,
        req: String,
        comm: Option<String>,
    },
    /// `mpi_irecv(from: e, tag: e, req: r [, comm: c]);`
    Irecv {
        src: Expr,
        tag: Expr,
        req: String,
        comm: Option<String>,
    },
    /// `mpi_wait(req);`
    Wait { req: String },
    /// `mpi_waitall(reqs: r1 r2 ...);`
    Waitall { reqs: Vec<String> },
    /// `mpi_test(req);`
    Test { req: String },
    /// `mpi_probe(from: e, tag: e [, comm: c]);`
    Probe {
        src: Expr,
        tag: Expr,
        comm: Option<String>,
    },
    /// `mpi_iprobe(from: e, tag: e [, comm: c]);`
    Iprobe {
        src: Expr,
        tag: Expr,
        comm: Option<String>,
    },
    /// `mpi_barrier([comm: c]);`
    Barrier { comm: Option<String> },
    /// `mpi_bcast(root: e, count: e [, comm: c]);`
    Bcast {
        root: Expr,
        count: Expr,
        comm: Option<String>,
    },
    /// `mpi_reduce(op, root: e, count: e [, comm: c]);`
    Reduce {
        op: IrReduceOp,
        root: Expr,
        count: Expr,
        comm: Option<String>,
    },
    /// `mpi_allreduce(op, count: e [, comm: c]);`
    Allreduce {
        op: IrReduceOp,
        count: Expr,
        comm: Option<String>,
    },
    /// `mpi_gather(root: e, count: e [, comm: c]);`
    Gather {
        root: Expr,
        count: Expr,
        comm: Option<String>,
    },
    /// `mpi_allgather(count: e [, comm: c]);`
    Allgather { count: Expr, comm: Option<String> },
    /// `mpi_scatter(root: e, count: e [, comm: c]);`
    Scatter {
        root: Expr,
        count: Expr,
        comm: Option<String>,
    },
    /// `mpi_alltoall(count: e [, comm: c]);`
    Alltoall { count: Expr, comm: Option<String> },
    /// `mpi_comm_dup(into: c [, comm: c0]);` — duplicate a communicator
    /// into the named handle (collective over the parent communicator).
    CommDup { into: String, comm: Option<String> },
    /// `mpi_comm_split(color: e, key: e, into: c [, comm: c0]);`
    CommSplit {
        color: Expr,
        key: Expr,
        into: String,
        comm: Option<String>,
    },
}

impl MpiStmt {
    /// Surface function name.
    pub fn name(&self) -> &'static str {
        match self {
            MpiStmt::Init => "mpi_init",
            MpiStmt::InitThread { .. } => "mpi_init_thread",
            MpiStmt::Finalize => "mpi_finalize",
            MpiStmt::Send { .. } => "mpi_send",
            MpiStmt::Ssend { .. } => "mpi_ssend",
            MpiStmt::Recv { .. } => "mpi_recv",
            MpiStmt::Isend { .. } => "mpi_isend",
            MpiStmt::Irecv { .. } => "mpi_irecv",
            MpiStmt::Wait { .. } => "mpi_wait",
            MpiStmt::Waitall { .. } => "mpi_waitall",
            MpiStmt::Test { .. } => "mpi_test",
            MpiStmt::Probe { .. } => "mpi_probe",
            MpiStmt::Iprobe { .. } => "mpi_iprobe",
            MpiStmt::Barrier { .. } => "mpi_barrier",
            MpiStmt::Bcast { .. } => "mpi_bcast",
            MpiStmt::Reduce { .. } => "mpi_reduce",
            MpiStmt::Allreduce { .. } => "mpi_allreduce",
            MpiStmt::Gather { .. } => "mpi_gather",
            MpiStmt::Allgather { .. } => "mpi_allgather",
            MpiStmt::Scatter { .. } => "mpi_scatter",
            MpiStmt::Alltoall { .. } => "mpi_alltoall",
            MpiStmt::CommDup { .. } => "mpi_comm_dup",
            MpiStmt::CommSplit { .. } => "mpi_comm_split",
        }
    }

    /// The communicator handle the call names (`None` = `MPI_COMM_WORLD`).
    pub fn comm_name(&self) -> Option<&str> {
        match self {
            MpiStmt::Send { comm, .. }
            | MpiStmt::Ssend { comm, .. }
            | MpiStmt::Recv { comm, .. }
            | MpiStmt::Isend { comm, .. }
            | MpiStmt::Irecv { comm, .. }
            | MpiStmt::Probe { comm, .. }
            | MpiStmt::Iprobe { comm, .. }
            | MpiStmt::Barrier { comm }
            | MpiStmt::Bcast { comm, .. }
            | MpiStmt::Reduce { comm, .. }
            | MpiStmt::Allreduce { comm, .. }
            | MpiStmt::Gather { comm, .. }
            | MpiStmt::Allgather { comm, .. }
            | MpiStmt::Scatter { comm, .. }
            | MpiStmt::Alltoall { comm, .. }
            | MpiStmt::CommDup { comm, .. }
            | MpiStmt::CommSplit { comm, .. } => comm.as_deref(),
            _ => None,
        }
    }

    /// True for collective operations.
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            MpiStmt::Barrier { .. }
                | MpiStmt::Bcast { .. }
                | MpiStmt::Reduce { .. }
                | MpiStmt::Allreduce { .. }
                | MpiStmt::Gather { .. }
                | MpiStmt::Allgather { .. }
                | MpiStmt::Scatter { .. }
                | MpiStmt::Alltoall { .. }
                | MpiStmt::CommDup { .. }
                | MpiStmt::CommSplit { .. }
        )
    }
}

/// `omp for` schedule clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    Static,
    Dynamic { chunk: u64 },
}

/// A statement, carrying its node id and source line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// Dense node id (assigned by parser/builder).
    pub id: NodeId,
    /// 1-based source line (0 for synthesized nodes).
    pub line: u32,
    /// Payload.
    pub kind: StmtKind,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// `int x = e;` / `shared int x = e;`
    Decl {
        name: String,
        shared: bool,
        init: Expr,
    },
    /// `x = e;`
    Assign { name: String, value: Expr },
    /// `if (e) { .. } else { .. }`
    If {
        cond: Expr,
        then_block: Vec<Stmt>,
        else_block: Vec<Stmt>,
    },
    /// `for i in a..b { .. }` — sequential loop.
    For {
        var: String,
        from: Expr,
        to: Expr,
        body: Vec<Stmt>,
    },
    /// `omp parallel num_threads(e) { .. }`
    OmpParallel { num_threads: Expr, body: Vec<Stmt> },
    /// `omp for [schedule(..)] i in a..b { .. }` — worksharing loop
    /// (must appear inside a parallel region).
    OmpFor {
        var: String,
        from: Expr,
        to: Expr,
        schedule: Schedule,
        body: Vec<Stmt>,
    },
    /// `omp sections { section { .. } section { .. } }`
    OmpSections { sections: Vec<Vec<Stmt>> },
    /// `omp single { .. }`
    OmpSingle { body: Vec<Stmt> },
    /// `omp master { .. }`
    OmpMaster { body: Vec<Stmt> },
    /// `omp critical(name) { .. }`
    OmpCritical { name: String, body: Vec<Stmt> },
    /// `omp barrier;`
    OmpBarrier,
    /// `omp atomic x = e;` — an atomically executed update of a shared
    /// scalar (modelled as a reserved critical section).
    OmpAtomic { name: String, value: Expr },
    /// An MPI call.
    Mpi(MpiStmt),
    /// `call name();` — invoke a program-level function (inlined
    /// semantics: the callee executes in the caller's environment under a
    /// fresh scope).
    Call { name: String },
    /// `compute(flops [, reads: a b] [, writes: c d]);` — synthetic
    /// floating-point work touching the named shared arrays.
    Compute {
        flops: Expr,
        reads: Vec<String>,
        writes: Vec<String>,
    },
}

impl StmtKind {
    /// Child statement blocks (for generic traversal).
    pub fn blocks(&self) -> Vec<&[Stmt]> {
        match self {
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => vec![then_block, else_block],
            StmtKind::For { body, .. }
            | StmtKind::OmpParallel { body, .. }
            | StmtKind::OmpFor { body, .. }
            | StmtKind::OmpSingle { body }
            | StmtKind::OmpMaster { body }
            | StmtKind::OmpCritical { body, .. } => vec![body],
            StmtKind::OmpSections { sections } => sections.iter().map(|s| s.as_slice()).collect(),
            _ => Vec::new(),
        }
    }
}

/// A program-level function definition (`fn name() { ... }`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// 1-based source line of the definition.
    pub line: u32,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used as the synthetic file name in source locations).
    pub name: String,
    /// Function definitions (callable from anywhere via `call f();`).
    pub functions: Vec<FuncDef>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Number of nodes allocated (ids are `0..node_count`).
    pub node_count: u32,
}

impl Program {
    /// Visit every statement (preorder): function bodies first (definition
    /// order), then the main body.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                for b in s.kind.blocks() {
                    walk(b, f);
                }
            }
        }
        for func in &self.functions {
            walk(&func.body, f);
        }
        walk(&self.body, f);
    }

    /// Look up a function definition by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a statement by node id.
    pub fn stmt(&self, id: NodeId) -> Option<&Stmt> {
        let mut found = None;
        self.visit(&mut |s| {
            if s.id == id {
                found = Some(s);
            }
        });
        found
    }

    /// All MPI-call statements, preorder.
    pub fn mpi_calls(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if matches!(s.kind, StmtKind::Mpi(_)) {
                out.push(s);
            }
        });
        out
    }

    /// Total number of statements.
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(id: u32, kind: StmtKind) -> Stmt {
        Stmt {
            id: NodeId(id),
            line: id + 1,
            kind,
        }
    }

    fn sample() -> Program {
        Program {
            name: "t".into(),
            functions: Vec::new(),
            body: vec![
                stmt(0, StmtKind::Mpi(MpiStmt::Init)),
                stmt(
                    1,
                    StmtKind::OmpParallel {
                        num_threads: Expr::int(2),
                        body: vec![stmt(
                            2,
                            StmtKind::If {
                                cond: Expr::bin(BinOp::Eq, Expr::Rank, Expr::int(0)),
                                then_block: vec![stmt(
                                    3,
                                    StmtKind::Mpi(MpiStmt::Send {
                                        dest: Expr::int(1),
                                        tag: Expr::var("tag"),
                                        count: Expr::int(1),
                                        comm: None,
                                    }),
                                )],
                                else_block: vec![],
                            },
                        )],
                    },
                ),
                stmt(4, StmtKind::Mpi(MpiStmt::Finalize)),
            ],
            node_count: 5,
        }
    }

    #[test]
    fn visit_preorder_sees_everything() {
        let p = sample();
        let mut ids = Vec::new();
        p.visit(&mut |s| ids.push(s.id.0));
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.stmt_count(), 5);
    }

    #[test]
    fn stmt_lookup_by_id() {
        let p = sample();
        let s = p.stmt(NodeId(3)).unwrap();
        assert!(matches!(s.kind, StmtKind::Mpi(MpiStmt::Send { .. })));
        assert!(p.stmt(NodeId(99)).is_none());
    }

    #[test]
    fn mpi_calls_found() {
        let p = sample();
        let calls = p.mpi_calls();
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[1].id, NodeId(3));
    }

    #[test]
    fn expr_free_vars_and_tid_dependence() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("a"),
            Expr::bin(BinOp::Mul, Expr::var("b"), Expr::var("a")),
        );
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["a".to_string(), "b".to_string()]);
        assert!(!e.depends_on_tid());
        let t = Expr::bin(BinOp::Add, Expr::ThreadId, Expr::int(1));
        assert!(t.depends_on_tid());
    }

    #[test]
    fn collective_predicate() {
        assert!(MpiStmt::Barrier { comm: None }.is_collective());
        assert!(MpiStmt::Allreduce {
            op: IrReduceOp::Sum,
            count: Expr::int(1),
            comm: None
        }
        .is_collective());
        assert!(MpiStmt::CommDup {
            into: "c".into(),
            comm: None
        }
        .is_collective());
        assert!(!MpiStmt::Recv {
            src: Expr::Any,
            tag: Expr::Any,
            comm: None
        }
        .is_collective());
    }

    #[test]
    fn comm_name_accessor() {
        let s = MpiStmt::Recv {
            src: Expr::Any,
            tag: Expr::Any,
            comm: Some("row".into()),
        };
        assert_eq!(s.comm_name(), Some("row"));
        assert_eq!(MpiStmt::Barrier { comm: None }.comm_name(), None);
        assert_eq!(MpiStmt::Finalize.comm_name(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
