//! Integration tests for the paper's two case studies (Figures 1 and 2),
//! exercised through the public facade.

use home::prelude::*;

const FIGURE_1: &str = r#"
program case1 {
    mpi_init();
    omp parallel num_threads(2) {
        omp sections {
            section { if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); } }
            section { if (rank == 1) { mpi_recv(from: 0, tag: 0); } }
        }
    }
    mpi_finalize();
}
"#;

const FIGURE_2: &str = r#"
program case2 {
    mpi_init_thread(multiple);
    shared int tag = 0;
    omp parallel num_threads(2) {
        if (rank == 0) {
            mpi_send(to: 1, tag: tag, count: 1);
            mpi_recv(from: 1, tag: tag);
        }
        if (rank == 1) {
            mpi_recv(from: 0, tag: tag);
            mpi_send(to: 0, tag: tag, count: 1);
        }
    }
    mpi_finalize();
}
"#;

#[test]
fn figure_1_initialization_violation_detected() {
    let report = check(&parse(FIGURE_1).unwrap(), &CheckOptions::default());
    assert!(
        report.has(ViolationKind::Initialization),
        "{}",
        report.render()
    );
    // The report points into the program.
    let v = &report.of_kind(ViolationKind::Initialization)[0];
    assert!(v.locations.iter().all(|l| l.file == "case1.hmp"));
}

#[test]
fn figure_1_fixed_with_thread_multiple() {
    let fixed = FIGURE_1.replace("mpi_init();", "mpi_init_thread(multiple);");
    let report = check(&parse(&fixed).unwrap(), &CheckOptions::default());
    assert!(
        !report.has(ViolationKind::Initialization),
        "{}",
        report.render()
    );
}

#[test]
fn figure_2_concurrent_recv_violation_detected() {
    let report = check(&parse(FIGURE_2).unwrap(), &CheckOptions::default());
    assert!(
        report.has(ViolationKind::ConcurrentRecv),
        "{}",
        report.render()
    );
}

#[test]
fn figure_2_fix_thread_id_tags_is_clean() {
    let fixed = FIGURE_2
        .replace("tag: tag", "tag: tid")
        .replace("shared int tag = 0;", "");
    let report = check(&parse(&fixed).unwrap(), &CheckOptions::default());
    assert!(report.violations.is_empty(), "{}", report.render());
    assert!(report.deadlocks.is_empty());
}

#[test]
fn figure_2_detection_is_predictive_not_schedule_dependent() {
    // HOME flags the violation under every seed, even seeds where the
    // dangerous matching never manifests — the lockset/HB point of the
    // paper.
    for seed in 0..10 {
        let report = check(
            &parse(FIGURE_2).unwrap(),
            &CheckOptions::default().with_seeds(vec![seed]),
        );
        assert!(
            report.has(ViolationKind::ConcurrentRecv),
            "seed {seed}: {}",
            report.render()
        );
    }
}

#[test]
fn unbalanced_recv_deadlock_is_diagnosed() {
    // A same-tag variant that genuinely sticks: one message, two receivers.
    let src = r#"
        program stuck {
            mpi_init_thread(multiple);
            if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
            if (rank == 1) {
                omp parallel num_threads(2) {
                    mpi_recv(from: 0, tag: 0);
                }
            }
            mpi_finalize();
        }
    "#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    assert!(!report.deadlocks.is_empty(), "must deadlock");
    let (_, info) = &report.deadlocks[0];
    assert!(info.involves("recv") || info.involves("MPI"), "{info}");
    // And the underlying same-tag violation is still reported from the
    // events recorded before the deadlock.
    assert!(
        report.has(ViolationKind::ConcurrentRecv),
        "{}",
        report.render()
    );
}
