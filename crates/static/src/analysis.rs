//! The static analysis procedure (paper Algorithm 1 plus precision hints).
//!
//! Walks the linearized CFG; between an `ompParallelBegin` and its matching
//! `ompParallelEnd`, every reachable MPI call node is marked for replacement
//! with an instrumented HMPI wrapper. Calls outside parallel regions are
//! *skipped* during instrumentation — the paper's central overhead
//! reduction, since thread-safety violations can only arise where multiple
//! threads exist.

use crate::abstract_eval::AbsEnv;
use crate::cfg::{Cfg, CfgNode, OmpRegionKind};
use crate::checklist::{Checklist, StaticCallSite, ALL_MONITORED};
use home_ir::{MpiStmt, NodeId, Program, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Classification of one parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionClass {
    /// No MPI calls inside — guaranteed free of *hybrid* violations, so the
    /// dynamic phase does not monitor it.
    ErrorFree,
    /// Contains MPI calls: candidate for runtime checking.
    PotentiallyErroneous,
}

/// Summary of one `omp parallel` region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionInfo {
    /// IR node of the `omp parallel` statement.
    pub node: NodeId,
    /// Source line.
    pub line: u32,
    /// MPI calls syntactically inside.
    pub mpi_calls: usize,
    /// Classification.
    pub class: RegionClass,
}

/// Aggregate statistics (reported by the tool and the benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticStats {
    /// All MPI call sites in the program.
    pub total_mpi_calls: usize,
    /// Sites selected for instrumentation.
    pub instrumented: usize,
    /// Sites skipped (outside hybrid regions or unreachable).
    pub skipped: usize,
    /// Sites in unreachable code.
    pub unreachable: usize,
    /// Parallel regions found.
    pub regions: usize,
    /// Regions classified error-free.
    pub error_free_regions: usize,
}

/// Full output of the static phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticReport {
    /// The instrumentation checklist.
    pub checklist: Checklist,
    /// Per-region summaries.
    pub regions: Vec<RegionInfo>,
    /// Aggregate statistics.
    pub stats: StaticStats,
}

/// Run the static phase on `program`.
///
/// ```
/// let program = home_ir::parse(
///     "program p {
///          mpi_barrier();
///          omp parallel num_threads(2) { mpi_barrier(); }
///      }",
/// )
/// .unwrap();
/// let report = home_static::analyze(&program);
/// assert_eq!(report.stats.total_mpi_calls, 2);
/// assert_eq!(report.stats.instrumented, 1, "only the in-region call");
/// ```
pub fn analyze(program: &Program) -> StaticReport {
    let env = AbsEnv::of_program(program);

    // Map statement ids to their Stmt for argument inspection.
    let mut stmt_of: HashMap<NodeId, &home_ir::Stmt> = HashMap::new();
    program.visit(&mut |s| {
        stmt_of.insert(s.id, s);
    });

    // Interprocedural context: which functions can execute inside an
    // OpenMP parallel region (called from one, directly or transitively),
    // and which functions are called at all.
    let hybrid_fns = hybrid_context_functions(program);
    let called_fns = called_functions(program);

    let mut sites = Vec::new();
    // Main body: Algorithm 1 over the linearized CFG.
    collect_sites(
        &Cfg::build_block(&program.body),
        &stmt_of,
        &env,
        false,
        true,
        &mut sites,
    );
    // Each function body, with its interprocedural context as the base.
    for func in &program.functions {
        collect_sites(
            &Cfg::build_block(&func.body),
            &stmt_of,
            &env,
            hybrid_fns.contains(func.name.as_str()),
            called_fns.contains(func.name.as_str()),
            &mut sites,
        );
    }

    // Which monitored variables does the instrumented call mix need?
    let monitored_vars = needed_monitored(&sites);

    // Region summaries from the AST (function bodies included via visit).
    // `call`s to (transitively) MPI-bearing functions count as MPI calls for
    // classification.
    let mpi_bearing = mpi_bearing_functions(program);
    let mut regions = Vec::new();
    program.visit(&mut |s| {
        if let StmtKind::OmpParallel { body, .. } = &s.kind {
            let mut mpi_calls = 0;
            fn count(stmts: &[home_ir::Stmt], bearing: &BTreeSet<&str>, n: &mut usize) {
                for s in stmts {
                    match &s.kind {
                        StmtKind::Mpi(_) => *n += 1,
                        StmtKind::Call { name } if bearing.contains(name.as_str()) => *n += 1,
                        _ => {}
                    }
                    for b in s.kind.blocks() {
                        count(b, bearing, n);
                    }
                }
            }
            count(body, &mpi_bearing, &mut mpi_calls);
            regions.push(RegionInfo {
                node: s.id,
                line: s.line,
                mpi_calls,
                class: if mpi_calls == 0 {
                    RegionClass::ErrorFree
                } else {
                    RegionClass::PotentiallyErroneous
                },
            });
        }
    });

    let stats = StaticStats {
        total_mpi_calls: sites.len(),
        instrumented: sites.iter().filter(|s| s.instrument).count(),
        skipped: sites.iter().filter(|s| !s.instrument).count(),
        unreachable: sites.iter().filter(|s| !s.reachable).count(),
        regions: regions.len(),
        error_free_regions: regions
            .iter()
            .filter(|r| r.class == RegionClass::ErrorFree)
            .count(),
    };

    StaticReport {
        checklist: Checklist {
            sites,
            monitored_vars,
        },
        regions,
        stats,
    }
}

/// Algorithm 1's linear CFG walk over one body. `base_hybrid` marks code
/// that is already in a parallel context when the body is entered (a
/// function called from a region); `body_reachable` is false for functions
/// never called.
fn collect_sites(
    cfg: &Cfg,
    stmt_of: &HashMap<NodeId, &home_ir::Stmt>,
    env: &AbsEnv,
    base_hybrid: bool,
    body_reachable: bool,
    sites: &mut Vec<StaticCallSite>,
) {
    let reachable = cfg.reachable();
    let mut depth: u32 = 0;
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    for (ix, node) in cfg.linearized() {
        match node {
            CfgNode::OmpBegin(_, OmpRegionKind::Parallel) => depth += 1,
            CfgNode::OmpEnd(_, OmpRegionKind::Parallel) => depth -= 1,
            CfgNode::Stmt(id) => {
                if seen.contains(id) {
                    continue; // if-join duplicates
                }
                let stmt = stmt_of[id];
                if let StmtKind::Mpi(call) = &stmt.kind {
                    seen.insert(*id);
                    let is_reachable = reachable[ix] && body_reachable;
                    let in_hybrid = depth > 0 || base_hybrid;
                    let (tag, peer) = call_args(call);
                    sites.push(StaticCallSite {
                        node: *id,
                        line: stmt.line,
                        name: call.name().to_string(),
                        in_hybrid_region: in_hybrid,
                        reachable: is_reachable,
                        instrument: in_hybrid && is_reachable,
                        is_collective: call.is_collective(),
                        tag_thread_distinct: tag.map(|e| env.is_thread_distinct(e)),
                        peer_thread_distinct: peer.map(|e| env.is_thread_distinct(e)),
                        init_level: match call {
                            MpiStmt::Init => Some(home_ir::IrThreadLevel::Single),
                            MpiStmt::InitThread { required } => Some(*required),
                            _ => None,
                        },
                    });
                }
            }
            _ => {}
        }
    }
    debug_assert_eq!(depth, 0, "unbalanced parallel markers");
}

/// Collect `(in_parallel, callee)` pairs from a block, for the call graph.
fn collect_calls(stmts: &[home_ir::Stmt], depth: u32, out: &mut Vec<(bool, String)>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Call { name } => out.push((depth > 0, name.clone())),
            StmtKind::OmpParallel { body, .. } => collect_calls(body, depth + 1, out),
            other => {
                for b in other.blocks() {
                    collect_calls(b, depth, out);
                }
            }
        }
    }
}

/// Functions that can execute in a parallel context: called from inside a
/// region (anywhere), or called (anywhere) by such a function — a standard
/// call-graph fixpoint.
fn hybrid_context_functions(program: &Program) -> BTreeSet<&str> {
    let mut hybrid: BTreeSet<&str> = BTreeSet::new();
    loop {
        let mut changed = false;
        // Main body.
        let mut calls = Vec::new();
        collect_calls(&program.body, 0, &mut calls);
        for (in_par, callee) in &calls {
            if *in_par {
                if let Some(f) = program.function(callee) {
                    changed |= hybrid.insert(f.name.as_str());
                }
            }
        }
        // Function bodies.
        for func in &program.functions {
            let base = hybrid.contains(func.name.as_str());
            let mut calls = Vec::new();
            collect_calls(&func.body, 0, &mut calls);
            for (in_par, callee) in calls {
                if (in_par || base) && program.function(&callee).is_some() {
                    let callee_ref = program.function(&callee).unwrap();
                    changed |= hybrid.insert(callee_ref.name.as_str());
                }
            }
        }
        if !changed {
            return hybrid;
        }
    }
}

/// Functions whose bodies (transitively) contain MPI calls.
fn mpi_bearing_functions(program: &Program) -> BTreeSet<&str> {
    fn has_direct_mpi(stmts: &[home_ir::Stmt]) -> bool {
        stmts.iter().any(|s| {
            matches!(s.kind, StmtKind::Mpi(_)) || s.kind.blocks().iter().any(|b| has_direct_mpi(b))
        })
    }
    fn calls_in(stmts: &[home_ir::Stmt], out: &mut Vec<String>) {
        for s in stmts {
            if let StmtKind::Call { name } = &s.kind {
                out.push(name.clone());
            }
            for b in s.kind.blocks() {
                calls_in(b, out);
            }
        }
    }
    let mut bearing: BTreeSet<&str> = program
        .functions
        .iter()
        .filter(|f| has_direct_mpi(&f.body))
        .map(|f| f.name.as_str())
        .collect();
    loop {
        let mut changed = false;
        for func in &program.functions {
            if bearing.contains(func.name.as_str()) {
                continue;
            }
            let mut calls = Vec::new();
            calls_in(&func.body, &mut calls);
            if calls.iter().any(|c| bearing.contains(c.as_str())) {
                bearing.insert(func.name.as_str());
                changed = true;
            }
        }
        if !changed {
            return bearing;
        }
    }
}

/// Functions reachable through `call` statements from the main body.
fn called_functions(program: &Program) -> BTreeSet<&str> {
    let mut called: BTreeSet<&str> = BTreeSet::new();
    let mut work: Vec<&[home_ir::Stmt]> = vec![&program.body];
    while let Some(stmts) = work.pop() {
        let mut calls = Vec::new();
        collect_calls(stmts, 0, &mut calls);
        for (_, callee) in calls {
            if let Some(f) = program.function(&callee) {
                if called.insert(f.name.as_str()) {
                    work.push(&f.body);
                }
            }
        }
    }
    called
}

/// (tag expr, peer expr) of a call, when present.
fn call_args(call: &MpiStmt) -> (Option<&home_ir::Expr>, Option<&home_ir::Expr>) {
    match call {
        MpiStmt::Send { dest, tag, .. }
        | MpiStmt::Ssend { dest, tag, .. }
        | MpiStmt::Isend { dest, tag, .. } => (Some(tag), Some(dest)),
        MpiStmt::Recv { src, tag, .. }
        | MpiStmt::Irecv { src, tag, .. }
        | MpiStmt::Probe { src, tag, .. }
        | MpiStmt::Iprobe { src, tag, .. } => (Some(tag), Some(src)),
        _ => (None, None),
    }
}

fn needed_monitored(sites: &[StaticCallSite]) -> Vec<String> {
    let instrumented: Vec<&StaticCallSite> = sites.iter().filter(|s| s.instrument).collect();
    let mut vars = BTreeSet::new();
    for s in &instrumented {
        match s.name.as_str() {
            "mpi_send" | "mpi_ssend" | "mpi_recv" | "mpi_isend" | "mpi_irecv" | "mpi_probe"
            | "mpi_iprobe" => {
                vars.insert("srctmp");
                vars.insert("tagtmp");
                vars.insert("commtmp");
            }
            "mpi_wait" | "mpi_test" | "mpi_waitall" => {
                vars.insert("requesttmp");
            }
            "mpi_finalize" => {
                vars.insert("finalizetmp");
            }
            _ if s.is_collective => {
                vars.insert("collectivetmp");
                vars.insert("commtmp");
            }
            _ => {}
        }
    }
    // Keep the paper's canonical order.
    ALL_MONITORED
        .iter()
        .filter(|v| vars.contains(*v))
        .map(|v| v.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_ir::parse;

    #[test]
    fn calls_outside_regions_are_skipped() {
        let p = parse(
            r#"
            program filter {
                mpi_init_thread(multiple);
                mpi_barrier();
                omp parallel num_threads(2) {
                    mpi_send(to: 1, tag: 0, count: 1);
                }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.total_mpi_calls, 4);
        assert_eq!(r.stats.instrumented, 1);
        assert_eq!(r.stats.skipped, 3);
        let send = r
            .checklist
            .sites
            .iter()
            .find(|s| s.name == "mpi_send")
            .unwrap();
        assert!(send.instrument);
        assert!(send.in_hybrid_region);
        let bar = r
            .checklist
            .sites
            .iter()
            .find(|s| s.name == "mpi_barrier")
            .unwrap();
        assert!(!bar.instrument);
    }

    #[test]
    fn nested_constructs_inside_parallel_still_count() {
        let p = parse(
            r#"
            program nest {
                omp parallel {
                    if (rank == 0) {
                        omp critical(c) { mpi_recv(from: any, tag: any); }
                    }
                    omp sections {
                        section { mpi_send(to: 1, tag: 0, count: 1); }
                    }
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.instrumented, 2);
    }

    #[test]
    fn region_classification() {
        let p = parse(
            r#"
            program regions {
                omp parallel { compute(100); }
                omp parallel { mpi_barrier(); }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.regions, 2);
        assert_eq!(r.stats.error_free_regions, 1);
        assert_eq!(r.regions[0].class, RegionClass::ErrorFree);
        assert_eq!(r.regions[1].class, RegionClass::PotentiallyErroneous);
        assert_eq!(r.regions[1].mpi_calls, 1);
    }

    #[test]
    fn thread_distinct_tags_are_flagged() {
        let p = parse(
            r#"
            program tags {
                omp parallel {
                    mpi_send(to: 1, tag: tid, count: 1);
                    mpi_send(to: 1, tag: 7, count: 1);
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        let tags: Vec<Option<bool>> = r
            .checklist
            .sites
            .iter()
            .map(|s| s.tag_thread_distinct)
            .collect();
        assert_eq!(tags, vec![Some(true), Some(false)]);
    }

    #[test]
    fn monitored_vars_follow_call_mix() {
        let p = parse(
            r#"
            program mix {
                omp parallel {
                    mpi_recv(from: any, tag: any);
                    mpi_wait(req: r);
                    mpi_barrier();
                    mpi_finalize();
                }
            }
            "#,
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.checklist.monitored_vars,
            vec![
                "srctmp",
                "tagtmp",
                "commtmp",
                "requesttmp",
                "collectivetmp",
                "finalizetmp"
            ]
        );
    }

    #[test]
    fn p2p_only_program_needs_only_envelope_vars() {
        let p = parse("program p { omp parallel { mpi_send(to: 1, tag: 0, count: 1); } }").unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.checklist.monitored_vars,
            vec!["srctmp", "tagtmp", "commtmp"]
        );
    }

    #[test]
    fn init_levels_are_recorded() {
        let p =
            parse("program i { mpi_init(); omp parallel { mpi_send(to: 1, tag: 0, count: 1); } }")
                .unwrap();
        let r = analyze(&p);
        let init = r
            .checklist
            .sites
            .iter()
            .find(|s| s.name == "mpi_init")
            .unwrap();
        assert_eq!(init.init_level, Some(home_ir::IrThreadLevel::Single));
    }

    #[test]
    fn empty_program_is_clean() {
        let p = parse("program e { }").unwrap();
        let r = analyze(&p);
        assert_eq!(r.stats.total_mpi_calls, 0);
        assert!(r.checklist.monitored_vars.is_empty());
        assert_eq!(r.stats.regions, 0);
    }
}
