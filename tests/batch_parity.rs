//! Batch-feed parity: the amortized batch pipeline — `consume_batch` on
//! the streaming detector, `feed_batch` on the session, and the
//! batch-at-a-time section analyzers — must be observably byte-identical
//! to the event-at-a-time paths for every bundled program, every seed,
//! and every batch granularity (single event, small odd chunks, large
//! chunks, and whole-section feeds).

use home::prelude::*;
use home::serve::{analyze_sections_batched, analyze_stream};
use home::stream::{detect_stream_batched, HbtWriter, TraceIncident};
use std::sync::Arc;

/// Every bundled sample program, in stable name order.
fn programs() -> Vec<(String, Program)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir("programs").unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "hmp") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).unwrap();
            out.push((name, parse(&src).unwrap()));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!out.is_empty(), "no bundled programs found");
    out
}

/// Record one instrumented run of `program` under `seed`.
fn recorded(program: &Program, seed: u64) -> home::interp::RunResult {
    let checklist = Arc::new(analyze(program).checklist.clone());
    let mut cfg = RunConfig::test(2, seed)
        .with_instrumentation(Instrumentation::home())
        .with_checklist(checklist);
    cfg.threads_per_proc = 2;
    run(program, &cfg)
}

/// The batch granularities under test: single event, a small odd chunk
/// that never divides a section evenly, a large chunk, and the whole
/// trace in one feed (`0` selects the whole-trace/whole-section path).
const BATCHES: [usize; 4] = [1, 7, 256, 0];

/// Detector-level parity: `consume_batch` run-length rank grouping must
/// reproduce the event-at-a-time streaming verdict — races and stats —
/// for every program, seed, and batch size.
#[test]
fn detect_stream_batched_matches_detect_stream_on_every_program() {
    let config = DetectorConfig::hybrid();
    for (name, program) in &programs() {
        for seed in [1u64, 2, 3] {
            let result = recorded(program, seed);
            let (baseline, base_stats) = detect_stream(&result.trace, &config).unwrap();
            for batch in BATCHES {
                let (races, stats) = detect_stream_batched(&result.trace, &config, batch).unwrap();
                assert_eq!(
                    format!("{baseline:?}"),
                    format!("{races:?}"),
                    "{name} seed {seed} batch {batch}: races must be byte-identical"
                );
                assert_eq!(
                    base_stats.events, stats.events,
                    "{name} seed {seed} batch {batch}: every event must be counted"
                );
            }
        }
    }
}

/// Cross-engine closure: the batch-fed streaming detector still matches
/// the offline batch detector (the original acceptance bar), so batching
/// cannot open a gap between the two engines.
#[test]
fn detect_stream_batched_matches_offline_detect() {
    let config = DetectorConfig::hybrid();
    for (name, program) in &programs() {
        let result = recorded(program, 1);
        let offline = detect(&result.trace, &config).unwrap();
        for batch in BATCHES {
            let (races, _) = detect_stream_batched(&result.trace, &config, batch).unwrap();
            assert_eq!(
                format!("{offline:?}"),
                format!("{races:?}"),
                "{name} batch {batch}: batch-fed stream vs offline detect"
            );
        }
    }
}

/// Session-level parity through the collector analyzers: for every
/// program, the record-at-a-time `analyze_stream` verdict (the original
/// ingest path) equals `analyze_sections_batched` at every granularity,
/// including the whole-section default (`None`).
#[test]
fn analyze_sections_batched_matches_record_at_a_time_ingest() {
    for (name, program) in &programs() {
        let mut writer = HbtWriter::new(Vec::new()).unwrap();
        for seed in [1u64, 2] {
            writer.begin_run(seed).unwrap();
            let result = recorded(program, seed);
            for e in result.trace.events() {
                writer.write_event(e).unwrap();
            }
            for i in &result.mpi_errors {
                writer
                    .write_incident(&TraceIncident {
                        rank: i.rank,
                        line: i.line,
                        call: i.call.clone(),
                        error: i.error.clone(),
                    })
                    .unwrap();
            }
        }
        let bytes = writer.finish().unwrap();
        let baseline = analyze_stream(std::io::Cursor::new(&bytes)).unwrap();
        let sections = home::stream::decode_sections(&bytes).unwrap();
        for batch in [Some(1), Some(7), Some(256), None] {
            let outcome = analyze_sections_batched(&sections, batch).unwrap();
            assert_eq!(
                format!("{baseline:?}"),
                format!("{outcome:?}"),
                "{name} batch {batch:?}: collector outcome must be byte-identical"
            );
        }
    }
}

/// Frame-batch decode parity end to end: a compressed v2 stream decoded
/// through `decode_trace` (the frame→batch path at every `--jobs` value)
/// and analyzed batch-wise reaches the record-at-a-time verdict.
#[test]
fn v2_frame_batch_replay_matches_record_at_a_time_ingest() {
    let (name, program) = &programs()[0];
    let mut writer = HbtWriter::new_compressed(Vec::new()).unwrap();
    for seed in [1u64, 2, 3] {
        writer.begin_run(seed).unwrap();
        let result = recorded(program, seed);
        for e in result.trace.events() {
            writer.write_event(e).unwrap();
        }
    }
    let bytes = writer.finish().unwrap();
    let baseline = analyze_stream(std::io::Cursor::new(&bytes)).unwrap();
    for jobs in [1usize, 2, 4] {
        let sections = home::core::decode_trace(&bytes, jobs).unwrap();
        for batch in [Some(1), Some(7), None] {
            let outcome = analyze_sections_batched(&sections, batch).unwrap();
            assert_eq!(
                format!("{baseline:?}"),
                format!("{outcome:?}"),
                "{name} jobs {jobs} batch {batch:?}: v2 replay verdict"
            );
        }
    }
}
