//! In-process tests of the `home serve` daemon: concurrent multi-tenant
//! ingest, verdict parity with the offline analyzers, typed rejection of
//! hostile streams, and clean shutdown.

use home::prelude::*;
use home::serve::{analyze_sections, ping, status, stop, submit, ServeConfig, Server};
use home::stream::{decode_sections, HbtWriter};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Barrier};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

/// Record `programs/figure2.hmp` under `seeds`, exactly like `home record`.
fn recorded_trace(seeds: &[u64]) -> Vec<u8> {
    let source = std::fs::read_to_string("programs/figure2.hmp").expect("sample program");
    let program = parse(&source).expect("sample program parses");
    let checklist = Arc::new(analyze(&program).checklist.clone());
    let mut writer = HbtWriter::new(Vec::new()).expect("header write");
    for &seed in seeds {
        writer.begin_run(seed).expect("run record");
        let mut cfg = RunConfig::test(2, seed)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(Arc::clone(&checklist));
        cfg.threads_per_proc = 2;
        cfg.sched.policy = SchedPolicy::Random;
        let result = run(&program, &cfg);
        for e in result.trace.events() {
            writer.write_event(e).expect("event record");
        }
        for i in &result.mpi_errors {
            writer
                .write_incident(&home::stream::TraceIncident {
                    rank: i.rank,
                    line: i.line,
                    call: i.call.clone(),
                    error: i.error.clone(),
                })
                .expect("incident record");
        }
    }
    writer.finish().expect("trailer write")
}

fn start_server(config: ServeConfig) -> (std::path::PathBuf, std::thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind serve socket");
    let socket = server.socket_path().to_path_buf();
    let handle = std::thread::spawn(move || server.run().expect("serve run"));
    (socket, handle)
}

#[test]
fn eight_concurrent_submissions_match_the_offline_verdict() {
    let dir = tmp_dir("serve_concurrent");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);

    // max_sessions = 2 with 8 concurrent clients: the gate must make the
    // excess block (backpressure), never drop or reject them.
    let mut config = ServeConfig::new(&socket_path);
    config.max_sessions = 2;
    let (socket, server) = start_server(config);

    let trace = recorded_trace(&[1, 2]);
    let expected = analyze_sections(&decode_sections(&trace).expect("trace decodes"))
        .expect("offline analyze");
    let expected_lines: Vec<String> = expected.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        !expected_lines.is_empty(),
        "figure2 must produce violations for the parity check to bite"
    );

    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut handles = Vec::new();
    for _ in 0..CLIENTS {
        let socket = socket.clone();
        let trace = trace.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            submit(&socket, &trace)
        }));
    }
    for handle in handles {
        let reply = handle
            .join()
            .expect("client thread")
            .expect("submit succeeds");
        assert!(
            reply.ok,
            "daemon rejected a well-formed trace: {:?}",
            reply.error
        );
        assert_eq!(reply.runs, 2, "one verdict covers both recorded runs");
        assert_eq!(
            reply.violations, expected_lines,
            "daemon verdict differs from the offline analyzer"
        );
    }

    let fleet = status(&socket).expect("status");
    assert!(fleet.ok);
    assert_eq!(fleet.runs, CLIENTS as u64 * 2, "fleet run count");
    assert!(
        fleet.raw.contains("\"submissions\":8"),
        "fleet submissions: {}",
        fleet.raw
    );
    // Every violation was seen by every submission.
    assert!(
        fleet.raw.contains("\"runs\":16") || fleet.raw.contains("\"runs\":8"),
        "aggregated per-violation run counts: {}",
        fleet.raw
    );

    let reply = stop(&socket).expect("stop");
    assert!(reply.ok);
    server.join().expect("server thread");
    assert!(!socket.exists(), "socket file removed on shutdown");
}

#[test]
fn hostile_streams_get_typed_errors_and_the_daemon_survives() {
    let dir = tmp_dir("serve_hostile");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    // Garbage after a valid magic byte: typed rejection.
    let reply = submit(&socket, b"\x89garbage-not-hbt").expect("reply arrives");
    assert!(!reply.ok);
    assert!(
        reply.error.as_deref().unwrap_or("").contains("HBT"),
        "rejection names the format: {:?}",
        reply.error
    );

    // A trace truncated mid-record: typed rejection, not a hang or panic.
    let trace = recorded_trace(&[1]);
    let reply = submit(&socket, &trace[..trace.len() / 2]).expect("reply arrives");
    assert!(!reply.ok, "truncated stream must be rejected");
    assert!(reply.error.is_some());

    // A client that connects and immediately disappears costs nothing.
    drop(UnixStream::connect(&socket).expect("connect"));

    // The daemon is still alive and counted the rejections.
    let alive = ping(&socket).expect("ping");
    assert!(alive.ok);
    let fleet = status(&socket).expect("status");
    assert!(
        fleet.raw.contains("\"rejected\":2"),
        "rejections are counted: {}",
        fleet.raw
    );

    // A well-formed submission still works after the abuse.
    let reply = submit(&socket, &trace).expect("submit");
    assert!(reply.ok);
    assert_eq!(reply.runs, 1);

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}

#[test]
fn unknown_commands_are_rejected_politely() {
    let dir = tmp_dir("serve_commands");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream.write_all(b"BOGUS\n").expect("send command");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("reply");
    assert!(line.contains("\"ok\":false"), "reply: {line}");
    assert!(line.contains("unknown command"), "reply: {line}");

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}

#[test]
fn bind_recovers_stale_sockets_but_respects_live_daemons() {
    let dir = tmp_dir("serve_bind");
    let socket_path = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket_path);

    // A stale socket file (no daemon behind it) is silently reclaimed.
    {
        let server = Server::bind(ServeConfig::new(&socket_path)).expect("first bind");
        drop(server); // never ran: socket file left behind
    }
    assert!(socket_path.exists(), "stale socket file left behind");
    let (socket, server) = start_server(ServeConfig::new(&socket_path));

    // A second daemon on the same live socket is refused.
    let err = Server::bind(ServeConfig::new(&socket_path)).expect_err("live socket is claimed");
    assert!(
        err.to_string().contains("already serving"),
        "unexpected error: {err}"
    );

    stop(&socket).expect("stop");
    server.join().expect("server thread");
}
