//! Deadlock reports.

use crate::state::BlockReason;
use crate::vtid::Vtid;
use std::fmt;

/// One blocked thread in a deadlock report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedThread {
    /// The blocked virtual thread.
    pub vtid: Vtid,
    /// Its human-readable name (as given at spawn).
    pub name: String,
    /// Why it was blocked.
    pub reason: BlockReason,
}

impl fmt::Display for BlockedThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) blocked on {}",
            self.name, self.vtid, self.reason
        )
    }
}

/// A whole-system deadlock: every live virtual thread was blocked.
///
/// Produced by the deterministic scheduler and surfaced through
/// [`crate::SchedError::Deadlock`] to every blocked thread. The HOME
/// pipeline converts this into a diagnosis (e.g. the Figure 2 case study
/// deadlocks when both threads of rank 1 block in `MPI_Recv` on the same
/// tag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockInfo {
    /// All threads that were blocked when the deadlock was declared.
    pub blocked: Vec<BlockedThread>,
    /// Scheduling step at which the deadlock was declared.
    pub step: u64,
}

impl DeadlockInfo {
    /// Names of all blocked threads, for quick assertions in tests.
    pub fn blocked_names(&self) -> Vec<&str> {
        self.blocked.iter().map(|b| b.name.as_str()).collect()
    }

    /// True if some blocked thread's reason description contains `needle`.
    pub fn involves(&self, needle: &str) -> bool {
        self.blocked
            .iter()
            .any(|b| b.reason.to_string().contains(needle) || b.name.contains(needle))
    }
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} thread(s) blocked at step {}: ",
            self.blocked.len(),
            self.step
        )?;
        for (i, b) in self.blocked.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeadlockInfo {
        DeadlockInfo {
            blocked: vec![
                BlockedThread {
                    vtid: Vtid::from_index(0),
                    name: "rank0.t1".into(),
                    reason: BlockReason::Message("MPI_Recv(src=1, tag=0)".into()),
                },
                BlockedThread {
                    vtid: Vtid::from_index(1),
                    name: "rank1.t0".into(),
                    reason: BlockReason::Message("MPI_Recv(src=0, tag=0)".into()),
                },
            ],
            step: 42,
        }
    }

    #[test]
    fn display_mentions_all() {
        let s = sample().to_string();
        assert!(s.contains("rank0.t1"));
        assert!(s.contains("rank1.t0"));
        assert!(s.contains("step 42"));
    }

    #[test]
    fn involves_matches_reason_and_name() {
        let d = sample();
        assert!(d.involves("MPI_Recv"));
        assert!(d.involves("rank1"));
        assert!(!d.involves("MPI_Send"));
    }

    #[test]
    fn blocked_names() {
        assert_eq!(sample().blocked_names(), vec!["rank0.t1", "rank1.t0"]);
    }
}
