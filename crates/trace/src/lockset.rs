//! Lock sets for the Eraser-style analysis.

use crate::ids::LockId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of locks, kept as a small sorted vector (lock sets are tiny in
/// practice — a handful of critical sections at most).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LockSet {
    locks: Vec<LockId>,
}

impl LockSet {
    /// The empty lock set.
    pub fn new() -> Self {
        LockSet::default()
    }

    /// Insert a lock; returns true if newly added.
    pub fn insert(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(_) => false,
            Err(pos) => {
                self.locks.insert(pos, lock);
                true
            }
        }
    }

    /// Remove a lock; returns true if it was present.
    pub fn remove(&mut self, lock: LockId) -> bool {
        match self.locks.binary_search(&lock) {
            Ok(pos) => {
                self.locks.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, lock: LockId) -> bool {
        self.locks.binary_search(&lock).is_ok()
    }

    /// Set intersection (the candidate-lockset refinement step of Eraser).
    pub fn intersect(&self, other: &LockSet) -> LockSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.locks[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        LockSet { locks: out }
    }

    /// True if the intersection with `other` is empty — the Eraser race
    /// condition on two conflicting accesses.
    pub fn disjoint(&self, other: &LockSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.locks.len() && j < other.locks.len() {
            match self.locks[i].cmp(&other.locks[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Number of locks held.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if no locks are held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Iterate the locks in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = LockId> + '_ {
        self.locks.iter().copied()
    }
}

impl FromIterator<LockId> for LockSet {
    fn from_iter<I: IntoIterator<Item = LockId>>(iter: I) -> Self {
        let mut ls = LockSet::new();
        for l in iter {
            ls.insert(l);
        }
        ls
    }
}

impl fmt::Display for LockSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LockId {
        LockId(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut ls = LockSet::new();
        assert!(ls.insert(l(2)));
        assert!(ls.insert(l(1)));
        assert!(!ls.insert(l(2)), "duplicate insert is a no-op");
        assert!(ls.contains(l(1)));
        assert_eq!(ls.len(), 2);
        assert!(ls.remove(l(1)));
        assert!(!ls.remove(l(1)));
        assert!(!ls.contains(l(1)));
    }

    #[test]
    fn intersection() {
        let a = LockSet::from_iter([l(1), l(2), l(3)]);
        let b = LockSet::from_iter([l(2), l(3), l(4)]);
        let i = a.intersect(&b);
        assert_eq!(i, LockSet::from_iter([l(2), l(3)]));
        assert!(!a.disjoint(&b));
    }

    #[test]
    fn disjointness() {
        let a = LockSet::from_iter([l(1), l(3)]);
        let b = LockSet::from_iter([l(2), l(4)]);
        assert!(a.disjoint(&b));
        assert!(a.intersect(&b).is_empty());
        assert!(
            LockSet::new().disjoint(&a),
            "empty set is disjoint from all"
        );
    }

    #[test]
    fn display() {
        let a = LockSet::from_iter([l(2), l(0)]);
        assert_eq!(a.to_string(), "{lock0, lock2}");
    }
}
