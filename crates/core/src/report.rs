//! Violation and report types.

use home_dynamic::Race;
use home_interp::MpiIncident;
use home_sched::DeadlockInfo;
use home_static::{CandidateKind, StaticCandidate, StaticStats};
use home_trace::{Rank, SrcLoc, Tid};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six thread-safety violation classes of the paper's Section III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ViolationKind {
    /// `isInitializationViolation` — MPI used from threads in a way the
    /// initialized thread level forbids.
    Initialization,
    /// `isMPIFinalizationViolation` — finalize off the main thread, after
    /// pending communication, or concurrently with other calls.
    Finalization,
    /// `isConcurrentRecvViolation` — concurrent receives on one process
    /// whose source/tag/communicator do not differentiate the messages.
    ConcurrentRecv,
    /// `isConcurrentRequestViolation` — `MPI_Wait`/`MPI_Test` on the same
    /// request from two threads.
    ConcurrentRequest,
    /// `isProbeViolation` — concurrent probe vs probe/receive with the same
    /// envelope on one communicator.
    Probe,
    /// `isCollectiveCallViolation` — one communicator used concurrently by
    /// collective calls from threads of the same process.
    CollectiveCall,
}

impl ViolationKind {
    /// All six, in the paper's order.
    pub const ALL: [ViolationKind; 6] = [
        ViolationKind::Initialization,
        ViolationKind::Finalization,
        ViolationKind::ConcurrentRecv,
        ViolationKind::ConcurrentRequest,
        ViolationKind::Probe,
        ViolationKind::CollectiveCall,
    ];

    /// The paper's predicate name.
    pub fn predicate(self) -> &'static str {
        match self {
            ViolationKind::Initialization => "isInitializationViolation",
            ViolationKind::Finalization => "isMPIFinalizationViolation",
            ViolationKind::ConcurrentRecv => "isConcurrentRecvViolation",
            ViolationKind::ConcurrentRequest => "isConcurrentRequestViolation",
            ViolationKind::Probe => "isProbeViolation",
            ViolationKind::CollectiveCall => "isCollectiveCallViolation",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.predicate())
    }
}

/// One detected thread-safety violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Violation class.
    pub kind: ViolationKind,
    /// The MPI process it occurred on.
    pub rank: Rank,
    /// Human-readable explanation.
    pub description: String,
    /// Source locations involved (deduplicated, sorted).
    pub locations: Vec<SrcLoc>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}: {}", self.kind, self.rank, self.description)?;
        if !self.locations.is_empty() {
            write!(f, " [")?;
            for (i, l) in self.locations.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// The deduplication key for a [`Violation`]: two violations with the same
/// kind, rank, and location set are the same finding, regardless of which
/// seed or schedule surfaced them. Used by the batch pipeline's cross-seed
/// merge, the serve daemon's cross-section merge, and the exploration
/// engine's cross-schedule aggregation.
pub type ViolationIdentity = (ViolationKind, Rank, Vec<SrcLoc>);

/// The [`ViolationIdentity`] of `v`.
pub fn violation_identity(v: &Violation) -> ViolationIdentity {
    (v.kind, v.rank, v.locations.clone())
}

/// Deterministic position of one emission in the canonical (batch) rule
/// evaluation order.
///
/// The online rule engine emits violations the moment their evidence is
/// complete, which interleaves rules temporally; the batch report lists
/// them rule-major. Every emission therefore carries the key it *would*
/// have in the batch order — `(rule, stage, major, minor)` compared
/// lexicographically — so sorting a seed's emissions by key and keeping
/// the first of each `(kind, rank, locations)` reproduces the batch
/// violation list exactly (parity-test-enforced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EmitOrder {
    /// Rule index in the paper's order (0 = initialization … 5 = collective).
    pub rule: u8,
    /// Sub-stage within the rule (e.g. finalization: 0 = off-main-thread
    /// finalize, 1 = call-after-finalize incident, 2 = concurrent finalize).
    pub stage: u8,
    /// Primary position within the stage: the rank for per-rank and
    /// per-race stages, the evidence index for incident/finalize stages.
    pub major: u64,
    /// Secondary position: the per-rank race discovery index for race
    /// stages, 0 elsewhere.
    pub minor: u64,
}

impl EmitOrder {
    /// Construct a key (stages and indices documented on the fields).
    pub fn new(rule: u8, stage: u8, major: u64, minor: u64) -> EmitOrder {
        EmitOrder {
            rule,
            stage,
            major,
            minor,
        }
    }
}

/// One violation as produced by the online rule engine, with full
/// provenance: which seed's run it came from, which threads were involved,
/// where it sits in the canonical order, and whether it was emitted live
/// (from an `observe_*` call, before the run finished) or by the engine's
/// end-of-seed `finish` pass (rules that need whole-run evidence, such as
/// the `MPI_THREAD_SINGLE` call count).
#[derive(Debug, Clone, PartialEq)]
pub struct EmittedViolation {
    /// Scheduler seed of the run that produced the evidence.
    pub seed: u64,
    /// Position in the canonical batch evaluation order.
    pub order: EmitOrder,
    /// True when emitted from an `observe_*` call while evidence was still
    /// arriving; false for emissions completed only by `finish`.
    pub live: bool,
    /// OpenMP threads involved in the evidence (both sides of a race, the
    /// offending thread of a misplaced call), when known.
    pub threads: Vec<Tid>,
    /// The classified violation.
    pub violation: Violation,
}

impl fmt::Display for EmittedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[seed {}] {}", self.seed, self.violation)?;
        if !self.threads.is_empty() {
            write!(f, " (")?;
            for (i, t) in self.threads.iter().enumerate() {
                if i > 0 {
                    write!(f, " vs ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// What happened to one scheduler seed's simulate→detect→match chain.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedStatus {
    /// The chain completed and its results are merged into the report.
    Ok {
        /// Instrumentation events the run recorded.
        events: u64,
        /// Monitored-variable races the dynamic phase found.
        races: usize,
        /// Violations matched (before cross-seed deduplication).
        violations: usize,
    },
    /// The chain panicked or returned a typed error; its results are
    /// missing from the report and [`HomeReport::partial`] is set.
    Failed {
        /// Failure description (panic payload or error message).
        error: String,
    },
}

/// Per-seed status entry, in seed-list order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRun {
    /// The scheduler seed.
    pub seed: u64,
    /// How its chain ended.
    pub status: SeedStatus,
}

impl SeedRun {
    /// Did this seed's chain complete?
    pub fn is_ok(&self) -> bool {
        matches!(self.status, SeedStatus::Ok { .. })
    }
}

/// Outcome of cross-checking one static candidate against the dynamic
/// findings of the same check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStatus {
    /// The dynamic phase produced a matching finding.
    Confirmed,
    /// No checked schedule reproduced the candidate: either a static
    /// false positive, or a schedule-dependent issue the seed set missed.
    NotReproduced,
}

impl CandidateStatus {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CandidateStatus::Confirmed => "confirmed",
            CandidateStatus::NotReproduced => "not reproduced",
        }
    }
}

/// One static candidate with its cross-check verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateOutcome {
    /// The static phase's warning.
    pub candidate: StaticCandidate,
    /// What the dynamic phase made of it.
    pub status: CandidateStatus,
}

/// Does candidate `c` cover violation `v` (same predicate, same line)?
fn covers(c: &StaticCandidate, v: &Violation) -> bool {
    c.violation_hint.as_deref() == Some(v.kind.predicate())
        && v.locations.iter().any(|l| l.line == c.line)
}

/// Final output of a HOME check: merged violations plus supporting data.
#[derive(Debug, Default)]
pub struct HomeReport {
    /// Deduplicated violations across all checked schedules.
    pub violations: Vec<Violation>,
    /// Raw concurrency results on monitored variables (the dynamic phase's
    /// output before rule matching).
    pub races: Vec<Race>,
    /// Monitored-variable races the rules could not classify because one or
    /// both accesses carry no MPI call record (degraded diagnostics, not
    /// violations — see `home_core::RuleOutcome`).
    pub unclassified: Vec<Race>,
    /// Static-phase statistics.
    pub static_stats: StaticStats,
    /// Deadlocks observed, with the seed that produced them.
    pub deadlocks: Vec<(u64, DeadlockInfo)>,
    /// Non-fatal MPI misuse incidents across runs.
    pub incidents: Vec<MpiIncident>,
    /// Per-seed status, one entry per requested seed in seed-list order.
    pub seed_runs: Vec<SeedRun>,
    /// True when at least one seed's chain failed: the report covers only
    /// the seeds that completed. `home check` exits with code 3.
    pub partial: bool,
    /// Number of schedules executed (completed seeds only).
    pub runs: usize,
    /// Total instrumentation events recorded across runs.
    pub total_events: u64,
    /// Static candidates with their cross-check verdicts (empty unless
    /// [`HomeReport::cross_check`] ran).
    pub candidates: Vec<CandidateOutcome>,
    /// Violations no static candidate covered: purely dynamic findings.
    pub dynamic_only: Vec<Violation>,
    /// True when this report went through a static-vs-dynamic cross-check
    /// (replay/ingest reports have no static phase and stay false).
    pub cross_checked: bool,
}

impl HomeReport {
    /// Is a violation of `kind` present?
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }

    /// Violations of one kind.
    pub fn of_kind(&self, kind: ViolationKind) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.kind == kind).collect()
    }

    /// Distinct violation kinds found.
    pub fn kinds(&self) -> Vec<ViolationKind> {
        let mut ks: Vec<ViolationKind> = self.violations.iter().map(|v| v.kind).collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    /// Cross-check the static phase's candidates against this report's
    /// dynamic findings: each candidate becomes confirmed (a matching
    /// dynamic finding exists) or not-reproduced, and violations no
    /// candidate predicted are collected as dynamic-only.
    ///
    /// A deadlock candidate is confirmed by any observed deadlock; an
    /// unprotected-write candidate by a violation whose predicate matches
    /// the candidate's hint at the candidate's line.
    pub fn cross_check(&mut self, candidates: &[StaticCandidate]) {
        self.cross_checked = true;
        self.candidates = candidates
            .iter()
            .map(|c| {
                let confirmed = match c.kind {
                    CandidateKind::PotentialDeadlock => !self.deadlocks.is_empty(),
                    CandidateKind::UnprotectedMonitoredWrite => {
                        self.violations.iter().any(|v| covers(c, v))
                    }
                };
                CandidateOutcome {
                    candidate: c.clone(),
                    status: if confirmed {
                        CandidateStatus::Confirmed
                    } else {
                        CandidateStatus::NotReproduced
                    },
                }
            })
            .collect();
        self.dynamic_only = self
            .violations
            .iter()
            .filter(|v| !candidates.iter().any(|c| covers(c, v)))
            .cloned()
            .collect();
    }

    /// Render the final report as text (what the tool prints).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "=== HOME thread-safety report ===");
        let _ = writeln!(
            out,
            "static: {} MPI call sites, {} instrumented, {} skipped ({} regions, {} error-free)",
            self.static_stats.total_mpi_calls,
            self.static_stats.instrumented,
            self.static_stats.skipped,
            self.static_stats.regions,
            self.static_stats.error_free_regions,
        );
        let _ = writeln!(
            out,
            "dynamic: {} schedule(s), {} events, {} monitored-variable race(s)",
            self.runs,
            self.total_events,
            self.races.len()
        );
        if !self.seed_runs.is_empty() {
            let ok = self.seed_runs.iter().filter(|r| r.is_ok()).count();
            let _ = writeln!(out, "seeds: {ok} ok, {} failed", self.seed_runs.len() - ok);
            for r in &self.seed_runs {
                match &r.status {
                    SeedStatus::Ok {
                        events,
                        races,
                        violations,
                    } => {
                        let _ = writeln!(
                            out,
                            "  seed {}: ok ({events} events, {races} race(s), {violations} violation(s))",
                            r.seed
                        );
                    }
                    SeedStatus::Failed { error } => {
                        let _ = writeln!(out, "  seed {}: FAILED ({error})", r.seed);
                    }
                }
            }
        }
        if self.partial {
            let _ = writeln!(
                out,
                "PARTIAL RESULTS: the report covers only the seeds that completed"
            );
        }
        if !self.unclassified.is_empty() {
            let _ = writeln!(
                out,
                "warning: {} monitored race(s) lacked MPI call metadata and were not classified",
                self.unclassified.len()
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "no thread-safety violations detected");
        } else {
            let _ = writeln!(out, "{} violation(s):", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        for (seed, d) in &self.deadlocks {
            let _ = writeln!(out, "deadlock under seed {seed}: {d}");
        }
        if self.cross_checked && !(self.candidates.is_empty() && self.dynamic_only.is_empty()) {
            let confirmed = self
                .candidates
                .iter()
                .filter(|c| c.status == CandidateStatus::Confirmed)
                .count();
            let _ = writeln!(
                out,
                "static candidates: {} ({confirmed} confirmed, {} not reproduced)",
                self.candidates.len(),
                self.candidates.len() - confirmed,
            );
            for c in &self.candidates {
                let _ = writeln!(
                    out,
                    "  * [{}] {} at line {} ({}): {}",
                    c.status.label(),
                    c.candidate.kind.label(),
                    c.candidate.line,
                    c.candidate.site,
                    c.candidate.description,
                );
            }
            if !self.dynamic_only.is_empty() {
                let _ = writeln!(
                    out,
                    "dynamic-only finding(s) with no static candidate: {}",
                    self.dynamic_only.len()
                );
                for v in &self.dynamic_only {
                    let _ = writeln!(out, "  * {v}");
                }
            }
        }
        for i in &self.incidents {
            let _ = writeln!(
                out,
                "runtime incident: rank {} line {} {}: {}",
                i.rank, i.line, i.call, i.error
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates_match_paper() {
        assert_eq!(
            ViolationKind::ALL.map(|k| k.predicate()),
            [
                "isInitializationViolation",
                "isMPIFinalizationViolation",
                "isConcurrentRecvViolation",
                "isConcurrentRequestViolation",
                "isProbeViolation",
                "isCollectiveCallViolation",
            ]
        );
    }

    #[test]
    fn partial_report_renders_seed_section() {
        let mut r = HomeReport {
            runs: 1,
            partial: true,
            ..HomeReport::default()
        };
        r.seed_runs.push(SeedRun {
            seed: 1,
            status: SeedStatus::Ok {
                events: 10,
                races: 0,
                violations: 0,
            },
        });
        r.seed_runs.push(SeedRun {
            seed: 2,
            status: SeedStatus::Failed {
                error: "injected failure".into(),
            },
        });
        let text = r.render();
        assert!(text.contains("seeds: 1 ok, 1 failed"), "{text}");
        assert!(text.contains("seed 2: FAILED (injected failure)"), "{text}");
        assert!(text.contains("PARTIAL RESULTS"), "{text}");
    }

    #[test]
    fn report_queries_and_render() {
        let mut r = HomeReport::default();
        r.violations.push(Violation {
            kind: ViolationKind::ConcurrentRecv,
            rank: Rank(1),
            description: "two receives with tag 0".into(),
            locations: vec![SrcLoc::new("x.hmp", 9)],
        });
        r.runs = 3;
        assert!(r.has(ViolationKind::ConcurrentRecv));
        assert!(!r.has(ViolationKind::Probe));
        assert_eq!(r.kinds(), vec![ViolationKind::ConcurrentRecv]);
        let text = r.render();
        assert!(text.contains("isConcurrentRecvViolation"));
        assert!(text.contains("x.hmp:9"));
        assert!(text.contains("1 violation"));
    }
}
