//! Virtual thread identifiers.

use std::fmt;

/// Identifier of a virtual thread managed by a [`crate::Runtime`].
///
/// Ids are dense, starting at 0, in spawn order. They are only meaningful
/// within the runtime that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vtid(pub(crate) u32);

impl Vtid {
    /// Raw index of this virtual thread (dense, spawn order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a `Vtid` from a raw index.
    ///
    /// Intended for tests and for components that persist thread ids into
    /// traces and later need to refer back to them.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        Vtid(u32::try_from(ix).expect("vtid index overflow"))
    }
}

impl fmt::Display for Vtid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vt{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let v = Vtid::from_index(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "vt7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Vtid::from_index(1) < Vtid::from_index(2));
    }
}
