//! # home — detecting thread-safety violations in hybrid OpenMP/MPI programs
//!
//! A Rust reproduction of *"Detecting Thread-Safety Violations in Hybrid
//! OpenMP/MPI Programs"* (Ma, Wang, Krishnamoorthy — IEEE CLUSTER 2015),
//! including every substrate the paper depends on, built from scratch:
//!
//! | layer | crate | what it provides |
//! |---|---|---|
//! | scheduler | [`sched`] | deterministic virtual threads, virtual time, deadlock detection |
//! | events | [`trace`] | the event model, vector clocks, locksets, trace sinks |
//! | MPI | [`mpi`] | a simulated MPI library (p2p matching, collectives, requests, thread levels) |
//! | OpenMP | [`omp`] | parallel regions, worksharing, critical/locks/barriers |
//! | language | [`ir`] | a C-like hybrid mini-language (DSL + builder) |
//! | static | [`static_analysis`] | CFG + Algorithm 1 (selective instrumentation checklist) |
//! | dynamic | [`dynamic`] | lockset + happens-before race detection |
//! | streaming | [`stream`] | online (event-at-a-time) detection and the HBT binary trace format |
//! | interpreter | [`interp`] | runs IR programs over the substrates with tool instrumentation |
//! | tool | [`core`] | the HOME pipeline and the six violation rules |
//! | exploration | [`explore`] | guided schedule search: PCT priorities, race-directed flips, DPOR-lite dedup |
//! | collector | [`serve`] | multi-tenant HBT trace-ingest daemon and client |
//! | baselines | [`baselines`] | Marmot and Intel-Thread-Checker models |
//! | workloads | [`npb`] | NPB-MZ-style LU/BT/SP with violation injection |
//!
//! ## Quickstart
//!
//! ```
//! use home::prelude::*;
//!
//! let program = parse(r#"
//!     program demo {
//!         mpi_init_thread(multiple);
//!         omp parallel num_threads(2) {
//!             mpi_barrier();    // concurrent collective: a violation
//!         }
//!         mpi_finalize();
//!     }
//! "#).unwrap();
//!
//! let report = check(&program, &CheckOptions::default());
//! assert!(report.has(ViolationKind::CollectiveCall));
//! println!("{}", report.render());
//! ```

pub use home_trace::{HomeError, HomeResult};

pub use home_baselines as baselines;
pub use home_core as core;
pub use home_dynamic as dynamic;
pub use home_explore as explore;
pub use home_interp as interp;
pub use home_ir as ir;
pub use home_mpi as mpi;
pub use home_npb as npb;
pub use home_omp as omp;
pub use home_sched as sched;
pub use home_serve as serve;
pub use home_static as static_analysis;
pub use home_stream as stream;
pub use home_trace as trace;

/// The most common surface: parse a program, check it, inspect violations.
pub mod prelude {
    pub use home_baselines::{run_tool, Tool};
    pub use home_core::{
        check, check_with_sink, CheckOptions, EmittedViolation, Engine, HomeReport, RuleEngine,
        Violation, ViolationKind, ViolationSink,
    };
    pub use home_dynamic::{detect, DetectorConfig, DetectorMode, Race};
    pub use home_explore::{ExploreOptions, ExploreReport, ScheduleToken, Strategy};
    pub use home_interp::{run, run_with_sink, Instrumentation, RunConfig};
    pub use home_ir::{parse, print_program, Program};
    pub use home_npb::{accuracy_row, build_injected, generate, Benchmark, Class};
    pub use home_sched::{Runtime, SchedConfig, SchedPolicy, SimTime};
    pub use home_static::analyze;
    pub use home_stream::{detect_stream, StreamDetector, StreamStats};
    pub use home_trace::{HomeError, HomeResult, MonitoredVar, ThreadLevel, Trace};
}
