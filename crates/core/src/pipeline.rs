//! The end-to-end HOME pipeline: static analysis → instrumented execution →
//! dynamic concurrency detection → violation matching → merged report.

use crate::report::{HomeReport, SeedRun, SeedStatus};
use crate::session::Session;
use crate::sink::{NullViolationSink, ViolationSink};
use home_dynamic::{detect, DetectorConfig};
use home_interp::{run, run_with_sink, Instrumentation, RunConfig};
use home_ir::Program;
use home_static::analyze;
use home_trace::{HomeError, TraceSink};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Which detection engine a [`check`] uses for each seed's chain.
///
/// Both engines produce byte-identical reports; they differ only in how the
/// trace flows through detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Materialize the full trace, then run [`home_dynamic::detect`] over
    /// it (the per-rank sharded batch detector).
    #[default]
    Batch,
    /// Feed events into [`home_stream::StreamDetector`] as the simulator
    /// emits them: no trace is materialized, dead segments are retired as
    /// regions join, and peak memory is bounded by the live-segment count.
    Stream,
}

/// Options for one HOME check.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// MPI processes to simulate.
    pub nprocs: usize,
    /// OpenMP threads per process (programs saying `num_threads(0)` or
    /// nothing inherit this).
    pub threads_per_proc: usize,
    /// Scheduler seeds to explore. More seeds = more interleavings covered;
    /// HOME's lockset+HB prediction usually needs only a few because races
    /// need not manifest to be detected.
    pub seeds: Vec<u64>,
    /// Dynamic-detector configuration.
    pub detector: DetectorConfig,
    /// Instrumentation profile (defaults to HOME's own).
    pub instrumentation: Instrumentation,
    /// Scheduling policy for the explored interleavings. `Random` explores
    /// broadly; `EarliestClockFirst` is time-faithful (what the accuracy
    /// table uses, so manifest-dependent baselines behave realistically).
    pub sched_policy: home_sched::SchedPolicy,
    /// Thread-name → priority pins for [`home_sched::SchedPolicy::Priority`]
    /// (directed rescheduling pins one racy access's thread high and the
    /// other low to flip their order). Ignored under other policies.
    pub priority_pins: Vec<(String, i64)>,
    /// Worker threads for the per-seed simulate→detect→match chains. Seeds
    /// are independent, so they fan out over up to `jobs` threads; each
    /// seed's results land in an indexed slot and merge back in seed-list
    /// order, so the report is identical for every value. `1` is exactly
    /// the serial path; the default is the machine's available parallelism.
    pub jobs: usize,
    /// Fault-injection hook: seeds in this list panic at the start of
    /// their chain. Exercises the per-seed fault isolation (a failed seed
    /// becomes a [`SeedStatus::Failed`] entry and sets
    /// [`HomeReport::partial`], never poisoning the other seeds). Exposed
    /// on the CLI as `--fail-seed`.
    pub inject_panic_seeds: Vec<u64>,
    /// Detection engine: batch (materialize the trace, then detect) or
    /// streaming (detect online while the program runs). Verdicts and the
    /// rendered report are identical; only memory behavior differs.
    pub engine: Engine,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            nprocs: 2,
            threads_per_proc: 2,
            seeds: vec![1, 2, 3, 4],
            detector: DetectorConfig::hybrid(),
            instrumentation: Instrumentation::home(),
            sched_policy: home_sched::SchedPolicy::Random,
            priority_pins: Vec::new(),
            jobs: home_dynamic::default_jobs(),
            inject_panic_seeds: Vec::new(),
            engine: Engine::default(),
        }
    }
}

impl CheckOptions {
    /// Convenience constructor.
    pub fn new(nprocs: usize, threads_per_proc: usize) -> Self {
        CheckOptions {
            nprocs,
            threads_per_proc,
            ..CheckOptions::default()
        }
    }

    /// Replace the seed list.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Set the worker-thread count for both the per-seed fan-out and the
    /// detector's per-rank fan-out.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self.detector.jobs = jobs;
        self
    }

    /// Inject a deliberate panic into the listed seeds' chains (fault
    /// isolation testing; see [`CheckOptions::inject_panic_seeds`]).
    pub fn with_fail_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.inject_panic_seeds = seeds;
        self
    }

    /// Select the detection engine (see [`Engine`]).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replace the scheduling policy (see [`CheckOptions::sched_policy`]).
    pub fn with_sched_policy(mut self, policy: home_sched::SchedPolicy) -> Self {
        self.sched_policy = policy;
        self
    }

    /// Replace the priority pins (see [`CheckOptions::priority_pins`]).
    pub fn with_priority_pins(mut self, pins: Vec<(String, i64)>) -> Self {
        self.priority_pins = pins;
        self
    }
}

/// Render a caught panic payload as text (panics carry `&str` or `String`
/// in practice; anything else gets a stable placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run the full HOME check on `program`.
///
/// ```
/// use home_core::{check, CheckOptions, ViolationKind};
///
/// let program = home_ir::parse(r#"
///     program demo {
///         mpi_init_thread(multiple);
///         omp parallel num_threads(2) {
///             if (rank == 1) { mpi_recv(from: 0, tag: 0); }
///             if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
///         }
///         mpi_finalize();
///     }
/// "#).unwrap();
/// let report = check(&program, &CheckOptions::default());
/// assert!(report.has(ViolationKind::ConcurrentRecv));
/// ```
pub fn check(program: &Program, options: &CheckOptions) -> HomeReport {
    check_with_sink(program, options, Arc::new(NullViolationSink))
}

/// [`check`], with every classified violation also delivered to `sink` as
/// its evidence completes (see [`ViolationSink`]). The returned report is
/// identical to [`check`]'s — the sink is a live tee, not a replacement.
/// `home watch` is this function plus a rendering sink.
pub fn check_with_sink(
    program: &Program,
    options: &CheckOptions,
    sink: Arc<dyn ViolationSink>,
) -> HomeReport {
    let static_report = analyze(program);
    let checklist = Arc::new(static_report.checklist.clone());

    let mut report = HomeReport {
        static_stats: static_report.stats,
        ..HomeReport::default()
    };

    // One seed's simulate→detect→match chain. Pure in `program` and the
    // shared checklist, so seeds may run on separate threads. The whole
    // chain is fault-isolated: a panic (or typed error) anywhere inside it
    // becomes an `Err` slot attributed to the seed, never a poisoned join.
    let run_seed = |seed: u64| -> SeedOutcome {
        let chain = || -> Result<SeedData, HomeError> {
            if options.inject_panic_seeds.contains(&seed) {
                panic!("injected failure (--fail-seed {seed})");
            }
            let mut cfg = RunConfig::test(options.nprocs, seed)
                .with_instrumentation(options.instrumentation.clone())
                .with_checklist(Arc::clone(&checklist));
            cfg.threads_per_proc = options.threads_per_proc;
            cfg.sched.policy = options.sched_policy;
            cfg.sched.priority_pins = options.priority_pins.clone();

            let (result, races, outcome) = match options.engine {
                Engine::Batch => {
                    let result = run(program, &cfg);
                    let races = detect(&result.trace, &options.detector)?;
                    // Post-hoc drive of the same session the stream arm
                    // uses live: same observations, same emissions, same
                    // canonical outcome.
                    let session = Session::classifier(seed, Arc::clone(&sink));
                    for e in result.trace.events() {
                        session.feed_event(e);
                    }
                    for race in &races {
                        session.feed_race(race);
                    }
                    for incident in &result.mpi_errors {
                        session.feed_incident(incident);
                    }
                    let outcome = session.finish()?;
                    (result, races, outcome)
                }
                Engine::Stream => {
                    let session = Arc::new(Session::streaming(
                        seed,
                        options.detector.clone(),
                        Arc::clone(&sink),
                    ));
                    let result =
                        run_with_sink(program, &cfg, Arc::clone(&session) as Arc<dyn TraceSink>);
                    // Events and races were fed live; incidents are
                    // gathered by the simulator and fed here, before the
                    // end-of-seed evaluation.
                    for incident in &result.mpi_errors {
                        session.feed_incident(incident);
                    }
                    let outcome = session.finish()?;
                    let races = outcome.races.clone();
                    (result, races, outcome)
                }
            };
            Ok(SeedData {
                events_recorded: result.events_recorded,
                deadlock: result.deadlock,
                incidents: result.mpi_errors,
                races,
                unclassified: outcome.unclassified,
                violations: outcome.violations,
            })
        };
        let result = std::panic::catch_unwind(AssertUnwindSafe(chain))
            .unwrap_or_else(|payload| Err(HomeError::seed(seed, panic_message(payload.as_ref()))))
            .map_err(|e| match e {
                seeded @ HomeError::Seed { .. } => seeded,
                other => HomeError::seed(seed, other.to_string()),
            });
        // Tell the sink this seed's chain resolved, with the same status
        // the report will show (live renderers use it as a seed boundary).
        match &result {
            Ok(data) => sink.seed_finished(
                seed,
                &SeedStatus::Ok {
                    events: data.events_recorded,
                    races: data.races.len(),
                    violations: data.violations.len(),
                },
                &data.violations,
            ),
            Err(e) => {
                let error = match e {
                    HomeError::Seed { message, .. } => message.clone(),
                    other => other.to_string(),
                };
                sink.seed_finished(seed, &SeedStatus::Failed { error }, &[]);
            }
        }
        SeedOutcome { seed, result }
    };

    // Indexed slots (crate::fanout) keep the merge in seed-list order
    // regardless of which worker finishes first, so the report is
    // byte-identical for every `jobs` value.
    let slots =
        crate::fanout::fan_out_indexed(&options.seeds, options.jobs, |_, &seed| run_seed(seed));
    let outcomes = slots.into_iter().zip(&options.seeds).map(|(slot, &seed)| {
        // A worker cannot leave its slot empty (the chain is caught), but
        // stay panic-free even if that invariant ever breaks.
        slot.unwrap_or_else(|| SeedOutcome {
            seed,
            result: Err(HomeError::seed(seed, "worker produced no result")),
        })
    });

    for outcome in outcomes {
        match outcome.result {
            Ok(data) => {
                report.runs += 1;
                report.total_events += data.events_recorded;
                report.seed_runs.push(SeedRun {
                    seed: outcome.seed,
                    status: SeedStatus::Ok {
                        events: data.events_recorded,
                        races: data.races.len(),
                        violations: data.violations.len(),
                    },
                });
                if let Some(d) = data.deadlock {
                    report.deadlocks.push((outcome.seed, d));
                }
                report.incidents.extend(data.incidents);
                report.races.extend(data.races);
                report.unclassified.extend(data.unclassified);
                report.violations.extend(data.violations);
            }
            Err(e) => {
                report.partial = true;
                let error = match e {
                    HomeError::Seed { message, .. } => message,
                    other => other.to_string(),
                };
                report.seed_runs.push(SeedRun {
                    seed: outcome.seed,
                    status: SeedStatus::Failed { error },
                });
            }
        }
    }

    // Merge: dedupe violations across seeds by (kind, rank, locations).
    let mut seen = std::collections::BTreeSet::new();
    report
        .violations
        .retain(|v| seen.insert(crate::report::violation_identity(v)));

    // Cross-check the static phase's candidates against the merged
    // dynamic findings (confirmed / not reproduced / dynamic-only).
    report.cross_check(&static_report.candidates);
    report
}

/// Everything one seed's chain contributes to the merged report, or the
/// typed error that took it down.
struct SeedOutcome {
    seed: u64,
    result: Result<SeedData, HomeError>,
}

/// One completed seed's results.
struct SeedData {
    events_recorded: u64,
    deadlock: Option<home_sched::DeadlockInfo>,
    incidents: Vec<home_interp::MpiIncident>,
    races: Vec<home_dynamic::Race>,
    unclassified: Vec<home_dynamic::Race>,
    violations: Vec<crate::report::Violation>,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::report::ViolationKind;
    use home_ir::parse;

    fn check_src(src: &str) -> HomeReport {
        check(&parse(src).unwrap(), &CheckOptions::default())
    }

    #[test]
    fn clean_hybrid_program_has_no_violations() {
        let r = check_src(
            r#"
            program clean {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    if (rank == 0) {
                        mpi_send(to: 1, tag: tid, count: 1);
                        mpi_recv(from: 1, tag: tid);
                    }
                    if (rank == 1) {
                        mpi_recv(from: 0, tag: tid);
                        mpi_send(to: 0, tag: tid, count: 1);
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(
            r.violations.is_empty(),
            "unexpected violations: {:?}",
            r.violations
        );
        assert!(r.deadlocks.is_empty());
    }

    #[test]
    fn case_study_1_init_violation() {
        // Paper Figure 1: plain MPI_Init (single) + omp sections doing
        // MPI calls.
        let r = check_src(
            r#"
            program case1 {
                mpi_init();
                omp parallel num_threads(2) {
                    omp sections {
                        section { if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); } }
                        section { if (rank == 1) { mpi_recv(from: 0, tag: 0); } }
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::Initialization), "{}", r.render());
    }

    #[test]
    fn case_study_2_concurrent_recv_violation() {
        // Paper Figure 2: same tag from both threads.
        let r = check_src(
            r#"
            program case2 {
                mpi_init_thread(multiple);
                shared int tag = 0;
                omp parallel num_threads(2) {
                    if (rank == 0) {
                        mpi_send(to: 1, tag: tag, count: 1);
                        mpi_recv(from: 1, tag: tag);
                    }
                    if (rank == 1) {
                        mpi_recv(from: 0, tag: tag);
                        mpi_send(to: 0, tag: tag, count: 1);
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::ConcurrentRecv), "{}", r.render());
        // The fix (thread-distinct tags) must not be flagged — covered by
        // `clean_hybrid_program_has_no_violations`.
    }

    #[test]
    fn cross_check_confirms_concurrent_recv_candidate() {
        // Figure 2's shape: the static phase flags the unprotected recvs,
        // and the dynamic phase reproduces them — confirmed.
        let r = check_src(
            r#"
            program confirm {
                mpi_init_thread(multiple);
                shared int tag = 0;
                omp parallel num_threads(2) {
                    if (rank == 0) {
                        mpi_send(to: 1, tag: tag, count: 1);
                        mpi_recv(from: 1, tag: tag);
                    }
                    if (rank == 1) {
                        mpi_recv(from: 0, tag: tag);
                        mpi_send(to: 0, tag: tag, count: 1);
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.cross_checked);
        let confirmed: Vec<&crate::report::CandidateOutcome> = r
            .candidates
            .iter()
            .filter(|c| c.status == crate::report::CandidateStatus::Confirmed)
            .collect();
        assert!(
            confirmed.iter().any(|c| c.candidate.violation_hint.as_deref()
                == Some("isConcurrentRecvViolation")),
            "{}",
            r.render()
        );
        let text = r.render();
        assert!(text.contains("static candidates:"), "{text}");
        assert!(text.contains("  * [confirmed]"), "{text}");
    }

    #[test]
    fn cross_check_marks_unreproduced_deadlock_candidate() {
        // A lock-guarded blocking recv in a multi-threaded region is a
        // static deadlock candidate, but the run completes: not reproduced.
        let r = check_src(
            r#"
            program notrepro {
                fn fetch() { mpi_recv(from: 0, tag: 4); }
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 4, count: 1);
                    mpi_send(to: 1, tag: 4, count: 1);
                }
                if (rank == 1) {
                    omp parallel num_threads(2) {
                        omp critical(net) { call fetch(); }
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.deadlocks.is_empty(), "{}", r.render());
        let dl: Vec<_> = r
            .candidates
            .iter()
            .filter(|c| c.candidate.kind == home_static::CandidateKind::PotentialDeadlock)
            .collect();
        assert!(!dl.is_empty(), "{}", r.render());
        assert!(dl
            .iter()
            .all(|c| c.status == crate::report::CandidateStatus::NotReproduced));
        assert!(
            r.render().contains("  * [not reproduced]"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn init_violation_is_dynamic_only() {
        // Figure 1's initialization violation has no static candidate (it
        // depends on the initialized thread level at runtime): the cross-
        // check lists it as dynamic-only.
        let r = check_src(
            r#"
            program dynonly {
                mpi_init();
                omp parallel num_threads(2) {
                    omp sections {
                        section { if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); } }
                        section { if (rank == 1) { mpi_recv(from: 0, tag: 0); } }
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::Initialization), "{}", r.render());
        assert!(
            r.dynamic_only
                .iter()
                .any(|v| v.kind == ViolationKind::Initialization),
            "{}",
            r.render()
        );
        assert!(r.render().contains("dynamic-only"), "{}", r.render());
    }

    #[test]
    fn serialized_level_with_concurrent_calls_is_init_violation() {
        let r = check_src(
            r#"
            program ser {
                mpi_init_thread(serialized);
                omp parallel num_threads(2) {
                    mpi_send(to: rank, tag: tid, count: 1);
                    mpi_recv(from: rank, tag: tid);
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::Initialization), "{}", r.render());
    }

    #[test]
    fn funneled_level_worker_calls_is_init_violation() {
        let r = check_src(
            r#"
            program fun {
                mpi_init_thread(funneled);
                omp parallel num_threads(2) {
                    mpi_send(to: rank, tag: tid, count: 1);
                    mpi_recv(from: rank, tag: tid);
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::Initialization), "{}", r.render());
    }

    #[test]
    fn concurrent_request_violation() {
        let r = check_src(
            r#"
            program req {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 0, count: 1);
                }
                if (rank == 1) {
                    mpi_irecv(from: 0, tag: 0, req: shared_r);
                    omp parallel num_threads(2) {
                        mpi_wait(req: shared_r);
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::ConcurrentRequest), "{}", r.render());
    }

    #[test]
    fn probe_violation() {
        let r = check_src(
            r#"
            program probe {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 3, count: 1);
                    mpi_send(to: 1, tag: 3, count: 1);
                }
                if (rank == 1) {
                    omp parallel num_threads(2) {
                        mpi_probe(from: 0, tag: 3);
                        mpi_recv(from: 0, tag: 3);
                    }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::Probe), "{}", r.render());
    }

    #[test]
    fn collective_violation() {
        let r = check_src(
            r#"
            program coll {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    mpi_barrier();
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(r.has(ViolationKind::CollectiveCall), "{}", r.render());
    }

    #[test]
    fn finalize_off_main_thread_is_violation() {
        let r = check_src(
            r#"
            program fin {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    if (tid == 1) { mpi_finalize(); }
                }
            }
            "#,
        );
        assert!(r.has(ViolationKind::Finalization), "{}", r.render());
    }

    #[test]
    fn collective_on_master_only_is_clean() {
        let r = check_src(
            r#"
            program ok {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    omp master { mpi_barrier(); }
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(
            !r.has(ViolationKind::CollectiveCall),
            "master-only collective is safe: {}",
            r.render()
        );
    }

    #[test]
    fn lock_protected_sends_are_not_recv_violations() {
        let r = check_src(
            r#"
            program locked {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    if (rank == 0) {
                        omp critical(mpi) { mpi_send(to: 1, tag: 0, count: 1); }
                    }
                }
                if (rank == 1) {
                    mpi_recv(from: 0, tag: 0);
                    mpi_recv(from: 0, tag: 0);
                }
                mpi_finalize();
            }
            "#,
        );
        assert!(
            !r.has(ViolationKind::ConcurrentRecv),
            "critical-section sends are serialized: {}",
            r.render()
        );
    }

    #[test]
    fn static_stats_flow_into_report() {
        let r = check_src(
            r#"
            program stats {
                mpi_init_thread(multiple);
                mpi_barrier();
                omp parallel num_threads(2) { omp master { mpi_barrier(); } }
                mpi_finalize();
            }
            "#,
        );
        assert_eq!(r.static_stats.total_mpi_calls, 4);
        assert_eq!(r.static_stats.instrumented, 1);
        assert_eq!(r.runs, 4);
        assert!(r.total_events > 0);
    }

    #[test]
    fn parallel_check_matches_serial_byte_for_byte() {
        // The acceptance bar for the fan-out: across >= 4 seeds, the
        // rendered report with jobs=1 and jobs=N must be identical, and so
        // must every merged field the renderer does not show.
        let program = parse(
            r#"
            program par {
                mpi_init_thread(multiple);
                shared int tag = 0;
                omp parallel num_threads(2) {
                    if (rank == 0) {
                        mpi_send(to: 1, tag: tag, count: 1);
                        mpi_recv(from: 1, tag: tag);
                    }
                    if (rank == 1) {
                        mpi_recv(from: 0, tag: tag);
                        mpi_send(to: 0, tag: tag, count: 1);
                    }
                }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let seeds = vec![1, 2, 3, 4, 5, 6];
        let serial = check(
            &program,
            &CheckOptions::default()
                .with_seeds(seeds.clone())
                .with_jobs(1),
        );
        for jobs in [2, 4, 8] {
            let parallel = check(
                &program,
                &CheckOptions::default()
                    .with_seeds(seeds.clone())
                    .with_jobs(jobs),
            );
            assert_eq!(serial.render(), parallel.render(), "render at jobs={jobs}");
            assert_eq!(serial.runs, parallel.runs, "runs at jobs={jobs}");
            assert_eq!(
                serial.total_events, parallel.total_events,
                "events at jobs={jobs}"
            );
            assert_eq!(
                serial.violations, parallel.violations,
                "violations at jobs={jobs}"
            );
            assert_eq!(
                serial.races.len(),
                parallel.races.len(),
                "race count at jobs={jobs}"
            );
            assert_eq!(
                format!("{:?}", serial.races),
                format!("{:?}", parallel.races),
                "race order at jobs={jobs}"
            );
            assert_eq!(
                format!("{:?}", serial.deadlocks),
                format!("{:?}", parallel.deadlocks),
                "deadlocks at jobs={jobs}"
            );
        }
        assert!(serial.has(ViolationKind::ConcurrentRecv));
    }

    #[test]
    fn failing_seed_is_isolated_and_marks_report_partial() {
        // One injected failure among four seeds: the other three must
        // still contribute, the failed seed gets a Failed entry, and the
        // report is flagged partial.
        let program = parse(
            r#"
            program iso {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) { mpi_barrier(); }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let opts = CheckOptions::default()
            .with_seeds(vec![1, 2, 3, 4])
            .with_fail_seeds(vec![3]);
        let r = check(&program, &opts);
        assert!(r.partial);
        assert_eq!(r.runs, 3, "three of four seeds completed");
        assert_eq!(r.seed_runs.len(), 4, "every seed has a status entry");
        let failed: Vec<&SeedRun> = r.seed_runs.iter().filter(|s| !s.is_ok()).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].seed, 3);
        match &failed[0].status {
            SeedStatus::Failed { error } => {
                assert!(error.contains("injected failure"), "{error}")
            }
            other => panic!("unexpected status {other:?}"),
        }
        // The surviving seeds still find the violation.
        assert!(r.has(ViolationKind::CollectiveCall), "{}", r.render());
        let text = r.render();
        assert!(text.contains("PARTIAL RESULTS"), "{text}");
        assert!(text.contains("seed 3: FAILED"), "{text}");
    }

    #[test]
    fn partial_report_is_byte_identical_across_jobs() {
        let program = parse(
            r#"
            program isopar {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) { mpi_barrier(); }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let seeds = vec![1, 2, 3, 4, 5, 6];
        let serial = check(
            &program,
            &CheckOptions::default()
                .with_seeds(seeds.clone())
                .with_fail_seeds(vec![2, 5])
                .with_jobs(1),
        );
        assert!(serial.partial);
        assert_eq!(serial.runs, 4);
        for jobs in [2, 3, 4, 8] {
            let parallel = check(
                &program,
                &CheckOptions::default()
                    .with_seeds(seeds.clone())
                    .with_fail_seeds(vec![2, 5])
                    .with_jobs(jobs),
            );
            assert_eq!(serial.render(), parallel.render(), "render at jobs={jobs}");
            assert_eq!(
                format!("{:?}", serial.seed_runs),
                format!("{:?}", parallel.seed_runs),
                "seed status at jobs={jobs}"
            );
        }
    }

    #[test]
    fn all_seeds_failing_yields_empty_partial_report() {
        let program = parse(
            r#"
            program allfail {
                mpi_init_thread(multiple);
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let opts = CheckOptions::default()
            .with_seeds(vec![7, 8])
            .with_fail_seeds(vec![7, 8]);
        let r = check(&program, &opts);
        assert!(r.partial);
        assert_eq!(r.runs, 0);
        assert!(r.violations.is_empty());
        assert!(r.seed_runs.iter().all(|s| !s.is_ok()));
    }

    #[test]
    fn report_renders_violations() {
        let r = check_src(
            r#"
            program render {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) { mpi_barrier(); }
                mpi_finalize();
            }
            "#,
        );
        let text = r.render();
        assert!(text.contains("isCollectiveCallViolation"));
        assert!(text.contains("render.hmp"));
    }
}
