//! # home-static — the compile-time phase of HOME
//!
//! Implements the paper's static analysis (Section IV-C, Algorithm 1):
//!
//! 1. build the control-flow graph ([`Cfg`]) of a hybrid program, with
//!    explicit `ompParallelBegin`/`ompParallelEnd` markers;
//! 2. walk the linearized CFG and mark every reachable MPI call inside a
//!    parallel region for replacement with an instrumented wrapper —
//!    everything else is *skipped*, which is the paper's key overhead
//!    reduction;
//! 3. classify parallel regions as error-free (no MPI inside) or
//!    potentially erroneous;
//! 4. derive which monitored variables (`srctmp`, `tagtmp`, …) the dynamic
//!    phase must set up — globally *and* per call site — and annotate call
//!    sites whose tag/peer arguments are provably thread-distinct (via a
//!    small abstract interpretation);
//! 5. build the interprocedural layer: a call graph with per-edge context
//!    ([`CallGraph`]), bottom-up function summaries ([`Summaries`]: locks
//!    held, MPI calls reachable, thread-context sensitivity), and static
//!    deadlock/violation candidates ([`StaticCandidate`]) that `home-core`
//!    cross-checks against the dynamic findings.
//!
//! Entry point: [`analyze`], producing a [`StaticReport`] whose
//! [`Checklist`] drives the interpreter's selective instrumentation.

mod abstract_eval;
mod analysis;
mod callgraph;
mod cfg;
mod checklist;
mod deadlock;
mod summary;

pub use abstract_eval::{AbsEnv, AbsVal};
pub use analysis::{analyze, RegionClass, RegionInfo, StaticNote, StaticReport, StaticStats};
pub use callgraph::{CallEdge, CallGraph};
pub use cfg::{Cfg, CfgNode, OmpRegionKind};
pub use checklist::{Checklist, StaticCallSite, ALL_MONITORED};
pub use deadlock::{CandidateKind, StaticCandidate};
pub use summary::{FnSummary, Summaries};
