//! Offline shim for the `parking_lot` API subset used in this repository.
//!
//! The crates-io registry is unreachable in the build environment, so this
//! workspace vendors a thin non-poisoning wrapper over `std::sync` under the
//! `parking_lot` name. Semantics match what the callers rely on:
//!
//! * `Mutex::lock` / `RwLock::read` / `RwLock::write` return guards directly
//!   (no `Result`); a poisoned std lock is recovered transparently, since
//!   parking_lot has no poisoning.
//! * `Condvar::wait` takes `&mut MutexGuard` (parking_lot's signature) and
//!   re-acquires the same mutex before returning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            mutex: self,
            inner: Some(guard),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                mutex: self,
                inner: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                mutex: self,
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take ownership of the std guard (std's `wait` consumes
/// it) while the caller keeps holding `&mut MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard active");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        let _ = guard.mutex; // keep the field used even if only wait() borrows it
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
