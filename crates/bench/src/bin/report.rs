//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p home-bench --bin report -- all
//! cargo run --release -p home-bench --bin report -- accuracy
//! cargo run --release -p home-bench --bin report -- figure4 [--class A]
//! cargo run --release -p home-bench --bin report -- figure7
//! cargo run --release -p home-bench --bin report -- ablation-selective
//! cargo run --release -p home-bench --bin report -- ablation-detectors
//! ```
//!
//! Output is paper-shaped text tables; `--json <path>` additionally dumps
//! the raw series for external plotting.

use home_baselines::{run_tool, Tool};
use home_bench::{figure_sweep, overhead_from_points, PerfPoint, PROC_COUNTS};
use home_core::{check, CheckOptions};
use home_dynamic::DetectorConfig;
use home_interp::{run, Instrumentation, RunConfig};
use home_npb::{accuracy_options, accuracy_row, build_injected, generate, Benchmark, Class};
use home_static::analyze;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let class = parse_class(&args).unwrap_or(Class::C);
    let json_path = parse_json(&args);

    let mut json_blobs: Vec<(String, serde_json::Value)> = Vec::new();

    match cmd {
        "accuracy" => accuracy(&mut json_blobs),
        "figure4" => figure(Benchmark::LuMz, class, 4, &mut json_blobs),
        "figure5" => figure(Benchmark::BtMz, class, 5, &mut json_blobs),
        "figure6" => figure(Benchmark::SpMz, class, 6, &mut json_blobs),
        "figure7" => figure7(class, &mut json_blobs),
        "ablation-selective" => ablation_selective(class),
        "ablation-detectors" => ablation_detectors(),
        "ablation-seeds" => ablation_seeds(),
        "all" => {
            accuracy(&mut json_blobs);
            figure(Benchmark::LuMz, class, 4, &mut json_blobs);
            figure(Benchmark::BtMz, class, 5, &mut json_blobs);
            figure(Benchmark::SpMz, class, 6, &mut json_blobs);
            figure7(class, &mut json_blobs);
            ablation_selective(class);
            ablation_detectors();
            ablation_seeds();
        }
        other => {
            eprintln!("unknown command `{other}`; see module docs");
            std::process::exit(2);
        }
    }

    if let Some(path) = json_path {
        let map: serde_json::Map<String, serde_json::Value> = json_blobs.into_iter().collect();
        std::fs::write(&path, serde_json::to_string_pretty(&map).unwrap())
            .unwrap_or_else(|e| eprintln!("failed to write {path}: {e}"));
        println!("\nraw series written to {path}");
    }
}

fn parse_class(args: &[String]) -> Option<Class> {
    let ix = args.iter().position(|a| a == "--class")?;
    match args.get(ix + 1).map(String::as_str) {
        Some("S") => Some(Class::S),
        Some("W") => Some(Class::W),
        Some("A") => Some(Class::A),
        Some("B") => Some(Class::B),
        Some("C") => Some(Class::C),
        _ => None,
    }
}

fn parse_json(args: &[String]) -> Option<String> {
    let ix = args.iter().position(|a| a == "--json")?;
    args.get(ix + 1).cloned()
}

/// The detection-accuracy table (paper Section V-B).
fn accuracy(json: &mut Vec<(String, serde_json::Value)>) {
    println!("== Detection accuracy (paper Table: injected-violation reports) ==");
    println!(
        "{:<16} {:>6} {:>6} {:>8}",
        "Benchmarks", "HOME", "ITC", "Marmot"
    );
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let row = accuracy_row(b, Class::S, 2);
        let get = |name: &str| {
            row.scores
                .iter()
                .find(|s| s.tool == name)
                .map(|s| s.reported())
                .unwrap_or(0)
        };
        println!(
            "{:<16} {:>6} {:>6} {:>8}",
            format!("{} ({})", row.benchmark, row.injected),
            get("HOME"),
            get("ITC"),
            get("MARMOT")
        );
        rows.push(row);
    }
    println!("(paper: LU 6/5/5, BT 6/7/6, SP 6/6/5 — ITC's 7 includes one false positive)\n");
    json.push(("accuracy".to_string(), serde_json::to_value(&rows).unwrap()));
}

/// Figures 4–6: execution time vs process count for one benchmark.
fn figure(
    benchmark: Benchmark,
    class: Class,
    number: u32,
    json: &mut Vec<(String, serde_json::Value)>,
) {
    println!(
        "== Figure {number}: {} class {class} execution time (simulated seconds) ==",
        benchmark.name()
    );
    let points = figure_sweep(benchmark, class, &PROC_COUNTS);
    print_time_table(&points);
    println!();
    json.push((
        format!("figure{number}"),
        serde_json::to_value(&points).unwrap(),
    ));
}

fn print_time_table(points: &[PerfPoint]) {
    print!("{:<8}", "procs");
    for tool in Tool::ALL {
        print!("{:>12}", tool.label());
    }
    println!();
    for &np in &PROC_COUNTS {
        print!("{np:<8}");
        for tool in Tool::ALL {
            let p = points
                .iter()
                .find(|p| p.nprocs == np && p.tool == tool.label());
            match p {
                Some(p) => print!("{:>12.3}", p.seconds),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
}

/// Figure 7: average overhead percentage across the three benchmarks.
fn figure7(class: Class, json: &mut Vec<(String, serde_json::Value)>) {
    println!("== Figure 7: average overhead vs process count (class {class}) ==");
    let mut all_points = Vec::new();
    for b in Benchmark::ALL {
        all_points.extend(figure_sweep(b, class, &PROC_COUNTS));
    }
    let overheads = overhead_from_points(&all_points);
    print!("{:<8}", "procs");
    for tool in ["HOME", "MARMOT", "ITC"] {
        print!("{tool:>12}");
    }
    println!();
    for &np in &PROC_COUNTS {
        print!("{np:<8}");
        for tool in ["HOME", "MARMOT", "ITC"] {
            let p = overheads.iter().find(|o| o.nprocs == np && o.tool == tool);
            match p {
                Some(o) => print!("{:>11.1}%", o.percent),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
    println!("(paper: HOME 16–45%, Marmot 15–56%, ITC up to ~200%)\n");
    json.push((
        "figure7".to_string(),
        serde_json::to_value(&overheads).unwrap(),
    ));
}

/// Ablation: HOME's two instrumentation reductions —
/// (a) wrapping only checklist-selected call sites instead of every MPI
///     call, and
/// (b) monitoring only the six monitored variables instead of every shared
///     memory access (the "systematic instrumentation" the paper avoids).
fn ablation_selective(class: Class) {
    println!("== Ablation: selective vs full instrumentation (HOME, class {class}) ==");
    println!(
        "{:<6} {:>13} {:>11} {:>13} {:>11} {:>14} {:>12}",
        "procs",
        "selective(s)",
        "sel evts",
        "all-calls(s)",
        "all evts",
        "all-access(s)",
        "access evts"
    );
    for &np in &[2usize, 8, 32] {
        let program = generate(Benchmark::BtMz, class);
        let checklist = Arc::new(analyze(&program).checklist.clone());
        let run_with = |instr: Instrumentation| {
            let cfg = RunConfig::cluster(np, 7)
                .with_instrumentation(instr)
                .with_checklist(Arc::clone(&checklist));
            let r = run(&program, &cfg);
            (r.makespan.as_secs_f64(), r.events_recorded)
        };
        let (sel_t, sel_e) = run_with(Instrumentation::home());
        let (full_t, full_e) = run_with(Instrumentation::home_unselective());
        // Systematic instrumentation: record every shared access as well,
        // at the same per-event cost as HOME's wrapper stores.
        let all_access = Instrumentation {
            name: "home-all-access".into(),
            filter: home_trace::EventFilter::ALL,
            selective: false,
            ..Instrumentation::home()
        };
        let (aa_t, aa_e) = run_with(all_access);
        println!(
            "{np:<6} {sel_t:>13.3} {sel_e:>11} {full_t:>13.3} {full_e:>11} {aa_t:>14.3} {aa_e:>12}"
        );
    }
    println!();
}

/// Ablation: schedule exploration — how many random schedules each tool
/// needs before its report stabilizes. HOME's lockset/HB prediction finds
/// the latent race in the very first schedule; manifest-only Marmot only
/// reports it when a schedule happens to overlap the calls.
fn ablation_seeds() {
    println!("== Ablation: detections vs explored schedules (injected SP-MZ, class S) ==");
    let ip = build_injected(Benchmark::SpMz, Class::S);
    println!("{:<10} {:>8} {:>8}", "schedules", "HOME", "MARMOT");
    for k in [1usize, 2, 4, 8] {
        let seeds: Vec<u64> = (0..k as u64).collect();
        let mut row = Vec::new();
        for tool in [Tool::Home, Tool::Marmot] {
            // Random interleavings (not time-faithful) — the exploration
            // regime where manifestation is a matter of luck.
            let mut opts = CheckOptions::new(2, 2).with_seeds(seeds.clone());
            opts.sched_policy = home_sched::SchedPolicy::Random;
            let report = run_tool(tool, &ip.program, &opts);
            let score = home_npb::score(tool.label(), &report, &ip.injections);
            row.push(score.detected);
        }
        println!("{k:<10} {:>7}/6 {:>7}/6", row[0], row[1]);
    }
    println!("(HOME is schedule-insensitive; Marmot converges only as schedules accumulate)\n");
}

/// Ablation: lockset-only vs HB-only vs the hybrid detector on the
/// injected LU benchmark.
fn ablation_detectors() {
    println!("== Ablation: detector modes on injected LU-MZ (class S) ==");
    let ip = build_injected(Benchmark::LuMz, Class::S);
    let options = accuracy_options(2);
    for (name, detector) in [
        ("hybrid (paper)", DetectorConfig::hybrid()),
        ("lockset-only", DetectorConfig::lockset_only()),
        ("hb-only", DetectorConfig::hb_only()),
    ] {
        let mut opts = options.clone();
        opts.detector = detector.clone();
        let report = check(&ip.program, &opts);
        let score = home_npb::score("HOME", &report, &ip.injections);
        println!(
            "{:<16} detected {}/{}  false-positives {}  raw races {}",
            name,
            score.detected,
            score.injected,
            score.false_positives,
            report.races.len()
        );
    }
    // Also show Marmot/ITC raw runs for context.
    for tool in [Tool::Itc, Tool::Marmot] {
        let report = run_tool(tool, &ip.program, &options);
        let score = home_npb::score(tool.label(), &report, &ip.injections);
        println!(
            "{:<16} detected {}/{}  false-positives {}",
            tool.label(),
            score.detected,
            score.injected,
            score.false_positives
        );
    }
    println!();
}
