//! LU-MZ with the paper's injected violations, checked by HOME.
//!
//! ```text
//! cargo run --release --example npb_lu_demo
//! ```
//!
//! Builds the multi-zone LU workload, splices in the six violation
//! episodes, runs the full pipeline, and prints the detection summary per
//! injection.

use home::npb::{build_injected, score};
use home::prelude::*;

fn main() {
    let injected = build_injected(Benchmark::LuMz, Class::S);
    println!(
        "LU-MZ (class S) with {} injected violations:",
        injected.injections.len()
    );
    for inj in &injected.injections {
        println!(
            "  {:<34} {:<28} lines {}..{}",
            inj.label,
            inj.kind.predicate(),
            inj.lines.0,
            inj.lines.1
        );
    }

    let mut options = CheckOptions::new(2, 2).with_seeds(vec![11, 12]);
    options.sched_policy = SchedPolicy::EarliestClockFirst;
    let report = run_tool(Tool::Home, &injected.program, &options);

    println!("\n--- HOME report ---");
    print!("{}", report.render());

    let s = score("HOME", &report, &injected.injections);
    println!(
        "\nscore: {}/{} injections detected, {} false positives",
        s.detected, s.injected, s.false_positives
    );
    assert_eq!(s.detected, 6);
    assert_eq!(s.false_positives, 0);

    // The same program through the baselines, for contrast.
    for tool in [Tool::Itc, Tool::Marmot] {
        let r = run_tool(tool, &injected.program, &options);
        let s = score(tool.label(), &r, &injected.injections);
        println!(
            "{:<8} {}/{} detected, {} false positives (paper: ITC misses the probe episode, Marmot the latent one)",
            tool.label(),
            s.detected,
            s.injected,
            s.false_positives
        );
    }
}
