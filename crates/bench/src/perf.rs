//! Virtual-time performance sweeps behind Figures 4–7.

use home_baselines::Tool;
use home_interp::{run, RunConfig};
use home_npb::{generate, Benchmark, Class};
use home_static::analyze;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One measured point: a tool on a benchmark at a process count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool label.
    pub tool: String,
    /// MPI processes.
    pub nprocs: usize,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Instrumentation events recorded.
    pub events: u64,
}

/// The process counts of the paper's figures.
pub const PROC_COUNTS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Execute `benchmark` at `class` under `tool` on `nprocs` simulated
/// processes and return the measured point.
pub fn measure(benchmark: Benchmark, class: Class, tool: Tool, nprocs: usize) -> PerfPoint {
    let program = generate(benchmark, class);
    let checklist = Arc::new(analyze(&program).checklist.clone());
    let cfg = RunConfig::cluster(nprocs, 7)
        .with_instrumentation(tool.instrumentation_scaled(nprocs))
        .with_checklist(checklist);
    let result = run(&program, &cfg);
    assert!(
        result.clean(),
        "{benchmark}/{} on {nprocs} procs failed: {:?} {:?}",
        tool.label(),
        result.deadlock,
        result.runtime_errors
    );
    PerfPoint {
        benchmark: benchmark.name().to_string(),
        tool: tool.label().to_string(),
        nprocs,
        seconds: result.makespan.as_secs_f64(),
        events: result.events_recorded,
    }
}

/// Figure 4/5/6: all four tools over the process-count sweep.
pub fn figure_sweep(benchmark: Benchmark, class: Class, procs: &[usize]) -> Vec<PerfPoint> {
    let mut out = Vec::new();
    for &np in procs {
        for tool in Tool::ALL {
            out.push(measure(benchmark, class, tool, np));
        }
    }
    out
}

/// One overhead cell: `(tool_time − base_time) / base_time`, in percent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadPoint {
    pub tool: String,
    pub nprocs: usize,
    /// Percent overhead, averaged across benchmarks.
    pub percent: f64,
}

/// Figure 7: per-tool average overhead over the process sweep, averaged
/// across the given benchmarks' points.
pub fn overhead_from_points(points: &[PerfPoint]) -> Vec<OverheadPoint> {
    let mut out = Vec::new();
    let tools: Vec<String> = {
        let mut t: Vec<String> = points
            .iter()
            .map(|p| p.tool.clone())
            .filter(|t| t != "Base")
            .collect();
        t.sort();
        t.dedup();
        t
    };
    let mut procs: Vec<usize> = points.iter().map(|p| p.nprocs).collect();
    procs.sort_unstable();
    procs.dedup();
    for tool in &tools {
        for &np in &procs {
            let mut ratios = Vec::new();
            let benches: Vec<&str> = {
                let mut b: Vec<&str> = points.iter().map(|p| p.benchmark.as_str()).collect();
                b.sort_unstable();
                b.dedup();
                b
            };
            for bench in benches {
                let base = points
                    .iter()
                    .find(|p| p.benchmark == bench && p.tool == "Base" && p.nprocs == np);
                let t = points
                    .iter()
                    .find(|p| p.benchmark == bench && &p.tool == tool && p.nprocs == np);
                if let (Some(base), Some(t)) = (base, t) {
                    if base.seconds > 0.0 {
                        ratios.push((t.seconds - base.seconds) / base.seconds * 100.0);
                    }
                }
            }
            if !ratios.is_empty() {
                out.push(OverheadPoint {
                    tool: tool.clone(),
                    nprocs: np,
                    percent: ratios.iter().sum::<f64>() / ratios.len() as f64,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_time_decreases_with_more_processes() {
        // Strong scaling: class A base time must shrink from 2 to 8 procs.
        let t2 = measure(Benchmark::BtMz, Class::A, Tool::Base, 2).seconds;
        let t8 = measure(Benchmark::BtMz, Class::A, Tool::Base, 8).seconds;
        assert!(t8 < t2, "strong scaling violated: {t2} vs {t8}");
    }

    #[test]
    fn tool_ordering_matches_paper() {
        // The paper's class (C) is where the cost model is calibrated. At
        // low process counts HOME's and Marmot's bands overlap (paper: 16%
        // vs 15%); from 8 processes up Marmot's central manager costs more
        // than HOME's selective wrappers, and ITC dominates everywhere.
        for np in [2usize, 8, 64] {
            let base = measure(Benchmark::LuMz, Class::C, Tool::Base, np).seconds;
            let home = measure(Benchmark::LuMz, Class::C, Tool::Home, np).seconds;
            let marmot = measure(Benchmark::LuMz, Class::C, Tool::Marmot, np).seconds;
            let itc = measure(Benchmark::LuMz, Class::C, Tool::Itc, np).seconds;
            assert!(base < home, "np={np}");
            assert!(home < itc, "np={np}: home={home} itc={itc}");
            assert!(marmot < itc, "np={np}: marmot={marmot} itc={itc}");
            // The crossover: Marmot's central manager eventually costs more
            // than HOME's selective wrappers (paper: 56% vs 45% at 64).
            if np >= 64 {
                assert!(home < marmot, "np={np}: home={home} marmot={marmot}");
            }
        }
    }

    #[test]
    fn home_overhead_band_matches_paper() {
        // Paper: HOME overhead ranges from ~16% (few processes) to ~45%
        // (64 processes), increasing with process count.
        let lo = {
            let base = measure(Benchmark::LuMz, Class::C, Tool::Base, 2).seconds;
            let home = measure(Benchmark::LuMz, Class::C, Tool::Home, 2).seconds;
            (home - base) / base * 100.0
        };
        let hi = {
            let base = measure(Benchmark::LuMz, Class::C, Tool::Base, 64).seconds;
            let home = measure(Benchmark::LuMz, Class::C, Tool::Home, 64).seconds;
            (home - base) / base * 100.0
        };
        assert!(lo > 8.0 && lo < 30.0, "low-end HOME overhead {lo:.1}%");
        assert!(hi > 30.0 && hi < 70.0, "high-end HOME overhead {hi:.1}%");
        assert!(hi > lo, "overhead must grow with process count");
    }

    #[test]
    fn overhead_computation() {
        let points = vec![
            PerfPoint {
                benchmark: "X".into(),
                tool: "Base".into(),
                nprocs: 2,
                seconds: 10.0,
                events: 0,
            },
            PerfPoint {
                benchmark: "X".into(),
                tool: "HOME".into(),
                nprocs: 2,
                seconds: 12.5,
                events: 100,
            },
        ];
        let oh = overhead_from_points(&points);
        assert_eq!(oh.len(), 1);
        assert!((oh[0].percent - 25.0).abs() < 1e-9);
    }

    #[test]
    fn itc_records_more_events_than_home() {
        let home = measure(Benchmark::SpMz, Class::A, Tool::Home, 2);
        let itc = measure(Benchmark::SpMz, Class::A, Tool::Itc, 2);
        assert!(
            itc.events > 2 * home.events,
            "itc={} home={}",
            itc.events,
            home.events
        );
    }
}
