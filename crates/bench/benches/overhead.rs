//! Figure 7 bench target: the overhead computation across tools and
//! benchmarks (wall-clock of the sweep machinery; the overhead-percentage
//! series is printed by `report -- figure7`).

use criterion::{criterion_group, criterion_main, Criterion};
use home_bench::{figure_sweep, overhead_from_points};
use home_npb::{Benchmark, Class};
use std::time::Duration;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_overhead");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("sweep_small", |b| {
        b.iter(|| {
            let mut points = Vec::new();
            for bench in Benchmark::ALL {
                points.extend(figure_sweep(bench, Class::S, &[2, 4]));
            }
            overhead_from_points(&points)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
