//! The per-seed engine lifecycle as a standalone, independently drivable
//! object.
//!
//! [`check_with_sink`](crate::check_with_sink) runs one
//! simulate→detect→classify chain per scheduler seed. Everything after
//! "simulate" — the incremental [`RuleEngine`], the optional online
//! [`StreamDetector`], and the live [`ViolationSink`] tee — is the same
//! machinery whether the events come from a live simulation, a replayed
//! HBT recording, or a socket. [`Session`] packages that machinery behind
//! a four-step lifecycle:
//!
//! 1. **open** — [`Session::streaming`] (events flow through the online
//!    detector, races classify the moment they are discovered) or
//!    [`Session::classifier`] (no detector; the caller supplies races from
//!    an external batch detection pass).
//! 2. **feed** — [`Session::feed_event`], [`Session::feed_race`],
//!    [`Session::feed_incident`], any number of times, from any thread
//!    (all methods take `&self`).
//! 3. **drain** — every violation whose evidence completes is forwarded to
//!    the [`ViolationSink`] immediately, while feeding continues.
//! 4. **finish** — [`Session::finish`] runs the end-of-run evaluation and
//!    returns the canonical [`SessionOutcome`]; call it exactly once.
//!
//! The check pipeline drives one `Session` per seed; `home serve` opens
//! one per HBT trace section arriving on a connection; `home replay` and
//! `home analyze` open one per recorded section. All of them are
//! byte-identical to the batch rule matcher by construction — the parity
//! suites enforce it.

use crate::report::EmittedViolation;
use crate::rules::{RuleEngine, RuleOutcome};
use crate::sink::ViolationSink;
use home_dynamic::{DetectorConfig, Race};
use home_interp::MpiIncident;
use home_stream::{RaceSink, StreamDetector, StreamStats};
use home_trace::{Event, HomeError, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One seed's rule engine plus the violation sink its emissions go to.
///
/// The tap sits at the junction of the online pipeline: trace events and
/// runtime incidents are fed in directly, races arrive through the
/// [`RaceSink`] callback from the streaming detector, and every emission
/// the engine produces is forwarded to the [`ViolationSink`] immediately.
/// The batch arm drives the same tap post-hoc, so both engines share one
/// classification path.
///
/// Lock order: the engine mutex is only ever taken *inside* a tap call and
/// released before the call returns, while the detector's shard lock is
/// held *across* the `RaceSink` callback — the tap never calls back into
/// the detector, so the two locks nest in one fixed order (shard → engine)
/// and cannot deadlock.
struct EngineTap {
    engine: Mutex<RuleEngine>,
    out: Arc<dyn ViolationSink>,
}

impl EngineTap {
    fn new(seed: u64, out: Arc<dyn ViolationSink>) -> EngineTap {
        EngineTap {
            engine: Mutex::new(RuleEngine::for_seed(seed)),
            out,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RuleEngine> {
        self.engine
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn observe_event(&self, e: &Event) {
        let fresh = self.lock().observe_event(e);
        self.forward(&fresh);
    }

    /// Observe a batch of events with one lock acquisition — or none at
    /// all when every event in the batch is inert (the common case for
    /// monitored access/sync streams).
    fn observe_batch(&self, events: &[Event]) {
        if events.iter().all(RuleEngine::event_is_inert) {
            return;
        }
        let fresh = self.lock().observe_batch(events);
        self.forward(&fresh);
    }

    fn observe_incident(&self, incident: &MpiIncident) {
        let fresh = self.lock().observe_incident(incident);
        self.forward(&fresh);
    }

    /// End-of-run: run the batch-equivalent evaluation, forward whatever
    /// was not already emitted live, and return the canonical outcome.
    fn finish(&self) -> RuleOutcome {
        let fin = self.lock().finish();
        self.forward(&fin.remaining);
        fin.outcome
    }

    fn forward(&self, emissions: &[EmittedViolation]) {
        for v in emissions {
            self.out.violation(v);
        }
    }
}

impl RaceSink for EngineTap {
    fn on_race(&self, race: &Race) {
        let fresh = self.lock().observe_race(race);
        self.forward(&fresh);
    }
}

/// Everything one finished session produced.
#[derive(Debug, Clone, Default)]
pub struct SessionOutcome {
    /// The seed the session was opened with (provenance, not behavior).
    pub seed: u64,
    /// Events fed through [`Session::feed_event`].
    pub events: u64,
    /// Races: the online detector's result list for streaming sessions
    /// (ascending rank order, matching the batch engine); empty for
    /// classifier sessions, whose races the caller already holds.
    pub races: Vec<Race>,
    /// Classified violations in canonical rule order, deduplicated within
    /// the run — identical to the batch matcher's list.
    pub violations: Vec<crate::report::Violation>,
    /// Monitored races the rules could not classify (missing MPI call
    /// metadata on one side).
    pub unclassified: Vec<Race>,
    /// Detector statistics, for streaming sessions.
    pub stream_stats: Option<StreamStats>,
}

/// A reusable per-run detection + classification engine: open it, feed it
/// evidence, let it drain violations into a sink, finish it. See the
/// module docs for the lifecycle.
pub struct Session {
    seed: u64,
    tap: Arc<EngineTap>,
    detector: Option<StreamDetector>,
    events: AtomicU64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("seed", &self.seed)
            .field("streaming", &self.detector.is_some())
            .field("events", &self.events.load(Ordering::Relaxed))
            .finish()
    }
}

impl Session {
    /// Open a streaming session: events are classified *and* race-detected
    /// online. Races discovered by the detector re-enter the rule engine
    /// through its race callback, so violations whose evidence is a race
    /// also fire mid-run.
    pub fn streaming(seed: u64, detector: DetectorConfig, sink: Arc<dyn ViolationSink>) -> Session {
        let tap = Arc::new(EngineTap::new(seed, sink));
        let race_tap = Arc::clone(&tap) as Arc<dyn RaceSink>;
        Session {
            seed,
            tap,
            detector: Some(StreamDetector::with_race_sink(detector, race_tap)),
            events: AtomicU64::new(0),
        }
    }

    /// Open a classifier session: no online detector. The caller runs race
    /// detection elsewhere (the batch engine) and feeds the results in via
    /// [`Session::feed_race`].
    pub fn classifier(seed: u64, sink: Arc<dyn ViolationSink>) -> Session {
        Session {
            seed,
            tap: Arc::new(EngineTap::new(seed, sink)),
            detector: None,
            events: AtomicU64::new(0),
        }
    }

    /// The seed this session stamps onto emissions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Events fed so far.
    pub fn events_fed(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Feed one event: the rule engine observes it first (and releases its
    /// lock), then the online detector consumes it — the detector's race
    /// callback re-enters the engine, so this order is load-bearing.
    pub fn feed_event(&self, e: &Event) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.tap.observe_event(e);
        if let Some(detector) = &self.detector {
            detector.consume(e);
        }
    }

    /// Feed a batch of events through the amortized path: the rule engine
    /// observes the whole batch under one lock (or none, when every event
    /// is inert), then the detector consumes it with per-rank-run shard
    /// resolution. Byte-identical to feeding each event individually —
    /// the engine-before-detector order of [`Session::feed_event`] holds
    /// batch-wise, and every rule emission key is position-derived, so
    /// moving engine observations ahead of detector callbacks within a
    /// batch changes no emitted bytes.
    pub fn feed_batch(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        self.events
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        self.tap.observe_batch(events);
        if let Some(detector) = &self.detector {
            detector.consume_batch(events);
        }
    }

    /// Feed one externally detected race (classifier sessions; a streaming
    /// session's races arrive through its own detector instead).
    pub fn feed_race(&self, race: &Race) {
        self.tap.on_race(race);
    }

    /// Feed one runtime MPI incident.
    pub fn feed_incident(&self, incident: &MpiIncident) {
        self.tap.observe_incident(incident);
    }

    /// Finalize: drain the detector (streaming sessions), run the
    /// end-of-run rule evaluation, forward the remaining emissions, and
    /// return the canonical outcome. Call exactly once; a structural error
    /// stashed by the detector surfaces here as a typed [`HomeError`].
    pub fn finish(&self) -> Result<SessionOutcome, HomeError> {
        let (races, stream_stats) = match &self.detector {
            Some(detector) => {
                let (races, stats) = detector.finish()?;
                (races, Some(stats))
            }
            None => (Vec::new(), None),
        };
        let outcome = self.tap.finish();
        Ok(SessionOutcome {
            seed: self.seed,
            events: self.events.load(Ordering::Relaxed),
            races,
            violations: outcome.violations,
            unclassified: outcome.unclassified,
            stream_stats,
        })
    }
}

/// A streaming session plugs directly into `interp::run_with_sink`: every
/// simulator event is fed the moment it is recorded.
impl TraceSink for Session {
    fn record(&self, event: Event) {
        self.feed_event(&event);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::sink::{NullViolationSink, ViolationCollector};
    use crate::ViolationKind;
    use home_interp::{run, RunConfig};
    use home_ir::parse;

    fn collective_program() -> home_ir::Program {
        parse(
            r#"
            program sess {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) { mpi_barrier(); }
                mpi_finalize();
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn streaming_session_matches_batch_classification() {
        let program = collective_program();
        let cfg = RunConfig::test(2, 1);
        let result = run(&program, &cfg);

        // Streaming session fed event-at-a-time.
        let session = Session::streaming(
            1,
            home_dynamic::DetectorConfig::hybrid(),
            Arc::new(NullViolationSink),
        );
        for e in result.trace.events() {
            session.feed_event(e);
        }
        for i in &result.mpi_errors {
            session.feed_incident(i);
        }
        let streamed = session.finish().unwrap();

        // Batch reference: detect then classify.
        let races =
            home_dynamic::detect(&result.trace, &home_dynamic::DetectorConfig::hybrid()).unwrap();
        let outcome = crate::rules::match_rules(&result.trace, &races, &result.mpi_errors);

        assert_eq!(streamed.violations, outcome.violations);
        assert_eq!(
            format!("{:?}", streamed.races),
            format!("{:?}", races),
            "race lists must match"
        );
        assert_eq!(streamed.events, result.trace.events().len() as u64);
        assert!(streamed
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::CollectiveCall));
    }

    #[test]
    fn classifier_session_accepts_external_races() {
        let program = collective_program();
        let cfg = RunConfig::test(2, 1);
        let result = run(&program, &cfg);
        let races =
            home_dynamic::detect(&result.trace, &home_dynamic::DetectorConfig::hybrid()).unwrap();

        let collector = Arc::new(ViolationCollector::new());
        let session = Session::classifier(7, collector.clone());
        for e in result.trace.events() {
            session.feed_event(e);
        }
        for race in &races {
            session.feed_race(race);
        }
        for i in &result.mpi_errors {
            session.feed_incident(i);
        }
        let out = session.finish().unwrap();
        assert!(out.races.is_empty(), "classifier sessions own no detector");
        assert!(out.stream_stats.is_none());

        // Every canonical violation was also delivered to the sink, with
        // the session's seed stamped on.
        let emitted = collector.emissions();
        for v in &out.violations {
            assert!(
                emitted.iter().any(|e| &e.violation == v && e.seed == 7),
                "missing emission for {v}"
            );
        }
    }
}
