//! Identifier newtypes shared across the HOME stack.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr, $repr:ty) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
            Serialize, Deserialize, Default,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Raw value.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }

            /// Raw value as `usize`, for indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// An MPI process rank.
    Rank, "rank", u32
);
id_newtype!(
    /// An OpenMP thread id within one MPI process (master is 0).
    Tid, "tid", u32
);
id_newtype!(
    /// A dynamic instance of an OpenMP parallel region.
    RegionId, "region", u64
);
id_newtype!(
    /// A barrier object (named or implicit).
    BarrierId, "barrier", u32
);
id_newtype!(
    /// An MPI communicator.
    CommId, "comm", u32
);
id_newtype!(
    /// An MPI request object (nonblocking operations).
    ReqId, "req", u64
);
id_newtype!(
    /// A lock (OpenMP critical section or runtime lock), interned by name.
    LockId, "lock", u32
);
id_newtype!(
    /// A shared program variable, interned by name.
    VarId, "var", u32
);

/// `MPI_COMM_WORLD`.
pub const COMM_WORLD: CommId = CommId(0);

/// A source location inside a simulated program (DSL file/line or a builder
/// label). Used to point violation reports back at code.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default, PartialOrd, Ord)]
pub struct SrcLoc {
    /// File (or synthetic unit) name.
    pub file: String,
    /// 1-based line number; 0 when unknown.
    pub line: u32,
}

impl SrcLoc {
    /// Construct a location.
    pub fn new(file: impl Into<String>, line: u32) -> Self {
        SrcLoc {
            file: file.into(),
            line,
        }
    }

    /// An unknown location.
    pub fn unknown() -> Self {
        SrcLoc::default()
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.file.is_empty() {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.file, self.line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(Rank(3).to_string(), "rank3");
        assert_eq!(Tid(1).to_string(), "tid1");
        assert_eq!(LockId(0).to_string(), "lock0");
        assert_eq!(COMM_WORLD.to_string(), "comm0");
    }

    #[test]
    fn indexing() {
        assert_eq!(Rank(5).index(), 5);
        assert_eq!(ReqId(9).raw(), 9);
        assert_eq!(Tid::from(2), Tid(2));
    }

    #[test]
    fn srcloc_display() {
        assert_eq!(SrcLoc::new("lu.hmp", 12).to_string(), "lu.hmp:12");
        assert_eq!(SrcLoc::unknown().to_string(), "<unknown>");
    }

    #[test]
    fn srcloc_serde_roundtrip() {
        let loc = SrcLoc::new("a.hmp", 7);
        let json = serde_json::to_string(&loc).unwrap();
        let back: SrcLoc = serde_json::from_str(&json).unwrap();
        assert_eq!(loc, back);
    }
}
