//! The workspace-wide typed error taxonomy.
//!
//! Every layer of the pipeline reports failures through [`HomeError`]
//! instead of panicking: the trace layer for malformed input, the dynamic
//! detector for structurally inconsistent traces, the interpreter for
//! execution failures, and the check pipeline for per-seed faults. The
//! taxonomy lives here, in the lowest crate of the dependency DAG, so every
//! other crate can return it without cycles; the `home` facade re-exports
//! it as `home::HomeError`.
//!
//! The design goal is graceful degradation: one poisoned input (a corrupt
//! offline trace, a panicking seed worker) must never abort the whole run —
//! it becomes a typed error the caller can attach to a partial report.

use std::fmt;

/// Convenience alias used across the workspace.
pub type HomeResult<T> = Result<T, HomeError>;

/// Everything that can go wrong on a fallible path of the HOME pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HomeError {
    /// Trace input (JSON) could not be parsed at all.
    TraceParse {
        /// What the parser objected to.
        message: String,
        /// Byte offset into the input, when the parser knows it.
        offset: Option<usize>,
    },
    /// The trace parsed but is structurally inconsistent — e.g. a join
    /// event references a region that was never forked. Produced by the
    /// dynamic detector when an offline trace was hand-built or corrupted.
    CorruptTrace {
        /// What invariant the trace violates.
        message: String,
    },
    /// The interpreter / simulation layer failed.
    Exec {
        /// The MPI rank the failure occurred on, when attributable.
        rank: Option<u32>,
        /// Failure description.
        message: String,
    },
    /// One seed's simulate→detect→match chain failed (panic or error);
    /// the remaining seeds' results are unaffected.
    Seed {
        /// The scheduler seed whose chain failed.
        seed: u64,
        /// Failure description (panic payload or wrapped error).
        message: String,
    },
}

impl HomeError {
    /// Build a [`HomeError::TraceParse`], extracting the byte offset from
    /// parser messages of the form `... at byte N`.
    pub fn trace_parse(message: impl Into<String>) -> HomeError {
        let message = message.into();
        let offset = message
            .rsplit_once(" at byte ")
            .and_then(|(_, n)| n.trim().parse::<usize>().ok());
        HomeError::TraceParse { message, offset }
    }

    /// Build a [`HomeError::CorruptTrace`].
    pub fn corrupt_trace(message: impl Into<String>) -> HomeError {
        HomeError::CorruptTrace {
            message: message.into(),
        }
    }

    /// Build a [`HomeError::Seed`] for `seed`.
    pub fn seed(seed: u64, message: impl Into<String>) -> HomeError {
        HomeError::Seed {
            seed,
            message: message.into(),
        }
    }

    /// Byte offset into the offending input, for parse errors that carry
    /// one (used by `home analyze` diagnostics).
    pub fn byte_offset(&self) -> Option<usize> {
        match self {
            HomeError::TraceParse { offset, .. } => *offset,
            _ => None,
        }
    }

    /// Short machine-readable category label (stable across messages).
    pub fn category(&self) -> &'static str {
        match self {
            HomeError::TraceParse { .. } => "trace-parse",
            HomeError::CorruptTrace { .. } => "corrupt-trace",
            HomeError::Exec { .. } => "exec",
            HomeError::Seed { .. } => "seed",
        }
    }
}

impl fmt::Display for HomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HomeError::TraceParse { message, .. } => write!(f, "invalid trace: {message}"),
            HomeError::CorruptTrace { message } => write!(f, "corrupt trace: {message}"),
            HomeError::Exec {
                rank: Some(r),
                message,
            } => write!(f, "execution failed on rank {r}: {message}"),
            HomeError::Exec {
                rank: None,
                message,
            } => write!(f, "execution failed: {message}"),
            HomeError::Seed { seed, message } => write!(f, "seed {seed} failed: {message}"),
        }
    }
}

impl std::error::Error for HomeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_parse_extracts_byte_offset() {
        let e = HomeError::trace_parse("expected `,` or `]` in array at byte 17");
        assert_eq!(e.byte_offset(), Some(17));
        assert_eq!(e.category(), "trace-parse");
        assert!(e.to_string().contains("at byte 17"));
    }

    #[test]
    fn trace_parse_without_offset() {
        let e = HomeError::trace_parse("missing field `seq` while decoding Event");
        assert_eq!(e.byte_offset(), None);
    }

    #[test]
    fn display_formats_every_variant() {
        assert!(HomeError::corrupt_trace("join of unknown region")
            .to_string()
            .starts_with("corrupt trace:"));
        assert!(HomeError::seed(7, "boom").to_string().contains("seed 7"));
        let e = HomeError::Exec {
            rank: Some(3),
            message: "undeclared variable".into(),
        };
        assert!(e.to_string().contains("rank 3"));
        let e = HomeError::Exec {
            rank: None,
            message: "x".into(),
        };
        assert_eq!(e.category(), "exec");
        assert!(e.byte_offset().is_none());
    }
}
