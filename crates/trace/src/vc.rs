//! Vector clocks for happens-before analysis.
//!
//! Slots are dense thread-segment indices assigned by the analysis (one per
//! `(region, tid)` segment plus one per rank's sequential master segment).
//! The representation auto-grows; missing entries are zero.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A vector clock: a map from thread-segment slot to logical time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// A clock with one nonzero component (`slot` ↦ `value`).
    pub fn singleton(slot: usize, value: u64) -> Self {
        let mut vc = VectorClock::new();
        vc.set(slot, value);
        vc
    }

    /// Component for `slot` (zero if absent).
    #[inline]
    pub fn get(&self, slot: usize) -> u64 {
        self.entries.get(slot).copied().unwrap_or(0)
    }

    /// Set the component for `slot`.
    pub fn set(&mut self, slot: usize, value: u64) {
        if self.entries.len() <= slot {
            self.entries.resize(slot + 1, 0);
        }
        self.entries[slot] = value;
    }

    /// Increment the component for `slot` by one, returning the new value.
    pub fn tick(&mut self, slot: usize) -> u64 {
        let v = self.get(slot) + 1;
        self.set(slot, v);
        v
    }

    /// Pointwise maximum with `other` (the classic VC join).
    pub fn join(&mut self, other: &VectorClock) {
        if self.entries.len() < other.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, &v) in other.entries.iter().enumerate() {
            if v > self.entries[i] {
                self.entries[i] = v;
            }
        }
    }

    /// `self ≤ other` in the pointwise partial order: every component of
    /// `self` is ≤ the corresponding component of `other`.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }

    /// Happens-before: `self ≤ other` and `self ≠ other`.
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.leq(other) && !other.leq(self)
    }

    /// Neither clock happens-before the other — the events are concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Partial-order comparison (`None` for concurrent clocks).
    pub fn partial_cmp_vc(&self, other: &VectorClock) -> Option<Ordering> {
        match (self.leq(other), other.leq(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Number of allocated components (trailing zeros excluded is not
    /// guaranteed; this is the raw storage width).
    pub fn width(&self) -> usize {
        self.entries.len()
    }

    /// Iterate over `(slot, value)` pairs with nonzero value.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0)
            .map(|(i, &v)| (i, v))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (slot, v)) in self.iter_nonzero().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{slot}:{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_leq_everything() {
        let z = VectorClock::new();
        let mut a = VectorClock::new();
        a.tick(3);
        assert!(z.leq(&a));
        assert!(z.happens_before(&a));
        assert!(!a.leq(&z));
    }

    #[test]
    fn concurrent_clocks() {
        let a = VectorClock::singleton(0, 1);
        let b = VectorClock::singleton(1, 1);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
        assert_eq!(a.partial_cmp_vc(&b), None);
    }

    #[test]
    fn join_is_lub() {
        let a = VectorClock::singleton(0, 3);
        let b = VectorClock::singleton(1, 5);
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 3);
        assert_eq!(j.get(1), 5);
    }

    #[test]
    fn tick_monotone() {
        let mut a = VectorClock::new();
        let before = a.clone();
        a.tick(2);
        assert!(before.happens_before(&a));
        assert_eq!(a.get(2), 1);
        assert_eq!(a.tick(2), 2);
    }

    #[test]
    fn partial_cmp_cases() {
        let mut a = VectorClock::new();
        a.set(0, 1);
        let mut b = a.clone();
        b.set(1, 4);
        assert_eq!(a.partial_cmp_vc(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_vc(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_vc(&a.clone()), Some(Ordering::Equal));
    }

    #[test]
    fn growth_treats_missing_as_zero() {
        let short = VectorClock::singleton(0, 1);
        let mut long = VectorClock::singleton(5, 1);
        long.set(0, 1);
        assert!(short.leq(&long));
    }

    #[test]
    fn display_nonzero_only() {
        let mut a = VectorClock::new();
        a.set(1, 2);
        a.set(4, 7);
        assert_eq!(a.to_string(), "⟨1:2, 4:7⟩");
    }
}
