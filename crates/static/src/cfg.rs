//! Control-flow graph construction over the IR.
//!
//! The CFG serves two purposes, mirroring the paper:
//! 1. a *linearized* node list with explicit `ompParallelBegin`/
//!    `ompParallelEnd` markers — the exact structure Algorithm 1 iterates;
//! 2. real successor edges for reachability (MPI calls in unreachable code
//!    are never instrumented).

use home_ir::{NodeId, Program, Stmt, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which OpenMP construct a begin/end marker belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OmpRegionKind {
    Parallel,
    For,
    Sections,
    Single,
    Master,
    Critical,
}

/// One CFG node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CfgNode {
    /// Function entry.
    Entry,
    /// Function exit.
    Exit,
    /// A simple statement (decl, assign, compute, MPI call, omp barrier).
    Stmt(NodeId),
    /// A branch head (`if` condition).
    Branch(NodeId),
    /// A loop head (`for` / `omp for`).
    LoopHead(NodeId),
    /// Start of an OpenMP structured block.
    OmpBegin(NodeId, OmpRegionKind),
    /// End of an OpenMP structured block.
    OmpEnd(NodeId, OmpRegionKind),
}

impl CfgNode {
    /// The IR statement this node derives from, if any.
    pub fn stmt_id(&self) -> Option<NodeId> {
        match self {
            CfgNode::Stmt(id)
            | CfgNode::Branch(id)
            | CfgNode::LoopHead(id)
            | CfgNode::OmpBegin(id, _)
            | CfgNode::OmpEnd(id, _) => Some(*id),
            _ => None,
        }
    }
}

/// The control-flow graph of a program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cfg {
    /// Nodes; index 0 is [`CfgNode::Entry`], index 1 is [`CfgNode::Exit`].
    pub nodes: Vec<CfgNode>,
    /// Directed edges as (from, to) node indices.
    pub edges: Vec<(usize, usize)>,
}

const ENTRY: usize = 0;
const EXIT: usize = 1;

impl Cfg {
    /// Build the CFG of `program`'s main body.
    pub fn build(program: &Program) -> Cfg {
        Cfg::build_block(&program.body)
    }

    /// Build a CFG over an arbitrary statement block (used per function
    /// for the interprocedural analysis).
    pub fn build_block(stmts: &[Stmt]) -> Cfg {
        let mut b = Builder {
            nodes: vec![CfgNode::Entry, CfgNode::Exit],
            edges: Vec::new(),
        };
        let last = b.block(stmts, ENTRY);
        b.edge(last, EXIT);
        Cfg {
            nodes: b.nodes,
            edges: b.edges,
        }
    }

    /// Entry node index.
    pub fn entry(&self) -> usize {
        ENTRY
    }

    /// Exit node index.
    pub fn exit(&self) -> usize {
        EXIT
    }

    /// Successors of node `n`.
    pub fn succs(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges
            .iter()
            .filter(move |&&(f, _)| f == n)
            .map(|&(_, t)| t)
    }

    /// Node indices reachable from entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = VecDeque::from([ENTRY]);
        seen[ENTRY] = true;
        while let Some(n) = queue.pop_front() {
            for s in self.succs(n) {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        seen
    }

    /// The linearized node sequence in program order — what Algorithm 1
    /// iterates. (Construction pushes nodes in program order, so this is
    /// simply the node list minus entry/exit.)
    pub fn linearized(&self) -> impl Iterator<Item = (usize, &CfgNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ENTRY && *i != EXIT)
    }

    /// Number of nodes (including entry/exit).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A CFG always has entry and exit.
    pub fn is_empty(&self) -> bool {
        false
    }
}

struct Builder {
    nodes: Vec<CfgNode>,
    edges: Vec<(usize, usize)>,
}

impl Builder {
    fn push(&mut self, node: CfgNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }

    /// Wire `stmts` sequentially after `pred`; returns the last node.
    fn block(&mut self, stmts: &[Stmt], mut pred: usize) -> usize {
        for s in stmts {
            pred = self.stmt(s, pred);
        }
        pred
    }

    /// Wire one statement after `pred`; returns its "after" node.
    fn stmt(&mut self, s: &Stmt, pred: usize) -> usize {
        match &s.kind {
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                let head = self.push(CfgNode::Branch(s.id));
                self.edge(pred, head);
                let then_last = self.block(then_block, head);
                let else_last = self.block(else_block, head);
                // Join node: reuse a synthetic Stmt? Use the branch's end by
                // adding a no-op join via edges into the *next* statement.
                // We model the join by returning a fresh join marker node.
                let join = self.push(CfgNode::Stmt(s.id));
                self.edge(then_last, join);
                self.edge(else_last, join);
                join
            }
            StmtKind::For { body, .. } => {
                let head = self.push(CfgNode::LoopHead(s.id));
                self.edge(pred, head);
                let body_last = self.block(body, head);
                // Back edge and fall-through.
                self.edge(body_last, head);
                head
            }
            StmtKind::OmpParallel { body, .. } => {
                self.region(s, body, OmpRegionKind::Parallel, pred)
            }
            StmtKind::OmpFor { body, .. } => {
                let begin = self.push(CfgNode::OmpBegin(s.id, OmpRegionKind::For));
                self.edge(pred, begin);
                let head = self.push(CfgNode::LoopHead(s.id));
                self.edge(begin, head);
                let body_last = self.block(body, head);
                self.edge(body_last, head);
                let end = self.push(CfgNode::OmpEnd(s.id, OmpRegionKind::For));
                self.edge(head, end);
                end
            }
            StmtKind::OmpSections { sections } => {
                let begin = self.push(CfgNode::OmpBegin(s.id, OmpRegionKind::Sections));
                self.edge(pred, begin);
                let end = self.push(CfgNode::OmpEnd(s.id, OmpRegionKind::Sections));
                for sec in sections {
                    let last = self.block(sec, begin);
                    self.edge(last, end);
                }
                end
            }
            StmtKind::OmpSingle { body } => self.region(s, body, OmpRegionKind::Single, pred),
            StmtKind::OmpMaster { body } => self.region(s, body, OmpRegionKind::Master, pred),
            StmtKind::OmpCritical { body, .. } => {
                self.region(s, body, OmpRegionKind::Critical, pred)
            }
            _ => {
                let n = self.push(CfgNode::Stmt(s.id));
                self.edge(pred, n);
                n
            }
        }
    }

    fn region(&mut self, s: &Stmt, body: &[Stmt], kind: OmpRegionKind, pred: usize) -> usize {
        let begin = self.push(CfgNode::OmpBegin(s.id, kind));
        self.edge(pred, begin);
        let last = self.block(body, begin);
        let end = self.push(CfgNode::OmpEnd(s.id, kind));
        self.edge(last, end);
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_ir::parse;

    #[test]
    fn straight_line_cfg() {
        let p = parse("program s { mpi_init(); compute(1); mpi_finalize(); }").unwrap();
        let cfg = Cfg::build(&p);
        // entry, exit + 3 statements.
        assert_eq!(cfg.len(), 5);
        let reach = cfg.reachable();
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn parallel_region_markers_bracket_body() {
        let p =
            parse("program r { omp parallel num_threads(2) { mpi_barrier(); } mpi_finalize(); }")
                .unwrap();
        let cfg = Cfg::build(&p);
        let seq: Vec<&CfgNode> = cfg.linearized().map(|(_, n)| n).collect();
        let begin = seq
            .iter()
            .position(|n| matches!(n, CfgNode::OmpBegin(_, OmpRegionKind::Parallel)))
            .unwrap();
        let end = seq
            .iter()
            .position(|n| matches!(n, CfgNode::OmpEnd(_, OmpRegionKind::Parallel)))
            .unwrap();
        let barrier = seq
            .iter()
            .position(|n| {
                matches!(n, CfgNode::Stmt(_)) && {
                    if let CfgNode::Stmt(id) = n {
                        matches!(
                            p.stmt(*id).unwrap().kind,
                            home_ir::StmtKind::Mpi(home_ir::MpiStmt::Barrier { .. })
                        )
                    } else {
                        false
                    }
                }
            })
            .unwrap();
        assert!(begin < barrier && barrier < end, "begin<{barrier}<{end}");
    }

    #[test]
    fn if_branches_join() {
        let p =
            parse("program b { if (rank == 0) { compute(1); } else { compute(2); } compute(3); }")
                .unwrap();
        let cfg = Cfg::build(&p);
        // The branch head must have two successors.
        let (branch_ix, _) = cfg
            .linearized()
            .find(|(_, n)| matches!(n, CfgNode::Branch(_)))
            .unwrap();
        assert_eq!(cfg.succs(branch_ix).count(), 2);
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn loop_has_back_edge() {
        let p = parse("program l { for i in 0..3 { compute(i); } }").unwrap();
        let cfg = Cfg::build(&p);
        let (head_ix, _) = cfg
            .linearized()
            .find(|(_, n)| matches!(n, CfgNode::LoopHead(_)))
            .unwrap();
        // Some node has an edge back to the loop head.
        assert!(
            cfg.edges.iter().any(|&(f, t)| t == head_ix && f > head_ix),
            "missing back edge"
        );
    }

    #[test]
    fn sections_fan_out_and_rejoin() {
        let p = parse(
            "program s { omp parallel { omp sections { section { compute(1); } section { compute(2); } } } }",
        )
        .unwrap();
        let cfg = Cfg::build(&p);
        let (begin_ix, _) = cfg
            .linearized()
            .find(|(_, n)| matches!(n, CfgNode::OmpBegin(_, OmpRegionKind::Sections)))
            .unwrap();
        assert_eq!(cfg.succs(begin_ix).count(), 2, "one successor per section");
    }

    #[test]
    fn omp_for_emits_begin_loop_end() {
        let p = parse("program f { omp parallel { omp for i in 0..4 { compute(1); } } }").unwrap();
        let cfg = Cfg::build(&p);
        let kinds: Vec<String> = cfg.linearized().map(|(_, n)| format!("{n:?}")).collect();
        assert!(kinds
            .iter()
            .any(|k| k.contains("OmpBegin") && k.contains("For")));
        assert!(kinds.iter().any(|k| k.contains("LoopHead")));
        assert!(kinds
            .iter()
            .any(|k| k.contains("OmpEnd") && k.contains("For")));
    }
}
