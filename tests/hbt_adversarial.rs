//! Adversarial HBT corpus: every byte of an HBT stream is untrusted, so
//! every reader must return a typed error (with a byte offset) or the
//! identical report — never panic, never allocate unbounded memory.
//!
//! Three families of hostile input:
//!
//! * seeded random byte mutations of a real recorded trace, checked for
//!   streaming-reader vs slice-reader parity (same records or the same
//!   error string);
//! * crafted records — giant varint lengths, lying lengths, varint
//!   overflow, oversized manifest counts — against all three readers;
//! * section-boundary attacks — truncation at a `RUN` boundary with a
//!   forged end marker, spliced manifests from a different recording,
//!   records appended after the manifest — caught by the manifest check.

use home::prelude::*;
use home::stream::{
    decode_sections, HbtMmapReader, HbtReader, HbtRecord, HbtSliceReader, HbtWriter, ManifestCheck,
    HBT_MAGIC, HBT_VERSION, MAX_RECORD_LEN,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::Cursor;
use std::sync::Arc;

const FIGURE2: &str = "programs/figure2.hmp";

/// Record `program` under `seeds` exactly like `home record`: one `RUN`
/// record per seed, the instrumented events, then the run's incidents.
fn record_bytes(path: &str, seeds: &[u64]) -> Vec<u8> {
    let source = std::fs::read_to_string(path).expect("test program exists");
    let program = parse(&source).expect("test program parses");
    let checklist = Arc::new(analyze(&program).checklist.clone());
    let mut writer = HbtWriter::new(Vec::new()).expect("header write");
    for &seed in seeds {
        writer.begin_run(seed).expect("run record");
        let mut cfg = RunConfig::test(2, seed)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(Arc::clone(&checklist));
        cfg.threads_per_proc = 2;
        cfg.sched.policy = SchedPolicy::Random;
        let result = run(&program, &cfg);
        for e in result.trace.events() {
            writer.write_event(e).expect("event record");
        }
        for i in &result.mpi_errors {
            writer
                .write_incident(&home::stream::TraceIncident {
                    rank: i.rank,
                    line: i.line,
                    call: i.call.clone(),
                    error: i.error.clone(),
                })
                .expect("incident record");
        }
    }
    writer.finish().expect("trailer write")
}

fn header() -> Vec<u8> {
    let mut out = HBT_MAGIC.to_vec();
    out.push(HBT_VERSION);
    out
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Drain the streaming reader, running the manifest check like
/// `decode_sections` does. Ok(records) or the first error's message.
fn stream_read(bytes: &[u8]) -> Result<Vec<HbtRecord>, String> {
    let mut reader = HbtReader::new(Cursor::new(bytes)).map_err(|e| e.to_string())?;
    let mut check = ManifestCheck::new();
    let mut records = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(record)) => {
                check
                    .on_record(&record, reader.offset())
                    .map_err(|e| e.to_string())?;
                records.push(record);
            }
            Ok(None) => break,
            Err(e) => return Err(e.to_string()),
        }
    }
    check.finish(reader.offset()).map_err(|e| e.to_string())?;
    Ok(records)
}

/// Same drive over the zero-copy slice reader.
fn slice_read(bytes: &[u8]) -> Result<Vec<HbtRecord>, String> {
    let mut reader = HbtSliceReader::new(bytes).map_err(|e| e.to_string())?;
    let mut check = ManifestCheck::new();
    let mut records = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(record)) => {
                check
                    .on_record(&record, reader.offset())
                    .map_err(|e| e.to_string())?;
                records.push(record);
            }
            Ok(None) => break,
            Err(e) => return Err(e.to_string()),
        }
    }
    check.finish(reader.offset()).map_err(|e| e.to_string())?;
    Ok(records)
}

/// Byte offsets at which each record of a well-formed stream begins,
/// plus each record. Walked with the streaming reader.
fn record_starts(bytes: &[u8]) -> Vec<(u64, HbtRecord)> {
    let mut reader = HbtReader::new(Cursor::new(bytes)).expect("valid header");
    let mut out = Vec::new();
    loop {
        let start = reader.offset();
        match reader.next_record().expect("valid record") {
            Some(record) => out.push((start, record)),
            None => break,
        }
    }
    out
}

#[test]
fn random_byte_mutations_never_panic_and_readers_agree() {
    let base = record_bytes(FIGURE2, &[1, 2]);
    assert!(base.len() > 64, "recording is non-trivial");
    for case in 0u64..200 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xADE5_0000 + case);
        let mut bytes = base.clone();
        if rng.gen_bool(0.25) {
            // Truncate somewhere (including inside the header).
            let cut = rng.gen_range(0u64..bytes.len() as u64) as usize;
            bytes.truncate(cut);
        } else {
            let flips = 1 + rng.gen_range(0u64..4) as usize;
            for _ in 0..flips {
                let at = rng.gen_range(0u64..bytes.len() as u64) as usize;
                bytes[at] = rng.gen_range(0u64..256) as u8;
            }
        }

        let streamed = stream_read(&bytes);
        let sliced = slice_read(&bytes);
        assert_eq!(
            streamed, sliced,
            "case {case}: streaming and slice readers disagree"
        );
        if let Err(msg) = &streamed {
            assert!(
                msg.contains("byte"),
                "case {case}: error lacks a byte offset: {msg}"
            );
        }

        // The full decode + analyze path must never panic either: a typed
        // error or a verdict, nothing else.
        let outcome = std::panic::catch_unwind(|| {
            decode_sections(&bytes).and_then(|s| home::serve::analyze_sections(&s))
        });
        assert!(outcome.is_ok(), "case {case}: decode/analyze panicked");
    }
}

#[test]
fn giant_record_length_is_a_typed_error_on_every_reader() {
    let mut bytes = header();
    put_varint(&mut bytes, MAX_RECORD_LEN + 1);

    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("oversized length must be rejected");
        assert!(
            msg.contains("exceeds limit") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
    let msg = decode_sections(&bytes)
        .expect_err("decode_sections must reject it")
        .to_string();
    assert!(msg.contains("exceeds limit"), "unexpected error: {msg}");

    // Same through the mmap reader (a real file, so the mapping path runs).
    let dir = tmp_dir("giant_varint");
    let path = dir.join("giant.hbt");
    std::fs::write(&path, &bytes).expect("write trace");
    let mapped = HbtMmapReader::open(&path).expect("mmap open");
    let msg = mapped
        .sections()
        .expect_err("mmap reader must reject it")
        .to_string();
    assert!(msg.contains("exceeds limit"), "unexpected error: {msg}");
}

#[test]
fn lying_record_length_truncates_without_oom() {
    // The record claims ~256 MiB but only 64 bytes follow. The streaming
    // reader must report truncation after at most one bounded chunk — not
    // allocate the full claimed length up front.
    let mut bytes = header();
    put_varint(&mut bytes, MAX_RECORD_LEN - 1);
    bytes.extend_from_slice(&[2u8; 64]);

    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("lying length must truncate");
        assert!(
            msg.contains("truncated") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn varint_overflow_is_a_typed_error() {
    let mut bytes = header();
    bytes.extend_from_slice(&[0xFF; 10]);
    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("varint overflow must be rejected");
        assert!(
            msg.contains("varint") && msg.contains("byte"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn giant_manifest_count_is_bounded_by_record_size() {
    // A manifest record whose declared section count dwarfs its payload
    // must be rejected before any allocation sized from it.
    let mut payload = vec![4u8]; // REC_MANIFEST
    put_varint(&mut payload, u64::MAX >> 2);
    let mut bytes = header();
    put_varint(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(&payload);
    bytes.push(0);

    for result in [stream_read(&bytes), slice_read(&bytes)] {
        let msg = result.expect_err("oversized manifest count must be rejected");
        assert!(
            msg.contains("manifest section count") && msg.contains("exceeds record size"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn truncation_at_a_section_boundary_is_detected() {
    // Cut a two-run recording right where the second RUN record begins and
    // forge a clean end marker. Without the manifest this parsed as a
    // one-run trace; the manifest check must now reject it.
    let base = record_bytes(FIGURE2, &[1, 2]);
    let starts = record_starts(&base);
    let second_run = starts
        .iter()
        .filter(|(_, r)| matches!(r, HbtRecord::Run { .. }))
        .nth(1)
        .map(|(at, _)| *at)
        .expect("two RUN records");

    let mut forged = base[..second_run as usize].to_vec();
    forged.push(0); // forged end marker
    for result in [stream_read(&forged), slice_read(&forged)] {
        let msg = result.expect_err("boundary truncation must be rejected");
        assert!(
            msg.contains("ends without a section manifest"),
            "unexpected error: {msg}"
        );
    }
    let msg = decode_sections(&forged)
        .expect_err("decode_sections must reject it")
        .to_string();
    assert!(msg.contains("ends without a section manifest"));
}

#[test]
fn spliced_manifest_with_wrong_section_count_is_detected() {
    // Body of a one-run recording + manifest of a two-run recording.
    let one = record_bytes(FIGURE2, &[1]);
    let two = record_bytes(FIGURE2, &[1, 2]);
    let manifest_at = |bytes: &[u8]| {
        record_starts(bytes)
            .iter()
            .find(|(_, r)| matches!(r, HbtRecord::Manifest { .. }))
            .map(|(at, _)| *at)
            .expect("recording ends with a manifest") as usize
    };
    let mut spliced = one[..manifest_at(&one)].to_vec();
    spliced.extend_from_slice(&two[manifest_at(&two)..]);

    for result in [stream_read(&spliced), slice_read(&spliced)] {
        let msg = result.expect_err("section-count mismatch must be rejected");
        assert!(
            msg.contains("declares 2 section(s)") && msg.contains("contains 1"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn spliced_manifest_with_wrong_seed_is_detected() {
    // Same section count, different seed list: run seed 2's body under a
    // manifest recorded for seed 9.
    let real = record_bytes(FIGURE2, &[2]);
    let decoy = record_bytes(FIGURE2, &[9]);
    let manifest_at = |bytes: &[u8]| {
        record_starts(bytes)
            .iter()
            .find(|(_, r)| matches!(r, HbtRecord::Manifest { .. }))
            .map(|(at, _)| *at)
            .expect("recording ends with a manifest") as usize
    };
    let mut spliced = real[..manifest_at(&real)].to_vec();
    spliced.extend_from_slice(&decoy[manifest_at(&decoy)..]);

    for result in [stream_read(&spliced), slice_read(&spliced)] {
        let msg = result.expect_err("seed mismatch must be rejected");
        assert!(
            msg.contains("seed list disagrees"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn records_after_the_manifest_are_rejected() {
    // Append a copy of the first event record after the manifest and
    // re-terminate: the manifest must be the final record.
    let base = record_bytes(FIGURE2, &[1]);
    let starts = record_starts(&base);
    let (event_start, _) = starts
        .iter()
        .find(|(_, r)| matches!(r, HbtRecord::Event(_)))
        .expect("recording has events");
    let event_end = starts
        .iter()
        .map(|(at, _)| *at)
        .chain(std::iter::once(base.len() as u64 - 1))
        .find(|&at| at > *event_start)
        .expect("next record start");

    let mut forged = base[..base.len() - 1].to_vec(); // drop end marker
    forged.extend_from_slice(&base[*event_start as usize..event_end as usize]);
    forged.push(0);

    for result in [stream_read(&forged), slice_read(&forged)] {
        let msg = result.expect_err("record after manifest must be rejected");
        assert!(
            msg.contains("record after the section manifest"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn mutated_traces_share_one_verdict_across_offline_readers() {
    // For mutations that still decode, the slice path and the mmap path
    // must produce the same sections and the same analyze verdict.
    let base = record_bytes(FIGURE2, &[3, 4]);
    let dir = tmp_dir("mutation_parity");
    for case in 0u64..40 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x9A17_0000 + case);
        let mut bytes = base.clone();
        let at = rng.gen_range(0u64..bytes.len() as u64) as usize;
        bytes[at] = rng.gen_range(0u64..256) as u8;

        let from_slice = decode_sections(&bytes);
        let path = dir.join(format!("case{case}.hbt"));
        std::fs::write(&path, &bytes).expect("write mutated trace");
        let from_mmap = HbtMmapReader::open(&path).and_then(|m| m.sections());
        match (from_slice, from_mmap) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "case {case}: section counts differ");
                let va = home::serve::analyze_sections(&a);
                let vb = home::serve::analyze_sections(&b);
                assert_eq!(
                    format!("{va:?}"),
                    format!("{vb:?}"),
                    "case {case}: verdicts differ"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "case {case}: errors differ");
            }
            (a, b) => panic!(
                "case {case}: readers disagree on validity: slice={:?} mmap={:?}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}
