//! Offline `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Works without `syn`/`quote` by walking the `proc_macro` token trees
//! directly. Supports exactly what this workspace derives on: non-generic
//! structs (unit / tuple / named) and enums (unit / tuple / struct
//! variants), with `#[serde(default)]` on named struct fields as the only
//! recognized serde attribute. The representation matches
//! serde's defaults: named structs become objects, newtype structs unwrap
//! to their inner value, unit enum variants become strings, and data
//! variants become externally tagged single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant. Named fields carry whether
/// they are marked `#[serde(default)]`.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<(String, bool)>),
}

/// Parsed derive input.
enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Skip one `#[...]` attribute if present; returns its bracketed body.
fn skip_attr(
    iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Option<TokenStream> {
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => Some(g.stream()),
            other => panic!("serde shim derive: malformed attribute near {other:?}"),
        }
    } else {
        None
    }
}

/// Is this attribute body `serde(...)`? Returns the inner arguments, and
/// panics on any serde argument other than `default` — the shim must not
/// silently ignore semantics it does not implement.
fn serde_default_attr(body: TokenStream) -> bool {
    let mut iter = body.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let args: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if args == ["default"] {
                true
            } else {
                panic!(
                    "serde shim derive: unsupported serde attribute `serde({})`",
                    args.join("")
                );
            }
        }
        other => panic!("serde shim derive: malformed serde attribute near {other:?}"),
    }
}

/// Skip `pub`, `pub(...)`, or nothing.
fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Parse the fields of a `{ ... }` body into `(name, has_serde_default)`.
fn parse_named_fields(group: TokenStream) -> Vec<(String, bool)> {
    let mut names = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        let mut default = false;
        while let Some(body) = skip_attr(&mut iter) {
            default |= serde_default_attr(body);
        }
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(name)) => names.push((name.to_string(), default)),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
    }
    names
}

/// Count the fields of a `( ... )` tuple body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut in_field = false;
    let mut iter = group.into_iter().peekable();
    loop {
        while skip_attr(&mut iter).is_some() {}
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => in_field = false,
            Some(_) => {
                if !in_field {
                    count += 1;
                    in_field = true;
                }
            }
            None => break,
        }
    }
    count
}

/// Parse one enum body into `(variant, fields)` pairs.
fn parse_variants(group: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = group.into_iter().peekable();
    loop {
        while skip_attr(&mut iter).is_some() {}
        let name = match iter.next() {
            Some(TokenTree::Ident(name)) => name.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                iter.next();
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        for tok in iter.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    while skip_attr(&mut iter).is_some() {}
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(kw)) => kw.to_string(),
        other => panic!("serde shim derive: expected `struct`/`enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(name)) => name.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Shape::Struct { name, fields }
        }
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn serialize_fields_expr(owner: &str, fields: &Fields, access_prefix: &str) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => format!("::serde::Serialize::serialize(&{access_prefix}0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&{access_prefix}{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let items: Vec<String> = names
                .iter()
                .map(|(f, _)| {
                    format!(
                        "(String::from(\"{f}\"), ::serde::Serialize::serialize(&{access_prefix}{f}))"
                    )
                })
                .collect();
            let _ = owner;
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
    }
}

/// `#[derive(Serialize)]` for the serde shim.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let expr = serialize_fields_expr(&name, &fields, "self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in &variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let items: Vec<String> = fnames
                            .iter()
                            .map(|(f, _)| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        let binders: Vec<&str> = fnames.iter().map(|(f, _)| f.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(String::from(\"{vname}\"), ::serde::Value::Object(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde shim derive: generated invalid Rust")
}

fn deserialize_named_body(owner: &str, constructor: &str, names: &[(String, bool)]) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|(f, default)| {
            let lookup = if *default { "field_default" } else { "field" };
            format!("{f}: ::serde::{lookup}(obj, \"{f}\", \"{owner}\")?")
        })
        .collect();
    format!("Ok({constructor} {{ {} }})", fields.join(", "))
}

fn deserialize_tuple_body(owner: &str, constructor: &str, n: usize, source: &str) -> String {
    if n == 1 {
        return format!("Ok({constructor}(::serde::Deserialize::deserialize({source})?))");
    }
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::deserialize(&arr[{i}])?"))
        .collect();
    format!(
        "{{\n\
             let arr = {source}.as_array()\
                 .ok_or_else(|| ::serde::Error::expected(\"array\", \"{owner}\", {source}))?;\n\
             if arr.len() != {n} {{\n\
                 return Err(::serde::Error::message(format!(\
                     \"expected {n} elements for {owner}, found {{}}\", arr.len())));\n\
             }}\n\
             Ok({constructor}({items}))\n\
         }}",
        items = items.join(", ")
    )
}

/// `#[derive(Deserialize)]` for the serde shim.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inner = match &fields {
                Fields::Unit => format!(
                    "match value {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::Error::expected(\"null\", \"{name}\", other)),\n\
                     }}"
                ),
                Fields::Tuple(n) => deserialize_tuple_body(&name, &name, *n, "value"),
                Fields::Named(names) => format!(
                    "{{\n\
                         let obj = value.as_object()\
                             .ok_or_else(|| ::serde::Error::expected(\"object\", \"{name}\", value))?;\n\
                         {}\n\
                     }}",
                    deserialize_named_body(&name, &name, names)
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         {inner}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in &variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        tagged_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Fields::Tuple(n) => {
                        let owner = format!("{name}::{vname}");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {},\n",
                            deserialize_tuple_body(&owner, &owner, *n, "payload")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let owner = format!("{name}::{vname}");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let obj = payload.as_object()\
                                     .ok_or_else(|| ::serde::Error::expected(\"object\", \"{owner}\", payload))?;\n\
                                 {}\n\
                             }},\n",
                            deserialize_named_body(&owner, &owner, fnames)
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if let Some(tag) = value.as_str() {{\n\
                             return match tag {{\n\
                                 {unit_arms}\
                                 other => Err(::serde::Error::message(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }};\n\
                         }}\n\
                         let obj = value.as_object()\
                             .ok_or_else(|| ::serde::Error::expected(\"string or object\", \"{name}\", value))?;\n\
                         if obj.len() != 1 {{\n\
                             return Err(::serde::Error::message(\
                                 \"expected single-key variant object for {name}\".to_string()));\n\
                         }}\n\
                         let (tag, payload) = &obj[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => Err(::serde::Error::message(format!(\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("serde shim derive: generated invalid Rust")
}
