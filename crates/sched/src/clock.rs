//! Virtual (simulated) time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point or span in simulated time, with nanosecond resolution.
///
/// The benchmark harness runs workloads under a virtual-time model: compute
/// kernels charge FLOP-proportional time, messages charge latency plus
/// size/bandwidth, and instrumentation charges per-event costs. `SimTime`
/// is the currency all of those use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds. Saturates at zero for
    /// negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// Nanoseconds since time zero (or span length in nanoseconds).
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Pointwise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Scale a span by a dimensionless factor (used by the overhead model).
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((b - a).as_nanos(), 0, "sub saturates");
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500µs");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs_f64(2.25).to_string(), "2.250s");
    }

    #[test]
    fn scale_by_factor() {
        assert_eq!(SimTime::from_nanos(1000).scale(1.3).as_nanos(), 1300);
    }
}
