//! # home-trace — runtime event model for the HOME checker
//!
//! Defines what the simulated MPI/OpenMP substrates *record* and what the
//! dynamic analyses *consume*:
//!
//! * [`Event`]/[`EventKind`] — memory accesses, lock operations, OpenMP
//!   region fork/join, barriers, MPI calls, and the HOME wrappers'
//!   [`MonitoredVar`] writes;
//! * [`VectorClock`] — the happens-before machinery;
//! * [`LockSet`] — the Eraser machinery;
//! * [`Collector`]/[`TraceSink`] — how events get out of the runtime, with
//!   an [`EventFilter`] implementing each tool's instrumentation scope
//!   (the paper's selective-monitoring idea);
//! * [`Trace`] — a finished recording with query helpers and JSON dumps;
//! * [`HomeError`] — the workspace-wide typed error taxonomy (this is the
//!   lowest crate of the dependency DAG, so every layer can return it).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod event;
mod fxhash;
mod ids;
mod intern;
mod lockset;
mod sink;
mod trace;
mod vc;

pub use error::{HomeError, HomeResult};
pub use event::{
    AccessKind, Event, EventKind, MemLoc, MonitoredVar, MpiCallKind, MpiCallRecord, ThreadLevel,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{BarrierId, CommId, LockId, Rank, RegionId, ReqId, SrcLoc, Tid, VarId, COMM_WORLD};
pub use intern::Interner;
pub use lockset::{LockSet, LocksetId, LocksetTable};
pub use sink::{Collector, CountingSink, EventFilter, MemorySink, NullSink, TraceSink};
pub use trace::Trace;
pub use vc::VectorClock;
