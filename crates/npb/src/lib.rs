//! # home-npb — NPB-MZ-style hybrid workloads with violation injection
//!
//! The paper evaluates on the hybrid MPI/OpenMP multi-zone NAS Parallel
//! Benchmarks (LU, BT, SP, class C) with six artificially inserted
//! thread-safety violations per benchmark. This crate provides:
//!
//! * [`generate`] — the *correct* benchmark programs: per time step, halo
//!   exchanges funneled through the master thread, worksharing per-row
//!   solves with real floating-point work, critical-section residual
//!   accumulation (LU), and out-of-region residual allreduces;
//! * [`build_injected`] — the same programs with the paper's injection
//!   plan spliced in (six violations per benchmark, including the latent
//!   races Marmot misses and the probe episode ITC cannot wrap, plus BT's
//!   benign-critical episode that triggers ITC's false positive);
//! * [`accuracy_row`] — the detection-table experiment for one benchmark.

mod accuracy;
mod gen;
mod inject;
mod params;

pub use accuracy::{accuracy_options, accuracy_row, score, AccuracyRow, ToolScore};
pub use gen::{benchmark_body, generate};
pub use inject::{build_injected, InjectedProgram, InjectionInfo};
pub use params::{Benchmark, Class, SizeParams};
