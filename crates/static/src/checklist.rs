//! The instrumentation checklist produced by the static phase and consumed
//! by the interpreter's selective instrumentation.

use home_ir::{IrThreadLevel, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Static facts about one MPI call site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticCallSite {
    /// IR node of the call.
    pub node: NodeId,
    /// 1-based source line.
    pub line: u32,
    /// Surface function name (`mpi_send`, …).
    pub name: String,
    /// Inside an `omp parallel` region (Algorithm 1's marking)?
    pub in_hybrid_region: bool,
    /// Reachable from program entry?
    pub reachable: bool,
    /// Replace with the instrumented HMPI wrapper?
    /// (`in_hybrid_region && reachable` — the paper's filter.)
    pub instrument: bool,
    /// Is the call a collective?
    pub is_collective: bool,
    /// `Some(true)` when the tag argument is provably thread-distinct
    /// (e.g. `tag = tid`); `None` when the call has no tag argument.
    pub tag_thread_distinct: Option<bool>,
    /// Same for the source/destination argument.
    pub peer_thread_distinct: Option<bool>,
    /// For `mpi_init`/`mpi_init_thread`: the requested thread level.
    pub init_level: Option<IrThreadLevel>,
    /// Monitored variables this site's wrapper must store. `Some(set)` —
    /// possibly empty — is authoritative; `None` means the checklist
    /// predates per-site sets (or was stripped back to the coarse model),
    /// and the interpreter falls back to its per-kind table.
    #[serde(default)]
    pub monitored: Option<Vec<String>>,
    /// Critical-section names provably held whenever this site executes
    /// (interprocedural must-intersection over all call contexts).
    #[serde(default)]
    pub must_locks: Vec<String>,
    /// Can two threads of one team reach this site within the same region
    /// instance? False outside parallel regions and under serializing
    /// constructs (`master`, `single`, one `section`).
    #[serde(default)]
    pub multi_thread: bool,
}

/// The paper's six monitored variables, named as strings so `home-static`
/// stays independent of the trace crate. `home-core` maps them onto
/// `home_trace::MonitoredVar`.
pub const ALL_MONITORED: [&str; 6] = [
    "srctmp",
    "tagtmp",
    "commtmp",
    "requesttmp",
    "collectivetmp",
    "finalizetmp",
];

/// Output of the static phase: which call sites to instrument, and which
/// monitored variables the dynamic phase must set up.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Checklist {
    /// Every MPI call site found, in program order.
    pub sites: Vec<StaticCallSite>,
    /// Monitored variables needed, given the instrumented call mix.
    pub monitored_vars: Vec<String>,
}

impl Checklist {
    /// Node ids of sites selected for instrumentation.
    pub fn instrumented_nodes(&self) -> BTreeSet<NodeId> {
        self.sites
            .iter()
            .filter(|s| s.instrument)
            .map(|s| s.node)
            .collect()
    }

    /// Should the interpreter wrap this call site?
    pub fn should_instrument(&self, node: NodeId) -> bool {
        self.sites.iter().any(|s| s.node == node && s.instrument)
    }

    /// Site lookup.
    pub fn site(&self, node: NodeId) -> Option<&StaticCallSite> {
        self.sites.iter().find(|s| s.node == node)
    }

    /// Count of instrumented sites.
    pub fn instrumented_count(&self) -> usize {
        self.sites.iter().filter(|s| s.instrument).count()
    }

    /// Count of filtered-out sites (the paper's overhead reduction).
    pub fn skipped_count(&self) -> usize {
        self.sites.iter().filter(|s| !s.instrument).count()
    }

    /// The per-site monitored-variable set of `node`, when this checklist
    /// carries one (see [`StaticCallSite::monitored`]).
    pub fn site_monitored(&self, node: NodeId) -> Option<&[String]> {
        self.site(node).and_then(|s| s.monitored.as_deref())
    }

    /// A copy with every per-site monitored set stripped: the pre-
    /// interprocedural coarse model, where each wrapper writes the full
    /// per-kind variable table. Used by benches and back-compat tests to
    /// measure/verify the per-site refinement against the old contract.
    pub fn coarse(&self) -> Checklist {
        let mut c = self.clone();
        for s in &mut c.sites {
            s.monitored = None;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(node: u32, instrument: bool) -> StaticCallSite {
        StaticCallSite {
            node: NodeId(node),
            line: node,
            name: "mpi_send".into(),
            in_hybrid_region: instrument,
            reachable: true,
            instrument,
            is_collective: false,
            tag_thread_distinct: Some(false),
            peer_thread_distinct: Some(false),
            init_level: None,
            monitored: None,
            must_locks: Vec::new(),
            multi_thread: instrument,
        }
    }

    #[test]
    fn instrumented_queries() {
        let cl = Checklist {
            sites: vec![site(1, true), site(2, false), site(3, true)],
            monitored_vars: vec!["srctmp".into()],
        };
        assert_eq!(cl.instrumented_count(), 2);
        assert_eq!(cl.skipped_count(), 1);
        assert!(cl.should_instrument(NodeId(1)));
        assert!(!cl.should_instrument(NodeId(2)));
        assert!(!cl.should_instrument(NodeId(9)));
        let nodes: Vec<u32> = cl.instrumented_nodes().iter().map(|n| n.0).collect();
        assert_eq!(nodes, vec![1, 3]);
        assert_eq!(cl.site(NodeId(2)).unwrap().line, 2);
    }
}
