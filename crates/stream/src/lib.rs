//! Online streaming detection and the HBT compact binary trace format.
//!
//! This crate makes HOME's dynamic phase *online*: instead of
//! materializing a full `Vec<Event>` and re-scanning it post-mortem, a
//! simulation (or a replayed recording) feeds events one at a time into a
//! [`StreamDetector`], which runs the incremental lockset + vector-clock
//! analysis with bounded memory — per-rank sharded state and epoch-based
//! retirement of segments that can no longer race. Its verdicts are
//! identical to the batch engine `home_dynamic::detect`, enforced
//! report-byte-for-report-byte by the workspace parity tests.
//!
//! The second half is [`hbt`]: a varint-encoded, length-prefixed binary
//! trace format with a magic/version header and an explicit end marker,
//! readable and writable as a stream (`io::Read`/`io::Write`) with typed
//! truncation/corruption errors. `home record` writes it, `home replay`
//! and `home analyze -` consume it. Version 2 (`record --compress`) packs
//! sections into [`lz`]-compressed frames behind a writer-emitted seek
//! index, so replay can decode frames in parallel ([`scan_layout`] /
//! [`decode_frame_records`]).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod detector;
pub mod hbt;
pub mod lz;

use home_trace::Event;

/// A consumer of live events, one at a time, in recording order.
///
/// The streaming counterpart of scanning `Trace::events()`: implementors
/// must tolerate concurrent calls from multiple producer threads (the
/// simulator's collector is shared). [`StreamDetector`] implements this
/// and also `home_trace::TraceSink`, so it plugs directly into
/// `interp::run_with_sink`.
pub trait EventSink: Send + Sync {
    /// Consume one event.
    fn on_event(&self, event: &Event);
}

/// A consumer of race candidates, invoked by [`StreamDetector`] the moment
/// each race is discovered (same races, same per-rank order as the batch
/// engine's result list).
///
/// The callback fires while the detector holds the rank-shard lock, so
/// implementations must be quick and must **not** re-enter the detector
/// (no `consume`/`finish` from inside `on_race`). Multiple producer
/// threads may trigger callbacks concurrently for different ranks.
pub trait RaceSink: Send + Sync {
    /// One freshly discovered race.
    fn on_race(&self, race: &home_dynamic::Race);
}

pub use detector::{detect_stream, detect_stream_batched, StreamDetector, StreamStats};
pub use hbt::{
    decode_frame_into, decode_frame_records, decode_sections, encode_trace, is_hbt, scan_layout,
    sections_from_batches, sections_from_records, FrameBatch, FrameLoc, FrameScratch, HbtLayout,
    HbtMmapReader, HbtReader, HbtRecord, HbtSection, HbtSliceReader, HbtWriter, IndexEntry,
    ManifestCheck, TraceIncident, HBT_MAGIC, HBT_V2, HBT_VERSION, MAX_RECORD_LEN,
};
pub use home_dynamic::Race;
