//! Canonical pretty-printer. `parse(print(p))` reproduces `p` up to node
//! ids and line numbers — the round-trip property the test suite checks.

use crate::ast::*;
use std::fmt::Write;

/// Render `program` in canonical surface syntax.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", program.name);
    for func in &program.functions {
        indent(&mut out, 1);
        let _ = writeln!(out, "fn {}() {{", func.name);
        print_block(&mut out, &func.body, 2);
        indent(&mut out, 1);
        out.push_str("}\n");
    }
    print_block(&mut out, &program.body, 1);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        print_stmt(out, s, depth);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match &s.kind {
        StmtKind::Decl { name, shared, init } => {
            if *shared {
                out.push_str("shared ");
            }
            let _ = writeln!(out, "int {name} = {};", print_expr(init));
        }
        StmtKind::Assign { name, value } => {
            let _ = writeln!(out, "{name} = {};", print_expr(value));
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_block(out, then_block, depth + 1);
            indent(out, depth);
            if else_block.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                print_block(out, else_block, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        StmtKind::For {
            var,
            from,
            to,
            body,
        } => {
            let _ = writeln!(
                out,
                "for {var} in {}..{} {{",
                print_expr(from),
                print_expr(to)
            );
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::OmpParallel { num_threads, body } => {
            let _ = writeln!(
                out,
                "omp parallel num_threads({}) {{",
                print_expr(num_threads)
            );
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::OmpFor {
            var,
            from,
            to,
            schedule,
            body,
        } => {
            let sched = match schedule {
                Schedule::Static => "schedule(static)".to_string(),
                Schedule::Dynamic { chunk } => format!("schedule(dynamic, {chunk})"),
            };
            let _ = writeln!(
                out,
                "omp for {sched} {var} in {}..{} {{",
                print_expr(from),
                print_expr(to)
            );
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::OmpSections { sections } => {
            out.push_str("omp sections {\n");
            for sec in sections {
                indent(out, depth + 1);
                out.push_str("section {\n");
                print_block(out, sec, depth + 2);
                indent(out, depth + 1);
                out.push_str("}\n");
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::OmpSingle { body } => {
            out.push_str("omp single {\n");
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::OmpMaster { body } => {
            out.push_str("omp master {\n");
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::OmpCritical { name, body } => {
            let _ = writeln!(out, "omp critical({name}) {{");
            print_block(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::OmpBarrier => out.push_str("omp barrier;\n"),
        StmtKind::OmpAtomic { name, value } => {
            let _ = writeln!(out, "omp atomic {name} = {};", print_expr(value));
        }
        StmtKind::Compute {
            flops,
            reads,
            writes,
        } => {
            let mut line = format!("compute({}", print_expr(flops));
            if !reads.is_empty() {
                line.push_str(&format!(", reads: {}", reads.join(" ")));
            }
            if !writes.is_empty() {
                line.push_str(&format!(", writes: {}", writes.join(" ")));
            }
            line.push_str(");\n");
            out.push_str(&line);
        }
        StmtKind::Mpi(call) => print_mpi(out, call),
        StmtKind::Call { name } => {
            let _ = writeln!(out, "call {name}();");
        }
    }
}

fn print_mpi(out: &mut String, call: &MpiStmt) {
    // Optional trailing `, comm: name` for calls that take one.
    let comm_suffix = |comm: &Option<String>| match comm {
        Some(c) => format!(", comm: {c}"),
        None => String::new(),
    };
    let s = match call {
        MpiStmt::Init => "mpi_init();".to_string(),
        MpiStmt::InitThread { required } => {
            format!("mpi_init_thread({});", required.keyword())
        }
        MpiStmt::Finalize => "mpi_finalize();".to_string(),
        MpiStmt::Send {
            dest,
            tag,
            count,
            comm,
        } => format!(
            "mpi_send(to: {}, tag: {}, count: {}{});",
            print_expr(dest),
            print_expr(tag),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Ssend {
            dest,
            tag,
            count,
            comm,
        } => format!(
            "mpi_ssend(to: {}, tag: {}, count: {}{});",
            print_expr(dest),
            print_expr(tag),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Recv { src, tag, comm } => format!(
            "mpi_recv(from: {}, tag: {}{});",
            print_expr(src),
            print_expr(tag),
            comm_suffix(comm)
        ),
        MpiStmt::Isend {
            dest,
            tag,
            count,
            req,
            comm,
        } => format!(
            "mpi_isend(to: {}, tag: {}, count: {}, req: {req}{});",
            print_expr(dest),
            print_expr(tag),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Irecv {
            src,
            tag,
            req,
            comm,
        } => format!(
            "mpi_irecv(from: {}, tag: {}, req: {req}{});",
            print_expr(src),
            print_expr(tag),
            comm_suffix(comm)
        ),
        MpiStmt::Wait { req } => format!("mpi_wait(req: {req});"),
        MpiStmt::Waitall { reqs } => {
            // First request keyed, the rest bare — matching the parser.
            let mut it = reqs.iter();
            let first = it.next().map(String::as_str).unwrap_or("");
            let rest: Vec<&str> = it.map(String::as_str).collect();
            if rest.is_empty() {
                format!("mpi_waitall(reqs: {first});")
            } else {
                format!("mpi_waitall(reqs: {first}, {});", rest.join(", "))
            }
        }
        MpiStmt::Test { req } => format!("mpi_test(req: {req});"),
        MpiStmt::Probe { src, tag, comm } => format!(
            "mpi_probe(from: {}, tag: {}{});",
            print_expr(src),
            print_expr(tag),
            comm_suffix(comm)
        ),
        MpiStmt::Iprobe { src, tag, comm } => format!(
            "mpi_iprobe(from: {}, tag: {}{});",
            print_expr(src),
            print_expr(tag),
            comm_suffix(comm)
        ),
        MpiStmt::Barrier { comm: None } => "mpi_barrier();".to_string(),
        MpiStmt::Barrier { comm: Some(c) } => format!("mpi_barrier(comm: {c});"),
        MpiStmt::Bcast { root, count, comm } => format!(
            "mpi_bcast(root: {}, count: {}{});",
            print_expr(root),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Reduce {
            op,
            root,
            count,
            comm,
        } => format!(
            "mpi_reduce({}, root: {}, count: {}{});",
            op.keyword(),
            print_expr(root),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Allreduce { op, count, comm } => format!(
            "mpi_allreduce({}, count: {}{});",
            op.keyword(),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Gather { root, count, comm } => format!(
            "mpi_gather(root: {}, count: {}{});",
            print_expr(root),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Allgather { count, comm } => format!(
            "mpi_allgather(count: {}{});",
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Scatter { root, count, comm } => format!(
            "mpi_scatter(root: {}, count: {}{});",
            print_expr(root),
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::Alltoall { count, comm } => format!(
            "mpi_alltoall(count: {}{});",
            print_expr(count),
            comm_suffix(comm)
        ),
        MpiStmt::CommDup { into, comm } => {
            format!("mpi_comm_dup(into: {into}{});", comm_suffix(comm))
        }
        MpiStmt::CommSplit {
            color,
            key,
            into,
            comm,
        } => format!(
            "mpi_comm_split(color: {}, key: {}, into: {into}{});",
            print_expr(color),
            print_expr(key),
            comm_suffix(comm)
        ),
    };
    out.push_str(&s);
    out.push('\n');
}

/// Render an expression with minimal but sufficient parentheses (children
/// of binary operators are parenthesized unless atomic).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Rank => "rank".to_string(),
        Expr::Size => "size".to_string(),
        Expr::ThreadId => "tid".to_string(),
        Expr::NumThreads => "nthreads".to_string(),
        Expr::Any => "any".to_string(),
        Expr::Neg(inner) => format!("-{}", atom(inner)),
        Expr::Not(inner) => format!("!{}", atom(inner)),
        Expr::Bin(op, a, b) => format!("{} {} {}", atom(a), op.symbol(), atom(b)),
    }
}

fn atom(e: &Expr) -> String {
    match e {
        Expr::Bin(..) => format!("({})", print_expr(e)),
        _ => print_expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strip ids/lines so structural equality ignores positions.
    fn normalize(p: &Program) -> Program {
        fn walk(stmts: &[Stmt]) -> Vec<Stmt> {
            stmts
                .iter()
                .map(|s| Stmt {
                    id: NodeId(0),
                    line: 0,
                    kind: match &s.kind {
                        StmtKind::If {
                            cond,
                            then_block,
                            else_block,
                        } => StmtKind::If {
                            cond: cond.clone(),
                            then_block: walk(then_block),
                            else_block: walk(else_block),
                        },
                        StmtKind::For {
                            var,
                            from,
                            to,
                            body,
                        } => StmtKind::For {
                            var: var.clone(),
                            from: from.clone(),
                            to: to.clone(),
                            body: walk(body),
                        },
                        StmtKind::OmpParallel { num_threads, body } => StmtKind::OmpParallel {
                            num_threads: num_threads.clone(),
                            body: walk(body),
                        },
                        StmtKind::OmpFor {
                            var,
                            from,
                            to,
                            schedule,
                            body,
                        } => StmtKind::OmpFor {
                            var: var.clone(),
                            from: from.clone(),
                            to: to.clone(),
                            schedule: schedule.clone(),
                            body: walk(body),
                        },
                        StmtKind::OmpSections { sections } => StmtKind::OmpSections {
                            sections: sections.iter().map(|s| walk(s)).collect(),
                        },
                        StmtKind::OmpSingle { body } => StmtKind::OmpSingle { body: walk(body) },
                        StmtKind::OmpMaster { body } => StmtKind::OmpMaster { body: walk(body) },
                        StmtKind::OmpCritical { name, body } => StmtKind::OmpCritical {
                            name: name.clone(),
                            body: walk(body),
                        },
                        other => other.clone(),
                    },
                })
                .collect()
        }
        Program {
            name: p.name.clone(),
            functions: p
                .functions
                .iter()
                .map(|f| FuncDef {
                    name: f.name.clone(),
                    line: 0,
                    body: walk(&f.body),
                })
                .collect(),
            body: walk(&p.body),
            node_count: 0,
        }
    }

    #[test]
    fn roundtrip_rich_program() {
        let src = r#"
            program rich {
                mpi_init_thread(serialized);
                shared int tag = 0;
                int x = 1 + 2 * 3;
                omp parallel num_threads(2 + 2) {
                    omp for schedule(dynamic, 4) i in 0..(10 * size) {
                        compute(i * 100, reads: a, writes: b c);
                    }
                    omp critical(cs) { x = x + 1; }
                    omp sections {
                        section { mpi_send(to: 1, tag: tid, count: 1); }
                        section { mpi_recv(from: any, tag: any); }
                    }
                    omp single { mpi_barrier(); }
                    omp master { mpi_probe(from: 0, tag: 5); }
                    omp barrier;
                }
                if (rank == 0) { mpi_reduce(max, root: 0, count: 2); } else { mpi_allreduce(sum, count: 2); }
                for k in 0..3 { mpi_iprobe(from: any, tag: k); }
                mpi_finalize();
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(normalize(&p1), normalize(&p2), "printed:\n{printed}");
        // Idempotence: printing the reparsed program is stable.
        assert_eq!(printed, print_program(&p2));
    }

    #[test]
    fn expr_parenthesization_preserves_structure() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::int(1), Expr::int(2)),
            Expr::int(3),
        );
        assert_eq!(print_expr(&e), "(1 + 2) * 3");
        let e2 = Expr::Neg(Box::new(Expr::bin(BinOp::Add, Expr::int(1), Expr::int(2))));
        assert_eq!(print_expr(&e2), "-(1 + 2)");
    }
}
