//! `throughput` — events/sec measurements for the detection hot path.
//!
//! Measures the detector inner loops (batch and streaming) and the trace
//! decode paths (JSON, buffered HBT, mmap HBT) over traces recorded from
//! the bundled programs plus a synthetic wide-region stress corpus, and
//! prints one JSON document so `BENCH_throughput.json` and the
//! EXPERIMENTS.md table can be regenerated:
//!
//! ```text
//! cargo run --release -p home-bench --bin throughput            # full run
//! cargo run --release -p home-bench --bin throughput -- --quick # CI smoke
//! ```

use home_dynamic::{detect, DetectorConfig};
use home_interp::{run, Instrumentation, RunConfig};
use home_ir::parse;
use home_static::analyze;
use home_stream::{decode_sections, detect_stream, detect_stream_batched, encode_trace, HbtWriter};
use home_trace::{AccessKind, Event, EventKind, LockId, MemLoc, Rank, RegionId, Tid, Trace, VarId};
use std::sync::Arc;
use std::time::Instant;

/// One measured corpus: a named trace plus its serialized forms.
struct Corpus {
    name: &'static str,
    trace: Trace,
}

/// Parse one bundled program.
fn load_program(file: &str) -> home_ir::Program {
    let path = format!("{}/../../programs/{file}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("bundled program readable");
    parse(&src).expect("bundled program parses")
}

/// Record a HOME-instrumented trace of one bundled program.
fn program_trace(file: &str, procs: usize, threads: usize, seed: u64) -> Trace {
    let program = load_program(file);
    let checklist = Arc::new(analyze(&program).checklist.clone());
    let mut cfg = RunConfig::test(procs, seed)
        .with_instrumentation(Instrumentation::home())
        .with_checklist(checklist);
    cfg.threads_per_proc = threads;
    run(&program, &cfg).trace
}

/// Event-volume comparison of the coarse (per-kind table) and per-site
/// monitored-write models on one bundled program: (monitored writes
/// coarse/per-site, total events coarse/per-site).
fn instrumentation_reduction(file: &str, procs: usize, seed: u64) -> (usize, usize, usize, usize) {
    let program = load_program(file);
    let checklist = analyze(&program).checklist;
    let run_with = |cl| {
        let cfg = RunConfig::test(procs, seed)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(Arc::new(cl));
        run(&program, &cfg).trace
    };
    let coarse = run_with(checklist.coarse());
    let fine = run_with(checklist);
    (
        coarse.monitored_writes().count(),
        fine.monitored_writes().count(),
        coarse.len(),
        fine.len(),
    )
}

/// A synthetic trace stressing the detector inner loop: `regions` fork/join
/// cycles of `threads` threads, each doing `writes` accesses over `vars`
/// distinct variables with periodic lock sections and barriers. Large event
/// count, bounded per-location history — the shape of a long NPB run.
fn synthetic_trace(regions: u64, threads: u32, writes: u64, vars: u32) -> Trace {
    let mut events = Vec::new();
    let mut seq = 0u64;
    let mut ev = |tid: u32, region: Option<u64>, kind: EventKind| {
        events.push(Event {
            seq,
            rank: Rank(0),
            tid: Tid(tid),
            region: region.map(RegionId),
            time_ns: seq,
            loc: None,
            kind,
        });
        seq += 1;
    };
    for r in 0..regions {
        ev(
            0,
            None,
            EventKind::Fork {
                region: RegionId(r),
                nthreads: threads,
            },
        );
        for w in 0..writes {
            for t in 0..threads {
                if w % 16 == 0 {
                    ev(
                        t,
                        Some(r),
                        EventKind::Acquire {
                            lock: LockId(t % 4),
                        },
                    );
                }
                ev(
                    t,
                    Some(r),
                    EventKind::Access {
                        loc: MemLoc::Var(VarId((w as u32 * 31 + t) % vars)),
                        kind: if w % 4 == 0 {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        },
                    },
                );
                if w % 16 == 15 {
                    ev(
                        t,
                        Some(r),
                        EventKind::Release {
                            lock: LockId(t % 4),
                        },
                    );
                }
            }
            if w % 64 == 63 {
                for t in 0..threads {
                    ev(
                        t,
                        Some(r),
                        EventKind::Barrier {
                            barrier: home_trace::BarrierId(0),
                            epoch: w / 64,
                        },
                    );
                }
            }
        }
        ev(
            0,
            None,
            EventKind::JoinRegion {
                region: RegionId(r),
            },
        );
    }
    Trace::from_events(events)
}

/// Run `f` repeatedly for at least `min_iters` iterations and `min_secs`
/// seconds, returning events/sec for a trace of `events` events.
fn measure(events: usize, min_iters: u32, min_secs: f64, mut f: impl FnMut() -> usize) -> f64 {
    // Warm-up iteration (page in the corpus, fill allocator pools).
    let sink = f();
    assert!(sink < usize::MAX, "keep the call un-elided");
    let start = Instant::now();
    let mut iters = 0u32;
    while iters < min_iters || start.elapsed().as_secs_f64() < min_secs {
        std::hint::black_box(f());
        iters += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    (events as f64 * f64::from(iters)) / secs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (min_iters, min_secs) = if quick { (2, 0.05) } else { (5, 1.0) };

    let corpora = [
        Corpus {
            name: "pipeline_4x2",
            trace: program_trace("pipeline.hmp", 4, 2, 1),
        },
        Corpus {
            name: "figure2_2x2",
            trace: program_trace("figure2.hmp", 2, 2, 1),
        },
        Corpus {
            name: if quick {
                "synthetic_small"
            } else {
                "synthetic_wide"
            },
            trace: if quick {
                synthetic_trace(4, 4, 64, 64)
            } else {
                synthetic_trace(16, 8, 512, 512)
            },
        },
    ];

    let config = DetectorConfig {
        jobs: 1,
        ..DetectorConfig::hybrid()
    };

    println!("{{");
    println!("  \"unit\": \"events/sec\",");
    println!("  \"quick\": {quick},");
    println!("  \"corpora\": [");
    for (ci, corpus) in corpora.iter().enumerate() {
        let trace = &corpus.trace;
        let n = trace.len();
        let json = trace.to_json();
        let hbt = encode_trace(trace);
        let hbt_v2 = encode_trace_v2(trace);

        let batch = measure(n, min_iters, min_secs, || {
            detect(std::hint::black_box(trace), &config)
                .map(|r| r.len())
                .unwrap_or(0)
        });
        let stream = measure(n, min_iters, min_secs, || {
            detect_stream(std::hint::black_box(trace), &config)
                .map(|(r, _)| r.len())
                .unwrap_or(0)
        });
        // The amortized batch feed path: shard locks and rank state
        // resolved once per run of same-rank events.
        let stream_batched = measure(n, min_iters, min_secs, || {
            detect_stream_batched(std::hint::black_box(trace), &config, 0)
                .map(|(r, _)| r.len())
                .unwrap_or(0)
        });
        let dec_json = measure(n, min_iters, min_secs, || {
            Trace::from_json(std::hint::black_box(&json))
                .map(|t| t.len())
                .unwrap_or(0)
        });
        let dec_hbt = measure(n, min_iters, min_secs, || {
            decode_sections(std::hint::black_box(&hbt))
                .map(|s| s.len())
                .unwrap_or(0)
        });
        let dec_hbt_mmap = mmap_decode_rate(corpus.name, &hbt, n, min_iters, min_secs);
        // v2 decode: serial (frames inflate through the shared reader) and
        // frame-parallel (`replay --jobs 4`, scan_layout + fan-out).
        let dec_v2 = measure(n, min_iters, min_secs, || {
            decode_sections(std::hint::black_box(&hbt_v2))
                .map(|s| s.len())
                .unwrap_or(0)
        });
        let dec_v2_par = measure(n, min_iters, min_secs, || {
            home_core::decode_trace(std::hint::black_box(&hbt_v2), 4)
                .map(|s| s.len())
                .unwrap_or(0)
        });
        // End-to-end replay: v2 decode + session-driven analysis, first
        // event-at-a-time (the pre-batching feed path) then batch-wise
        // (what `home replay` runs) — the honest before/after pair.
        let replay_eventwise = measure(n, min_iters, min_secs, || {
            home_core::decode_trace(std::hint::black_box(&hbt_v2), 1)
                .ok()
                .and_then(|sections| home_serve::analyze_sections_batched(&sections, Some(1)).ok())
                .map(|o| o.events as usize)
                .unwrap_or(0)
        });
        let replay_e2e = measure(n, min_iters, min_secs, || {
            home_core::decode_trace(std::hint::black_box(&hbt_v2), 1)
                .ok()
                .and_then(|sections| home_serve::analyze_sections(&sections).ok())
                .map(|o| o.events as usize)
                .unwrap_or(0)
        });
        let bpe_v1 = hbt.len() as f64 / n.max(1) as f64;
        let bpe_v2 = hbt_v2.len() as f64 / n.max(1) as f64;

        eprintln!(
            "{}: {} events | batch {:.0} | stream {:.0} | stream-batched {:.0} | json-decode {:.0} | hbt-decode {:.0} | hbt-mmap {:.0} | v2-decode {:.0} | v2-jobs4 {:.0} | replay-eventwise {:.0} | replay-e2e {:.0} | B/ev {:.1} -> {:.1}",
            corpus.name, n, batch, stream, stream_batched, dec_json, dec_hbt, dec_hbt_mmap, dec_v2, dec_v2_par, replay_eventwise, replay_e2e, bpe_v1, bpe_v2,
        );
        let comma = if ci + 1 < corpora.len() { "," } else { "" };
        println!("    {{");
        println!("      \"corpus\": \"{}\",", corpus.name);
        println!("      \"events\": {n},");
        println!("      \"detect_batch\": {batch:.0},");
        println!("      \"detect_stream\": {stream:.0},");
        println!("      \"detect_stream_batched\": {stream_batched:.0},");
        println!("      \"decode_json\": {dec_json:.0},");
        println!("      \"decode_hbt\": {dec_hbt:.0},");
        println!("      \"decode_hbt_mmap\": {dec_hbt_mmap:.0},");
        println!("      \"decode_hbt_v2\": {dec_v2:.0},");
        println!("      \"decode_hbt_v2_jobs4\": {dec_v2_par:.0},");
        println!("      \"replay_e2e_eventwise\": {replay_eventwise:.0},");
        println!("      \"replay_e2e\": {replay_e2e:.0},");
        println!("      \"bytes_per_event_v1\": {bpe_v1:.2},");
        println!("      \"bytes_per_event_v2\": {bpe_v2:.2}");
        println!("    }}{comma}");
    }
    println!("  ],");

    // Per-site vs coarse monitored-write volume on the bundled programs:
    // how much event traffic the interprocedural per-site checklists save
    // while keeping every verdict (parity suites enforce the latter).
    let reduction_programs = [
        "figure1.hmp",
        "figure2.hmp",
        "figure2_fixed.hmp",
        "hidden.hmp",
        "interproc.hmp",
        "interproc2.hmp",
        "pipeline.hmp",
    ];
    println!("  \"instrumentation_reduction\": [");
    for (pi, file) in reduction_programs.iter().enumerate() {
        let (mw_coarse, mw_fine, ev_coarse, ev_fine) = instrumentation_reduction(file, 2, 1);
        let pct = if mw_coarse > 0 {
            100.0 * (mw_coarse - mw_fine) as f64 / mw_coarse as f64
        } else {
            0.0
        };
        eprintln!(
            "{file}: monitored writes {mw_coarse} -> {mw_fine} ({pct:.0}% fewer) | events {ev_coarse} -> {ev_fine}",
        );
        let comma = if pi + 1 < reduction_programs.len() {
            ","
        } else {
            ""
        };
        println!("    {{");
        println!("      \"program\": \"{file}\",");
        println!("      \"monitored_writes_coarse\": {mw_coarse},");
        println!("      \"monitored_writes_per_site\": {mw_fine},");
        println!("      \"events_total_coarse\": {ev_coarse},");
        println!("      \"events_total_per_site\": {ev_fine},");
        println!("      \"write_reduction_pct\": {pct:.1}");
        println!("    }}{comma}");
    }
    println!("  ]");
    println!("}}");
}

/// The corpus as a v2 stream (`record --compress`): one anonymous section
/// packed into LZ-compressed frames with a trailing seek index.
fn encode_trace_v2(trace: &Trace) -> Vec<u8> {
    let mut writer = HbtWriter::new_compressed(Vec::new()).expect("vec write");
    for e in trace.events() {
        writer.write_event(e).expect("vec write");
    }
    writer.finish().expect("vec write")
}

/// Decode throughput straight from an mmap'd HBT file (zero-copy replay
/// path). Writes the corpus to a temp file once, then decodes from the
/// mapping on every iteration.
fn mmap_decode_rate(name: &str, hbt: &[u8], n: usize, min_iters: u32, min_secs: f64) -> f64 {
    let path =
        std::env::temp_dir().join(format!("home-throughput-{name}-{}.hbt", std::process::id()));
    if std::fs::write(&path, hbt).is_err() {
        return 0.0;
    }
    let rate = measure(n, min_iters, min_secs, || {
        home_stream::HbtMmapReader::open(&path)
            .and_then(|reader| reader.sections())
            .map(|s| s.len())
            .unwrap_or(0)
    });
    let _ = std::fs::remove_file(&path);
    rate
}
