//! Metamorphic properties of the race detector: adding synchronization can
//! only remove races, never create them, and the hybrid detector is the
//! conjunction of its two parts.

use home::trace::{
    AccessKind, BarrierId, Event, EventKind, LockId, MemLoc, Rank, RegionId, Tid, Trace, VarId,
};
use home::dynamic::{detect, DetectorConfig};
use proptest::prelude::*;

/// A tiny op language for two threads inside one region.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u32),
    Read(u32),
    Locked(u32, u32), // (lock, var): acquire; write var; release
}

fn arb_ops() -> impl Strategy<Value = Vec<(u8, Op)>> {
    // (thread, op) pairs; the pair order is the global interleaving.
    proptest::collection::vec(
        (
            0u8..2,
            prop_oneof![
                (0u32..4).prop_map(Op::Write),
                (0u32..4).prop_map(Op::Read),
                ((0u32..2), (0u32..4)).prop_map(|(l, v)| Op::Locked(l, v)),
            ],
        ),
        1..12,
    )
}

/// Build a trace from the op sequence; `barrier_at` optionally inserts a
/// team barrier after the i-th op.
fn build_trace(ops: &[(u8, Op)], barrier_at: Option<usize>) -> Trace {
    fn push(events: &mut Vec<Event>, tid: u32, kind: EventKind, seq: &mut u64) {
        events.push(Event {
            seq: *seq,
            rank: Rank(0),
            tid: Tid(tid),
            region: Some(RegionId(0)),
            time_ns: *seq,
            loc: Some(home::trace::SrcLoc::new("m.hmp", *seq as u32 + 1)),
            kind,
        });
        *seq += 1;
    }
    let mut events = Vec::new();
    let mut seq = 0u64;
    // Fork from the spine.
    events.push(Event {
        seq,
        rank: Rank(0),
        tid: Tid(0),
        region: None,
        time_ns: 0,
        loc: None,
        kind: EventKind::Fork {
            region: RegionId(0),
            nthreads: 2,
        },
    });
    seq += 1;
    let mut epoch = 0u64;
    for (i, &(t, op)) in ops.iter().enumerate() {
        let tid = t as u32;
        match op {
            Op::Write(v) => push(
                &mut events,
                tid,
                EventKind::Access {
                    loc: MemLoc::Var(VarId(v)),
                    kind: AccessKind::Write,
                },
                &mut seq,
            ),
            Op::Read(v) => push(
                &mut events,
                tid,
                EventKind::Access {
                    loc: MemLoc::Var(VarId(v)),
                    kind: AccessKind::Read,
                },
                &mut seq,
            ),
            Op::Locked(l, v) => {
                push(&mut events, tid, EventKind::Acquire { lock: LockId(l) }, &mut seq);
                push(
                    &mut events,
                    tid,
                    EventKind::Access {
                        loc: MemLoc::Var(VarId(v)),
                        kind: AccessKind::Write,
                    },
                    &mut seq,
                );
                push(&mut events, tid, EventKind::Release { lock: LockId(l) }, &mut seq);
            }
        }
        if barrier_at == Some(i) {
            // Both threads pass the barrier (recording order: all arrivals
            // precede all departures, which emitting both events here
            // satisfies).
            for bt in 0..2 {
                push(
                    &mut events,
                    bt,
                    EventKind::Barrier {
                        barrier: BarrierId(0),
                        epoch,
                    },
                    &mut seq,
                );
            }
            epoch += 1;
        }
    }
    events.push(Event {
        seq,
        rank: Rank(0),
        tid: Tid(0),
        region: None,
        time_ns: seq,
        loc: None,
        kind: EventKind::JoinRegion {
            region: RegionId(0),
        },
    });
    Trace::from_events(events)
}

fn race_count(trace: &Trace, cfg: &DetectorConfig) -> usize {
    detect(trace, cfg).len()
}

fn pair_set(trace: &Trace, cfg: &DetectorConfig) -> std::collections::BTreeSet<(String, u64, u64)> {
    detect(trace, cfg)
        .into_iter()
        .map(|r| (r.loc.to_string(), r.first.seq, r.second.seq))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The hybrid detector reports a subset of each single-analysis mode
    /// (it is their conjunction).
    #[test]
    fn hybrid_is_conjunction_of_modes(ops in arb_ops()) {
        let trace = build_trace(&ops, None);
        let hybrid = pair_set(&trace, &DetectorConfig::hybrid());
        let lockset = pair_set(&trace, &DetectorConfig::lockset_only());
        let hb = pair_set(&trace, &DetectorConfig::hb_only());
        prop_assert!(hybrid.is_subset(&lockset), "hybrid ⊄ lockset");
        prop_assert!(hybrid.is_subset(&hb), "hybrid ⊄ hb");
    }

    /// Inserting a barrier anywhere never increases the hybrid race count.
    #[test]
    fn adding_a_barrier_never_adds_races(ops in arb_ops(), pos_frac in 0.0f64..1.0) {
        let trace = build_trace(&ops, None);
        let pos = ((ops.len() as f64 * pos_frac) as usize).min(ops.len().saturating_sub(1));
        let trace_b = build_trace(&ops, Some(pos));
        prop_assert!(
            race_count(&trace_b, &DetectorConfig::hybrid())
                <= race_count(&trace, &DetectorConfig::hybrid()),
            "barrier added races"
        );
    }

    /// Wrapping every access in one common lock removes all hybrid races.
    #[test]
    fn common_lock_eliminates_all_races(ops in arb_ops()) {
        let locked: Vec<(u8, Op)> = ops
            .iter()
            .map(|&(t, op)| {
                let v = match op {
                    Op::Write(v) | Op::Read(v) | Op::Locked(_, v) => v,
                };
                (t, Op::Locked(9, v))
            })
            .collect();
        let trace = build_trace(&locked, None);
        prop_assert_eq!(race_count(&trace, &DetectorConfig::hybrid()), 0);
    }

    /// Reads never race with reads, whatever the interleaving.
    #[test]
    fn read_only_histories_are_race_free(
        pairs in proptest::collection::vec((0u8..2, 0u32..4), 1..12)
    ) {
        let ops: Vec<(u8, Op)> = pairs.into_iter().map(|(t, v)| (t, Op::Read(v))).collect();
        let trace = build_trace(&ops, None);
        prop_assert_eq!(race_count(&trace, &DetectorConfig::hybrid()), 0);
        prop_assert_eq!(race_count(&trace, &DetectorConfig::lockset_only()), 0);
    }

    /// Determinism: detection is a pure function of the trace.
    #[test]
    fn detection_is_deterministic(ops in arb_ops()) {
        let trace = build_trace(&ops, None);
        prop_assert_eq!(
            pair_set(&trace, &DetectorConfig::hybrid()),
            pair_set(&trace, &DetectorConfig::hybrid())
        );
    }
}
