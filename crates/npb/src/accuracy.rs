//! Accuracy scoring: match a tool's violation report against the known
//! injections — the paper's detection table.

use crate::inject::{InjectedProgram, InjectionInfo};
use crate::params::{Benchmark, Class};
use home_baselines::{run_tool, Tool};
use home_core::{CheckOptions, HomeReport, Violation, ViolationKind};
use serde::{Deserialize, Serialize};

/// One tool's score on one injected benchmark.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ToolScore {
    /// Tool label.
    pub tool: String,
    /// Injections whose violation the tool reported (true positives).
    pub detected: usize,
    /// Reported violations that match no injection (false positives).
    pub false_positives: usize,
    /// Total injections present.
    pub injected: usize,
}

impl ToolScore {
    /// The paper-table cell: detections plus false positives
    /// (e.g. ITC on BT: 6 detected + 1 FP = 7).
    pub fn reported(&self) -> usize {
        self.detected + self.false_positives
    }
}

/// Does `violation` account for `injection`?
///
/// Initialization (and the level-global half of finalization) are matched
/// by kind alone — a wrong thread level taints call sites program-wide, so
/// locations are not meaningful. Everything else must overlap the
/// episode's line range.
fn matches(violation: &Violation, injection: &InjectionInfo) -> bool {
    if violation.kind != injection.kind {
        return false;
    }
    if violation.kind == ViolationKind::Initialization {
        return true;
    }
    violation
        .locations
        .iter()
        .any(|l| l.line >= injection.lines.0 && l.line <= injection.lines.1)
}

/// Score a report against the injections.
pub fn score(tool: &str, report: &HomeReport, injections: &[InjectionInfo]) -> ToolScore {
    let detected = injections
        .iter()
        .filter(|inj| report.violations.iter().any(|v| matches(v, inj)))
        .count();
    let false_positives = report
        .violations
        .iter()
        .filter(|v| !injections.iter().any(|inj| matches(v, inj)))
        .count();
    ToolScore {
        tool: tool.to_string(),
        detected,
        false_positives,
        injected: injections.len(),
    }
}

/// The accuracy row of one benchmark: every tool's score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Benchmark name (e.g. `NPB-MZ LU`).
    pub benchmark: String,
    /// Number of injected violations.
    pub injected: usize,
    /// Scores per tool, in [`Tool::ALL`] order minus Base.
    pub scores: Vec<ToolScore>,
}

/// Options used for the accuracy experiment: time-faithful scheduling (so
/// latent races stay latent for manifest-only tools) over a few seeds.
pub fn accuracy_options(nprocs: usize) -> CheckOptions {
    let mut o = CheckOptions::new(nprocs, 2).with_seeds(vec![11, 12]);
    o.sched_policy = home_sched::SchedPolicy::EarliestClockFirst;
    o
}

/// Run the full accuracy experiment row for one benchmark.
pub fn accuracy_row(benchmark: Benchmark, class: Class, nprocs: usize) -> AccuracyRow {
    let InjectedProgram {
        program,
        injections,
    } = crate::inject::build_injected(benchmark, class);
    let options = accuracy_options(nprocs);
    let scores = [Tool::Home, Tool::Itc, Tool::Marmot]
        .into_iter()
        .map(|t| {
            let report = run_tool(t, &program, &options);
            score(t.label(), &report, &injections)
        })
        .collect();
    AccuracyRow {
        benchmark: format!("NPB-MZ {}", benchmark.name().trim_end_matches("-MZ")),
        injected: injections.len(),
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_scores(b: Benchmark) -> (usize, usize, usize) {
        let row = accuracy_row(b, Class::S, 2);
        let get = |name: &str| {
            row.scores
                .iter()
                .find(|s| s.tool == name)
                .unwrap()
                .reported()
        };
        (get("HOME"), get("ITC"), get("MARMOT"))
    }

    #[test]
    fn lu_reproduces_paper_row() {
        // Paper: HOME 6, ITC 5, Marmot 5.
        assert_eq!(row_scores(Benchmark::LuMz), (6, 5, 5));
    }

    #[test]
    fn bt_reproduces_paper_row() {
        // Paper: HOME 6, ITC 7 (one false positive), Marmot 6.
        assert_eq!(row_scores(Benchmark::BtMz), (6, 7, 6));
    }

    #[test]
    fn sp_reproduces_paper_row() {
        // Paper: HOME 6, ITC 6, Marmot 5.
        assert_eq!(row_scores(Benchmark::SpMz), (6, 6, 5));
    }

    #[test]
    fn home_has_no_false_positives() {
        for b in Benchmark::ALL {
            let row = accuracy_row(b, Class::S, 2);
            let home = row.scores.iter().find(|s| s.tool == "HOME").unwrap();
            assert_eq!(home.false_positives, 0, "{b}");
            assert_eq!(home.detected, 6, "{b}");
        }
    }
}
