//! Integration tests of the `home` CLI binary against the bundled sample
//! programs.

use std::process::Command;

fn home_cli(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_home"))
        .args(args)
        .output()
        .expect("failed to launch home binary");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn check_flags_figure2_and_exits_nonzero() {
    let (stdout, _, code) = home_cli(&["check", "programs/figure2.hmp"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("isConcurrentRecvViolation"), "{stdout}");
    assert!(stdout.contains("figure2.hmp"));
}

#[test]
fn check_passes_fixed_figure2() {
    let (stdout, _, code) = home_cli(&["check", "programs/figure2_fixed.hmp"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("no thread-safety violations"), "{stdout}");
}

#[test]
fn check_flags_figure1_initialization() {
    let (stdout, _, code) = home_cli(&["check", "programs/figure1.hmp"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("isInitializationViolation"), "{stdout}");
}

#[test]
fn check_accepts_seed_and_thread_flags() {
    let (stdout, _, code) = home_cli(&[
        "check",
        "programs/pipeline.hmp",
        "--procs",
        "4",
        "--threads",
        "2",
        "--seeds",
        "5,6",
        "--faithful",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("2 schedule(s)"));
}

#[test]
fn static_lists_sites_and_monitored_vars() {
    let (stdout, _, code) = home_cli(&["static", "programs/pipeline.hmp"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("mpi_allreduce"));
    assert!(stdout.contains("instrument, hybrid"));
    assert!(stdout.contains("monitored variables: srctmp, tagtmp, commtmp"));
}

#[test]
fn run_reports_time_and_events() {
    let (stdout, _, code) = home_cli(&[
        "run",
        "programs/pipeline.hmp",
        "--tool",
        "home",
        "--procs",
        "4",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("simulated time"));
    assert!(stdout.contains("events"));
}

#[test]
fn fmt_roundtrips() {
    let (stdout, _, code) = home_cli(&["fmt", "programs/figure1.hmp"]);
    assert_eq!(code, Some(0));
    // Canonically formatted output reparses to the same statement count.
    let original =
        home::ir::parse(&std::fs::read_to_string("programs/figure1.hmp").unwrap()).unwrap();
    let reparsed = home::ir::parse(&stdout).unwrap();
    assert_eq!(original.stmt_count(), reparsed.stmt_count());
}

#[test]
fn bad_usage_exits_2() {
    let (_, stderr, code) = home_cli(&["check"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));
    let (_, stderr, code) = home_cli(&["check", "no-such-file.hmp"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("cannot read"));
    let (_, stderr, code) = home_cli(&["bogus", "programs/figure1.hmp"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn help_lists_all_commands() {
    for invocation in [&["help"][..], &["--help"], &["-h"]] {
        let (stdout, _, code) = home_cli(invocation);
        assert_eq!(code, Some(0), "{invocation:?}");
        for cmd in [
            "check", "watch", "serve", "static", "run", "analyze", "submit", "fmt", "help",
        ] {
            assert!(stdout.contains(cmd), "help must mention `{cmd}`: {stdout}");
        }
        assert!(stdout.contains("--jobs"), "{stdout}");
    }
}

#[test]
fn usage_line_mentions_every_command() {
    let (_, stderr, code) = home_cli(&[]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("analyze"),
        "usage must list analyze: {stderr}"
    );
    assert!(stderr.contains("help"), "usage must list help: {stderr}");
    assert!(stderr.contains("serve"), "usage must list serve: {stderr}");
    assert!(
        stderr.contains("submit"),
        "usage must list submit: {stderr}"
    );
}

#[test]
fn invalid_flag_values_exit_2_not_silently_default() {
    let cases: &[&[&str]] = &[
        &["check", "programs/figure1.hmp", "--procs", "two"],
        &["check", "programs/figure1.hmp", "--threads", "-1"],
        &["check", "programs/figure1.hmp", "--seeds", "1,x,3"],
        &["check", "programs/figure1.hmp", "--jobs", "fast"],
        &["check", "programs/figure1.hmp", "--jobs", "0"],
        &["check", "programs/figure1.hmp", "--seeds"],
        &["run", "programs/figure1.hmp", "--seed", "abc"],
        &["run", "programs/figure1.hmp", "--procs", "2.5"],
    ];
    for case in cases {
        let (_, stderr, code) = home_cli(case);
        assert_eq!(code, Some(2), "{case:?} must exit 2: {stderr}");
        assert!(
            stderr.contains("invalid") || stderr.contains("missing") || stderr.contains("--seeds"),
            "{case:?} must explain the error: {stderr}"
        );
    }
}

#[test]
fn jobs_flag_is_accepted_and_deterministic() {
    // Same program, same seeds: serial and parallel runs must produce
    // byte-identical reports and the same exit code.
    for program in ["programs/figure2.hmp", "programs/figure2_fixed.hmp"] {
        let (out_1, _, code_1) = home_cli(&["check", program, "--jobs", "1"]);
        let (out_4, _, code_4) = home_cli(&["check", program, "--jobs", "4"]);
        assert_eq!(code_1, code_4, "{program}");
        assert_eq!(out_1, out_4, "{program}: --jobs must not change the report");
    }
}

#[test]
fn parse_errors_are_reported_with_line() {
    let dir = std::env::temp_dir().join("home_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.hmp");
    std::fs::write(&bad, "program bad {\n  int x = ;\n}").unwrap();
    let (_, stderr, code) = home_cli(&["check", bad.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn run_dumps_trace_and_analyze_reads_it_back() {
    let dir = std::env::temp_dir().join("home_cli_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("fig2.json");
    let (stdout, _, code) = home_cli(&[
        "run",
        "programs/figure2.hmp",
        "--tool",
        "home",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("trace written"));

    let (stdout, _, code) = home_cli(&["analyze", trace_path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "offline analysis finds the violation");
    assert!(stdout.contains("isConcurrentRecvViolation"), "{stdout}");

    // Clean trace → exit 0.
    let clean_path = dir.join("fixed.json");
    home_cli(&[
        "run",
        "programs/figure2_fixed.hmp",
        "--tool",
        "home",
        "--trace-out",
        clean_path.to_str().unwrap(),
    ]);
    let (_, _, code) = home_cli(&["analyze", clean_path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
}

#[test]
fn analyze_rejects_garbage() {
    let dir = std::env::temp_dir().join("home_cli_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("garbage.json");
    std::fs::write(&bad, "not json").unwrap();
    let (_, stderr, code) = home_cli(&["analyze", bad.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("invalid trace"));
}

#[test]
fn analyze_names_file_and_byte_offset_on_truncated_trace() {
    // Dump a real trace, truncate it mid-stream, and check the diagnostic:
    // one stderr line naming the file and the byte offset, exit code 2.
    let dir = std::env::temp_dir().join("home_cli_truncated");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("whole.json");
    let (_, _, code) = home_cli(&[
        "run",
        "programs/figure2.hmp",
        "--tool",
        "home",
        "--trace-out",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));
    let json = std::fs::read_to_string(&trace_path).unwrap();
    let cut = dir.join("truncated.json");
    std::fs::write(&cut, &json[..json.len() / 2]).unwrap();

    let (_, stderr, code) = home_cli(&["analyze", cut.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    let diagnostic = stderr.lines().next().unwrap_or_default();
    assert!(
        diagnostic.contains("truncated.json"),
        "diagnostic must name the file: {stderr}"
    );
    assert!(
        diagnostic.contains("byte "),
        "diagnostic must carry the byte offset: {stderr}"
    );
    assert_eq!(stderr.lines().count(), 1, "one-line diagnostic: {stderr}");
}

#[test]
fn fail_seed_produces_partial_report_and_exit_3() {
    let (stdout, _, code) = home_cli(&[
        "check",
        "programs/figure2.hmp",
        "--seeds",
        "1,2,3,4",
        "--fail-seed",
        "3",
    ]);
    assert_eq!(code, Some(3), "partial results exit 3: {stdout}");
    assert!(stdout.contains("3 schedule(s)"), "{stdout}");
    assert!(stdout.contains("seeds: 3 ok, 1 failed"), "{stdout}");
    assert!(stdout.contains("seed 3: FAILED"), "{stdout}");
    assert!(stdout.contains("PARTIAL RESULTS"), "{stdout}");
    // The surviving seeds still report the violation.
    assert!(stdout.contains("isConcurrentRecvViolation"), "{stdout}");
}

#[test]
fn partial_report_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        home_cli(&[
            "check",
            "programs/figure2.hmp",
            "--seeds",
            "1,2,3,4,5,6",
            "--fail-seed",
            "2,5",
            "--jobs",
            jobs,
        ])
    };
    let (base_out, _, base_code) = run("1");
    assert_eq!(base_code, Some(3), "{base_out}");
    for jobs in ["2", "3", "4", "8"] {
        let (out, _, code) = run(jobs);
        assert_eq!(code, base_code, "exit code at --jobs {jobs}");
        assert_eq!(out, base_out, "report bytes at --jobs {jobs}");
    }
}

#[test]
fn invalid_fail_seed_exits_2() {
    let (_, stderr, code) = home_cli(&["check", "programs/figure1.hmp", "--fail-seed", "one"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("invalid seed"), "{stderr}");
}

#[test]
fn help_documents_exit_codes_and_fail_seed() {
    let (stdout, _, code) = home_cli(&["help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("--fail-seed"), "{stdout}");
    assert!(stdout.contains("3 partial results"), "{stdout}");
    assert!(stdout.contains("record"), "{stdout}");
    assert!(stdout.contains("replay"), "{stdout}");
    assert!(stdout.contains("--engine"), "{stdout}");
}

/// Scratch directory inside the repo's target dir (provided by cargo for
/// integration tests).
fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `  - <violation>` lines of a report, order-insensitive.
fn violation_lines(report: &str) -> std::collections::BTreeSet<String> {
    report
        .lines()
        .filter(|l| l.starts_with("  - "))
        .map(str::to_owned)
        .collect()
}

#[test]
fn record_then_replay_reproduces_check_verdicts_on_every_program() {
    let dir = tmp_dir("record_replay");
    for entry in std::fs::read_dir("programs").unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "hmp") {
            continue;
        }
        let program = path.to_str().unwrap();
        let trace = dir.join(path.with_extension("hbt").file_name().unwrap());
        let trace = trace.to_str().unwrap();

        let (stdout, stderr, code) = home_cli(&["record", program, "-o", trace]);
        assert_eq!(code, Some(0), "{program}: {stderr}");
        assert!(stdout.contains("recorded 4 run(s)"), "{program}: {stdout}");

        let (check_out, _, check_code) = home_cli(&["check", program]);
        let (replay_out, _, replay_code) = home_cli(&["replay", trace]);
        assert_eq!(
            replay_code, check_code,
            "{program}: exit codes must agree\ncheck:\n{check_out}\nreplay:\n{replay_out}"
        );
        assert_eq!(
            violation_lines(&check_out),
            violation_lines(&replay_out),
            "{program}: violations must agree"
        );
    }
}

#[test]
fn record_compress_replays_identically_for_every_jobs_value() {
    let dir = tmp_dir("record_compress");
    for program in ["programs/figure2.hmp", "programs/figure2_fixed.hmp"] {
        let stem = std::path::Path::new(program).file_stem().unwrap();
        let v1 = dir.join(format!("{}.hbt", stem.to_str().unwrap()));
        let v2 = dir.join(format!("{}.v2.hbt", stem.to_str().unwrap()));

        let (_, stderr, code) = home_cli(&["record", program, "-o", v1.to_str().unwrap()]);
        assert_eq!(code, Some(0), "{program}: {stderr}");
        let (_, stderr, code) =
            home_cli(&["record", program, "-o", v2.to_str().unwrap(), "--compress"]);
        assert_eq!(code, Some(0), "{program}: {stderr}");

        let v1_len = std::fs::metadata(&v1).unwrap().len();
        let v2_len = std::fs::metadata(&v2).unwrap().len();
        assert!(
            v2_len < v1_len,
            "{program}: --compress must shrink the trace ({v2_len} vs {v1_len})"
        );

        // The verdict is identical across formats and for every --jobs.
        let (baseline, _, base_code) = home_cli(&["replay", v1.to_str().unwrap()]);
        for jobs in ["1", "2", "4"] {
            let (stdout, stderr, code) =
                home_cli(&["replay", v2.to_str().unwrap(), "--jobs", jobs]);
            assert_eq!(code, base_code, "{program} jobs={jobs}: {stderr}");
            assert_eq!(
                stdout, baseline,
                "{program} jobs={jobs}: compressed replay diverges"
            );
        }
        let (check_out, _, check_code) = home_cli(&["check", program]);
        let (replay_out, _, replay_code) =
            home_cli(&["replay", v2.to_str().unwrap(), "--jobs", "4"]);
        assert_eq!(replay_code, check_code, "{program}: exit codes agree");
        assert_eq!(
            violation_lines(&check_out),
            violation_lines(&replay_out),
            "{program}: violations must agree"
        );
    }
}

#[test]
fn replay_streams_compressed_traces_from_stdin() {
    use std::io::Write;
    let dir = tmp_dir("replay_stdin_v2");
    let trace = dir.join("fig2.v2.hbt");
    let (_, stderr, code) = home_cli(&[
        "record",
        "programs/figure2.hmp",
        "-o",
        trace.to_str().unwrap(),
        "--compress",
    ]);
    assert_eq!(code, Some(0), "{stderr}");

    let (from_file, _, file_code) = home_cli(&["replay", trace.to_str().unwrap()]);
    let bytes = std::fs::read(&trace).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_home"))
        .args(["replay", "-"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn home replay -");
    child
        .stdin
        .take()
        .expect("stdin handle")
        .write_all(&bytes)
        .expect("pipe trace");
    let out = child.wait_with_output().expect("replay exits");
    assert_eq!(out.status.code(), file_code);
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        from_file,
        "stdin replay must match file replay"
    );
}

#[test]
fn replay_rejects_jobs_zero() {
    let (_, stderr, code) = home_cli(&["replay", "whatever.hbt", "--jobs", "0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--jobs"), "{stderr}");
}

#[test]
fn watch_rejects_parallel_jobs_loudly() {
    // The old behavior silently forced --jobs 1; the flag must now be
    // rejected with a clear message instead of being ignored.
    let (_, stderr, code) = home_cli(&["watch", "programs/figure2.hmp", "--jobs", "4"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(
        stderr.contains("watch runs seeds serially") && stderr.contains("--jobs 4"),
        "{stderr}"
    );
    // An explicit --jobs 1 matches the default and is accepted.
    let (_, _, explicit) = home_cli(&["watch", "programs/figure2.hmp", "--jobs", "1"]);
    let (_, _, default) = home_cli(&["watch", "programs/figure2.hmp"]);
    assert_eq!(explicit, default);
}

#[test]
fn check_engine_stream_is_byte_identical_to_batch() {
    for program in ["programs/figure2.hmp", "programs/figure2_fixed.hmp"] {
        for jobs in ["1", "4"] {
            let (batch, _, batch_code) = home_cli(&["check", program, "--jobs", jobs]);
            let (stream, _, stream_code) =
                home_cli(&["check", program, "--jobs", jobs, "--engine", "stream"]);
            assert_eq!(batch_code, stream_code, "{program} jobs={jobs}");
            assert_eq!(batch, stream, "{program} jobs={jobs}");
        }
    }
}

#[test]
fn check_rejects_unknown_engine() {
    let (_, stderr, code) = home_cli(&["check", "programs/figure1.hmp", "--engine", "turbo"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown engine"), "{stderr}");
}

#[test]
fn analyze_reads_hbt_from_stdin() {
    use std::io::Write;
    let dir = tmp_dir("analyze_stdin");
    let trace = dir.join("fig2.hbt");
    let (_, stderr, code) = home_cli(&[
        "record",
        "programs/figure2.hmp",
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");

    let bytes = std::fs::read(&trace).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_home"))
        .args(["analyze", "-"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(&bytes).unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("offline analysis"), "{stdout}");
    assert!(stdout.contains("isConcurrentRecvViolation"), "{stdout}");
}

#[test]
fn analyze_autodetects_hbt_files() {
    let dir = tmp_dir("analyze_hbt");
    let trace = dir.join("fig1.hbt");
    home_cli(&[
        "record",
        "programs/figure1.hmp",
        "-o",
        trace.to_str().unwrap(),
    ]);
    let (stdout, _, code) = home_cli(&["analyze", trace.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("isInitializationViolation"), "{stdout}");
}

#[test]
fn replay_rejects_non_hbt_input() {
    let dir = tmp_dir("replay_reject");
    let bogus = dir.join("not_a_trace.hbt");
    std::fs::write(&bogus, b"{\"events\": []}").unwrap();
    let (_, stderr, code) = home_cli(&["replay", bogus.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("not an HBT trace"), "{stderr}");
}

#[test]
fn replay_reports_truncated_trace_with_byte_offset() {
    let dir = tmp_dir("replay_truncated");
    let trace = dir.join("whole.hbt");
    home_cli(&[
        "record",
        "programs/figure2.hmp",
        "-o",
        trace.to_str().unwrap(),
    ]);
    let bytes = std::fs::read(&trace).unwrap();
    let cut = dir.join("truncated.hbt");
    std::fs::write(&cut, &bytes[..bytes.len() * 2 / 3]).unwrap();

    let (_, stderr, code) = home_cli(&["replay", cut.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    let diagnostic = stderr.lines().next().unwrap_or_default();
    assert!(diagnostic.contains("truncated.hbt"), "{stderr}");
    assert!(diagnostic.contains("byte "), "{stderr}");
}

/// A figure2-style racey exchange followed by a long compute tail: the
/// concurrent-recv evidence completes early in the seed, well before the
/// simulation finishes. Used to prove `watch` streams violations live.
fn slow_racey_program(dir: &std::path::Path) -> String {
    let path = dir.join("slow_racey.hmp");
    std::fs::write(
        &path,
        r#"program slow_racey {
    mpi_init_thread(multiple);
    shared int tag = 0;
    omp parallel num_threads(2) {
        if (rank == 0) {
            mpi_send(to: 1, tag: tag, count: 1);
            mpi_recv(from: 1, tag: tag);
        }
        if (rank == 1) {
            mpi_recv(from: 0, tag: tag);
            mpi_send(to: 0, tag: tag, count: 1);
        }
    }
    omp parallel num_threads(2) {
        omp for i in 0..64 {
            compute(50000, reads: chunk, writes: chunk);
        }
    }
    mpi_finalize();
}
"#,
    )
    .unwrap();
    path.to_str().unwrap().to_owned()
}

#[test]
fn watch_streams_violations_before_the_seed_finishes() {
    let dir = tmp_dir("watch_slow");
    let program = slow_racey_program(&dir);
    let (stdout, stderr, code) = home_cli(&["watch", &program, "--seeds", "1,2,3,4"]);
    assert_eq!(code, Some(1), "{stdout}\n{stderr}");

    // At least one violation line must appear, and the first one must
    // precede its seed's completion marker: it was printed while the
    // simulation was still running, not from the final report.
    let lines: Vec<&str> = stdout.lines().collect();
    let first_violation = lines
        .iter()
        .position(|l| l.starts_with("[seed ") && l.contains("Violation"))
        .unwrap_or_else(|| panic!("no live violation line in:\n{stdout}"));
    let seed = lines[first_violation]
        .trim_start_matches("[seed ")
        .split(']')
        .next()
        .unwrap()
        .to_owned();
    let finished = lines
        .iter()
        .position(|l| l.starts_with(&format!("watch: seed {seed} finished")))
        .unwrap_or_else(|| panic!("no completion marker for seed {seed} in:\n{stdout}"));
    assert!(
        first_violation < finished,
        "violation must stream before seed {seed} finishes:\n{stdout}"
    );
    assert!(stdout.contains("watch: done —"), "{stdout}");
}

#[test]
fn watch_exit_codes_match_check() {
    for (program, expected) in [
        ("programs/figure2.hmp", Some(1)),
        ("programs/figure2_fixed.hmp", Some(0)),
    ] {
        let (stdout, _, code) = home_cli(&["watch", program]);
        assert_eq!(code, expected, "{program}:\n{stdout}");
        let (_, _, check_code) = home_cli(&["check", program]);
        assert_eq!(code, check_code, "{program}: watch and check must agree");
        assert!(stdout.contains("watch: done —"), "{stdout}");
    }
}

#[test]
fn watch_flush_seed_prints_per_seed_findings_with_markers() {
    let (stdout, _, code) = home_cli(&[
        "watch",
        "programs/figure2.hmp",
        "--seeds",
        "1,2",
        "--flush",
        "seed",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    for seed in ["1", "2"] {
        assert!(
            stdout.contains(&format!("watch: seed {seed} finished")),
            "missing seed {seed} marker:\n{stdout}"
        );
    }
    assert!(
        stdout.lines().any(|l| l.starts_with("[seed 1]")),
        "seed-flush mode must print per-seed findings:\n{stdout}"
    );
}

#[test]
fn watch_flush_end_renders_exactly_the_check_report() {
    // `--flush end` defers everything to the final report; since watch
    // forces the stream engine and stream is byte-identical to batch,
    // the output must equal `check`'s.
    let (watch_out, _, watch_code) = home_cli(&["watch", "programs/figure2.hmp", "--flush", "end"]);
    let (check_out, _, check_code) = home_cli(&["check", "programs/figure2.hmp"]);
    assert_eq!(watch_code, check_code);
    assert_eq!(watch_out, check_out, "watch --flush end must match check");
}

#[test]
fn watch_rejects_unknown_flush_policy() {
    let (_, stderr, code) = home_cli(&["watch", "programs/figure2.hmp", "--flush", "bogus"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flush policy"), "{stderr}");
}

#[test]
fn watch_reports_failed_seeds_and_exits_3() {
    let (stdout, _, code) = home_cli(&[
        "watch",
        "programs/figure2.hmp",
        "--seeds",
        "1,2,3",
        "--fail-seed",
        "2",
    ]);
    assert_eq!(code, Some(3), "{stdout}");
    assert!(stdout.contains("watch: seed 2 FAILED:"), "{stdout}");
    assert!(stdout.contains("PARTIAL"), "{stdout}");
}

#[test]
fn record_without_output_path_exits_2() {
    let (_, stderr, code) = home_cli(&["record", "programs/figure1.hmp"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("-o"), "{stderr}");
}

#[test]
fn watch_survives_a_closed_stdout_pipe() {
    // `home watch prog.hmp | head -1`: once the pipe closes, further output
    // must be suppressed (no panic, no broken-pipe abort) and the exit code
    // must still reflect the verdict.
    use std::io::Read;
    let mut child = Command::new(env!("CARGO_BIN_EXE_home"))
        .args(["watch", "programs/figure2.hmp", "--seeds", "1,2,3,4"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn watch");
    // Read one byte, then drop the read end so later writes hit EPIPE.
    let mut stdout = child.stdout.take().expect("stdout pipe");
    let mut byte = [0u8; 1];
    stdout.read_exact(&mut byte).expect("first output byte");
    drop(stdout);
    let out = child.wait_with_output().expect("watch exits");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked"),
        "watch panicked on EPIPE: {stderr}"
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "verdict exit code survives the closed pipe: {stderr}"
    );
}

#[test]
fn serve_and_submit_roundtrip_matches_replay() {
    let dir = tmp_dir("serve_cli");
    let trace = dir.join("figure2.hbt");
    let socket = dir.join("collector.sock");
    let _ = std::fs::remove_file(&socket);
    let trace_arg = trace.to_str().unwrap();
    let socket_arg = socket.to_str().unwrap();

    let (_, stderr, code) = home_cli(&[
        "record",
        "programs/figure2.hmp",
        "-o",
        trace_arg,
        "--seeds",
        "1,2",
    ]);
    assert_eq!(code, Some(0), "{stderr}");

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_home"))
        .args(["serve", "--socket", socket_arg])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    // Wait for the socket to come up.
    let mut ready = false;
    for _ in 0..100 {
        if std::os::unix::net::UnixStream::connect(&socket).is_ok() {
            ready = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(ready, "daemon never bound its socket");

    let (replay_out, _, replay_code) = home_cli(&["replay", trace_arg]);
    let (submit_out, submit_err, submit_code) =
        home_cli(&["submit", trace_arg, "--socket", socket_arg]);
    assert_eq!(submit_code, replay_code, "{submit_out}{submit_err}");
    assert_eq!(
        violation_lines(&submit_out),
        violation_lines(&replay_out),
        "daemon verdict differs from replay:\n{submit_out}\nvs\n{replay_out}"
    );

    let (json_out, _, json_code) =
        home_cli(&["submit", trace_arg, "--socket", socket_arg, "--json"]);
    assert_eq!(json_code, submit_code);
    assert!(json_out.contains("\"ok\":true"), "{json_out}");

    let (status_out, _, status_code) = home_cli(&["serve", "--socket", socket_arg, "--status"]);
    assert_eq!(status_code, Some(0), "{status_out}");
    assert!(status_out.contains("\"submissions\":2"), "{status_out}");
    assert!(status_out.contains("predicate"), "{status_out}");

    let (_, stop_err, stop_code) = home_cli(&["serve", "--socket", socket_arg, "--stop"]);
    assert_eq!(stop_code, Some(0), "{stop_err}");
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "daemon exits cleanly after --stop");
}

#[test]
fn submit_without_socket_exits_2() {
    let (_, stderr, code) = home_cli(&["submit", "programs/figure1.hmp"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--socket"), "{stderr}");
}

#[test]
fn serve_without_socket_exits_2() {
    let (_, stderr, code) = home_cli(&["serve"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--socket"), "{stderr}");
}
