//! # home-bench — regenerating the paper's tables and figures
//!
//! * [`perf`] — the virtual-time sweeps behind Figures 4–6 (execution time
//!   vs process count for Base/HOME/MARMOT/ITC on LU/BT/SP-MZ) and
//!   Figure 7 (average overhead);
//! * the accuracy table comes from [`home_npb::accuracy_row`];
//! * the `report` binary renders everything (`cargo run -p home-bench
//!   --bin report -- all`);
//! * Criterion micro-benchmarks cover the analysis engines themselves
//!   (`cargo bench`).

pub mod perf;

pub use perf::{
    figure_sweep, measure, overhead_from_points, OverheadPoint, PerfPoint, PROC_COUNTS,
};
