//! # home-omp — an OpenMP-like shared-memory runtime
//!
//! Implements the OpenMP constructs the paper's programs use, over
//! [`home_sched`] virtual threads, with every synchronization operation
//! emitting [`home_trace`] events the dynamic analyses consume:
//!
//! * `parallel` regions ([`OmpProc::parallel`]) — the caller becomes the
//!   master (tid 0) and workers are forked as virtual threads;
//! * worksharing: static and dynamic `for` schedules, `sections`, `single`;
//! * synchronization: `barrier`, named `critical`, runtime locks
//!   ([`OmpLock`]), and team reductions;
//! * instrumented shared-variable accesses (`read_var`/`write_var`) for the
//!   full-monitoring baseline (Intel-Thread-Checker-style).
//!
//! Construct costs ([`OmpCosts`]) are charged in virtual time so that
//! instrumentation overhead shows up in the simulated makespan — the
//! quantity Figures 4–7 of the paper compare across tools.

mod lock;
mod proc;
mod team;

pub use lock::OmpLock;
pub use proc::{DynFor, OmpCosts, OmpCtx, OmpProc, SectionBody};
pub use team::{static_range, Team};

#[cfg(test)]
mod tests {
    use super::*;
    use home_sched::{Runtime, SchedConfig};
    use home_trace::{Collector, EventKind, Rank, Tid};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    fn with_proc<F>(seed: u64, f: F) -> home_trace::Trace
    where
        F: FnOnce(OmpProc) + Send + 'static,
    {
        let rt = Runtime::new(SchedConfig::deterministic(seed));
        let (collector, sink) = Collector::in_memory();
        let proc = OmpProc::with_costs(rt.clone(), Rank(0), collector, OmpCosts::zero());
        rt.spawn("rank0", move || f(proc));
        rt.run().unwrap();
        sink.drain()
    }

    #[test]
    fn parallel_runs_all_threads() {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        with_proc(0, move |proc| {
            proc.parallel(4, move |ctx| {
                assert!(ctx.tid().index() < 4);
                assert_eq!(ctx.nthreads(), 4);
                c2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn fork_join_events_bracket_region() {
        let trace = with_proc(1, |proc| {
            proc.parallel(2, |ctx| {
                ctx.write_var("x", None);
                Ok(())
            })
            .unwrap();
        });
        let kinds: Vec<&EventKind> = trace.events().iter().map(|e| &e.kind).collect();
        assert!(matches!(
            kinds.first(),
            Some(EventKind::Fork { nthreads: 2, .. })
        ));
        assert!(matches!(kinds.last(), Some(EventKind::JoinRegion { .. })));
        // Two access events, one per thread, both inside the region.
        let accesses: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Access { .. }))
            .collect();
        assert_eq!(accesses.len(), 2);
        assert!(accesses.iter().all(|e| e.region.is_some()));
        let tids: std::collections::HashSet<Tid> = accesses.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn master_and_single_select_one_thread() {
        let master_runs = Arc::new(AtomicUsize::new(0));
        let single_runs = Arc::new(AtomicUsize::new(0));
        let (m2, s2) = (Arc::clone(&master_runs), Arc::clone(&single_runs));
        with_proc(2, move |proc| {
            let m3 = Arc::clone(&m2);
            let s3 = Arc::clone(&s2);
            proc.parallel(4, move |ctx| {
                ctx.master(|| m3.fetch_add(1, Ordering::SeqCst));
                ctx.single(|| s3.fetch_add(1, Ordering::SeqCst))?;
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(master_runs.load(Ordering::SeqCst), 1);
        assert_eq!(single_runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn critical_emits_acquire_release_and_excludes() {
        let max_inside = Arc::new(AtomicUsize::new(0));
        let inside = Arc::new(AtomicUsize::new(0));
        let (m2, i2) = (Arc::clone(&max_inside), Arc::clone(&inside));
        let trace = with_proc(3, move |proc| {
            let m3 = Arc::clone(&m2);
            let i3 = Arc::clone(&i2);
            proc.parallel(3, move |ctx| {
                let m = Arc::clone(&m3);
                let i = Arc::clone(&i3);
                ctx.critical("update", || {
                    let n = i.fetch_add(1, Ordering::SeqCst) + 1;
                    m.fetch_max(n, Ordering::SeqCst);
                    i.fetch_sub(1, Ordering::SeqCst);
                })?;
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(max_inside.load(Ordering::SeqCst), 1);
        let acquires = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Acquire { .. }))
            .count();
        let releases = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Release { .. }))
            .count();
        assert_eq!(acquires, 3);
        assert_eq!(releases, 3);
    }

    #[test]
    fn barrier_emits_per_thread_events_with_same_epoch() {
        let trace = with_proc(4, |proc| {
            proc.parallel(3, |ctx| {
                ctx.barrier()?;
                ctx.barrier()?;
                Ok(())
            })
            .unwrap();
        });
        let epochs: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Barrier { epoch, .. } => Some(epoch),
                _ => None,
            })
            .collect();
        assert_eq!(epochs.len(), 6);
        assert_eq!(epochs.iter().filter(|&&e| e == 0).count(), 3);
        assert_eq!(epochs.iter().filter(|&&e| e == 1).count(), 3);
    }

    #[test]
    fn static_for_covers_iteration_space() {
        let sum = Arc::new(AtomicU64::new(0));
        let s2 = Arc::clone(&sum);
        with_proc(5, move |proc| {
            let s3 = Arc::clone(&s2);
            proc.parallel(3, move |ctx| {
                for i in ctx.for_static(100) {
                    s3.fetch_add(i, Ordering::SeqCst);
                }
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(sum.load(Ordering::SeqCst), 4950);
    }

    #[test]
    fn dynamic_for_covers_iteration_space() {
        let sum = Arc::new(AtomicU64::new(0));
        let s2 = Arc::clone(&sum);
        with_proc(6, move |proc| {
            let s3 = Arc::clone(&s2);
            proc.parallel(4, move |ctx| {
                for chunk in ctx.for_dynamic(57, 5) {
                    for i in chunk {
                        s3.fetch_add(i, Ordering::SeqCst);
                    }
                }
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..57).sum::<u64>());
    }

    #[test]
    fn sections_each_run_once() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = Arc::clone(&log);
        with_proc(7, move |proc| {
            let l3 = Arc::clone(&l2);
            proc.parallel(2, move |ctx| {
                let la = Arc::clone(&l3);
                let lb = Arc::clone(&l3);
                let lc = Arc::clone(&l3);
                let sa = move |_c: &OmpCtx| {
                    la.lock().push("a");
                    Ok(())
                };
                let sb = move |_c: &OmpCtx| {
                    lb.lock().push("b");
                    Ok(())
                };
                let sc = move |_c: &OmpCtx| {
                    lc.lock().push("c");
                    Ok(())
                };
                ctx.sections(&[&sa, &sb, &sc])?;
                Ok(())
            })
            .unwrap();
        });
        let mut l = log.lock().clone();
        l.sort_unstable();
        assert_eq!(l, vec!["a", "b", "c"]);
    }

    #[test]
    fn team_reduction() {
        with_proc(8, |proc| {
            proc.parallel(4, |ctx| {
                let r = ctx.reduce((ctx.tid().index() + 1) as f64, |a, b| a + b)?;
                assert_eq!(r, 10.0);
                Ok(())
            })
            .unwrap();
        });
    }

    #[test]
    fn sequential_events_have_no_region() {
        let trace = with_proc(9, |proc| {
            proc.emit_seq(
                None,
                EventKind::Access {
                    loc: home_trace::MemLoc::Var(proc.collector().intern_var("g")),
                    kind: home_trace::AccessKind::Write,
                },
            );
        });
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].region, None);
        assert_eq!(trace.events()[0].tid, Tid(0));
    }

    #[test]
    fn region_ids_are_unique_per_process() {
        let trace = with_proc(10, |proc| {
            for _ in 0..3 {
                proc.parallel(2, |_ctx| Ok(())).unwrap();
            }
        });
        let regions: std::collections::HashSet<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Fork { region, .. } => Some(region),
                _ => None,
            })
            .collect();
        assert_eq!(regions.len(), 3);
    }

    #[test]
    fn event_cost_advances_virtual_time() {
        let rt = Runtime::new(SchedConfig::deterministic(11));
        let (collector, _sink) = Collector::in_memory();
        let costs = OmpCosts {
            event: home_sched::SimTime::from_nanos(100),
            ..OmpCosts::zero()
        };
        let proc = OmpProc::with_costs(rt.clone(), Rank(0), collector, costs);
        rt.spawn("rank0", move || {
            proc.parallel(1, |ctx| {
                ctx.write_var("x", None);
                ctx.write_var("x", None);
                Ok(())
            })
            .unwrap();
        });
        rt.run().unwrap();
        // Fork + Join + 2 accesses = 4 recorded events × 100ns.
        assert_eq!(rt.makespan().as_nanos(), 400);
    }
}
