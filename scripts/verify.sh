#!/usr/bin/env bash
# Tier-1 verification: build + test + formatting + lints, fully offline.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

# Everything resolves to path dependencies (shims/ for external crates), so
# --offline must always work; it also guards against accidental network use.
echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: all checks passed"
