//! Accuracy-table bench target (paper Table, Section V-B): full pipeline —
//! inject, run all three tools, score.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use home_npb::{accuracy_row, Benchmark, Class};
use std::time::Duration;

fn bench_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("accuracy_table");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for bench in Benchmark::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &bench,
            |b, &bench| b.iter(|| accuracy_row(bench, Class::S, 2)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy);
criterion_main!(benches);
