//! The paper's Figure 1 case study: `MPI_Init` (no thread support) followed
//! by MPI calls inside `omp sections` — an initialization violation that
//! "is difficult to check because there is no compilation error or warning
//! before running".
//!
//! ```text
//! cargo run --example case_study_1
//! ```

use home::prelude::*;

const FIGURE_1: &str = r#"
program case_study_1 {
    mpi_init();
    omp parallel num_threads(2) {
        omp sections {
            section {
                if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
            }
            section {
                if (rank == 1) { mpi_recv(from: 0, tag: 0); }
            }
        }
    }
    mpi_finalize();
}
"#;

fn main() {
    let program = parse(FIGURE_1).expect("valid DSL");
    let report = check(&program, &CheckOptions::default());
    print!("{}", report.render());

    assert!(
        report.has(ViolationKind::Initialization),
        "HOME must flag the MPI_THREAD_SINGLE / omp-parallel conflict"
    );
    println!(
        "\nFigure 1 verdict: initialization violation detected \
         (plain MPI_Init provides MPI_THREAD_SINGLE; worker threads still call MPI)."
    );

    // The fix the paper implies: request real thread support. (FUNNELED
    // would only be safe if the sections happened to run on the master —
    // a schedule-dependent property, which is exactly why the level matters.)
    let fully_fixed = FIGURE_1.replace("mpi_init();", "mpi_init_thread(multiple);");
    let report_fixed = check(&parse(&fully_fixed).unwrap(), &CheckOptions::default());
    assert!(
        !report_fixed.has(ViolationKind::Initialization),
        "MPI_THREAD_MULTIPLE resolves it: {}",
        report_fixed.render()
    );
    println!("After requesting MPI_THREAD_MULTIPLE: no initialization violation.");
}
