//! Violation injection (paper Section V: "we artificially implemented
//! several tricky errors inside of these benchmarks for the accuracy
//! testing").
//!
//! Each injection is a self-contained *episode* — a handful of statements
//! spliced into the correct benchmark — engineered to violate exactly one
//! thread-safety rule. Two special episodes reproduce the baselines'
//! documented failure modes:
//!
//! * *latent* episodes separate the racy calls by a long computation, so
//!   the race never manifests under time-faithful scheduling — HOME's
//!   lockset/HB analysis still predicts it, Marmot (manifest-only) misses
//!   it;
//! * the *benign critical* episode (BT only) serializes concurrent receives
//!   under `omp critical` — safe, but flagged by the `critical`-blind ITC
//!   model (its false positive).

use crate::gen::benchmark_body;
use crate::params::{Benchmark, Class};
use home_core::ViolationKind;
use home_ir::build::{compute, if_then, mpi, omp_critical, omp_parallel, recv, send};
use home_ir::{BinOp, Expr, IrThreadLevel, MpiStmt, Program, Stmt};
use serde::{Deserialize, Serialize};

/// Label + expected kind + source-line range of one injected episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionInfo {
    /// The violation class this episode commits.
    pub kind: ViolationKind,
    /// Human-readable label (shows up in the accuracy table).
    pub label: String,
    /// Inclusive line range of the episode in the generated program.
    pub lines: (u32, u32),
}

/// A benchmark program with its injected violations.
#[derive(Debug, Clone)]
pub struct InjectedProgram {
    /// The program (correct benchmark + episodes).
    pub program: Program,
    /// What was injected, for accuracy scoring.
    pub injections: Vec<InjectionInfo>,
}

/// Which episodes a benchmark receives — chosen to reproduce the paper's
/// accuracy table (HOME 6/6/6, ITC 5/7/6, Marmot 5/6/5).
fn episode_plan(benchmark: Benchmark) -> (Vec<Episode>, bool) {
    use Episode::*;
    match benchmark {
        // LU carries the probe episode (latent): ITC cannot wrap probes
        // (miss → 5) and Marmot never sees it manifest (miss → 5).
        Benchmark::LuMz => (
            vec![
                InitFunneled,
                FinalizeWorker,
                RecvManifest { tag: 910 },
                Request,
                ProbeLatent,
                CollectivePar,
            ],
            false,
        ),
        // BT: all six manifest (Marmot 6), no probe (ITC detects 6) plus
        // the benign critical episode (ITC's false positive → 7).
        Benchmark::BtMz => (
            vec![
                InitFunneled,
                FinalizeWorker,
                RecvManifest { tag: 910 },
                RecvManifest { tag: 915 },
                Request,
                CollectivePar,
            ],
            true,
        ),
        // SP: one latent receive (Marmot misses → 5), no probe (ITC 6).
        Benchmark::SpMz => (
            vec![
                InitFunneled,
                FinalizeWorker,
                RecvManifest { tag: 910 },
                RecvLatent,
                Request,
                CollectivePar,
            ],
            false,
        ),
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Episode {
    InitFunneled,
    FinalizeWorker,
    RecvManifest { tag: i64 },
    RecvLatent,
    Request,
    ProbeLatent,
    CollectivePar,
}

impl Episode {
    fn kind(self) -> ViolationKind {
        match self {
            Episode::InitFunneled => ViolationKind::Initialization,
            Episode::FinalizeWorker => ViolationKind::Finalization,
            Episode::RecvManifest { .. } | Episode::RecvLatent => ViolationKind::ConcurrentRecv,
            Episode::Request => ViolationKind::ConcurrentRequest,
            Episode::ProbeLatent => ViolationKind::Probe,
            Episode::CollectivePar => ViolationKind::CollectiveCall,
        }
    }

    fn label(self) -> String {
        match self {
            Episode::InitFunneled => "funneled-init-with-worker-MPI".into(),
            Episode::FinalizeWorker => "finalize-on-worker-thread".into(),
            Episode::RecvManifest { tag } => format!("concurrent-recv-same-tag-{tag}"),
            Episode::RecvLatent => "concurrent-recv-latent".into(),
            Episode::Request => "shared-request-double-wait".into(),
            Episode::ProbeLatent => "concurrent-probe-latent".into(),
            Episode::CollectivePar => "parallel-collective".into(),
        }
    }

    /// The episode's statements. Episodes use tags ≥ 900 so they never
    /// interfere with the benchmark's halo tags.
    fn stmts(self) -> Vec<Stmt> {
        let rank0 = Expr::bin(BinOp::Eq, Expr::Rank, Expr::int(0));
        let rank1 = Expr::bin(BinOp::Eq, Expr::Rank, Expr::int(1));
        let tid0 = Expr::bin(BinOp::Eq, Expr::ThreadId, Expr::int(0));
        let tid1 = Expr::bin(BinOp::Eq, Expr::ThreadId, Expr::int(1));
        match self {
            // The init statement itself is emitted by `build_injected`;
            // this is the trigger region: every thread does a thread-
            // distinct self-exchange (legal under MULTIPLE, a violation
            // under FUNNELED).
            Episode::InitFunneled => vec![omp_parallel(
                Expr::int(0),
                vec![
                    send(
                        Expr::Rank,
                        Expr::bin(BinOp::Add, Expr::int(900), Expr::ThreadId),
                        Expr::int(1),
                    ),
                    recv(
                        Expr::Rank,
                        Expr::bin(BinOp::Add, Expr::int(900), Expr::ThreadId),
                    ),
                ],
            )],
            // Emitted in place of the final finalize.
            Episode::FinalizeWorker => vec![omp_parallel(
                Expr::int(0),
                vec![if_then(tid1, vec![mpi(MpiStmt::Finalize)])],
            )],
            Episode::RecvManifest { tag } => vec![
                if_then(
                    rank0,
                    vec![
                        send(Expr::int(1), Expr::int(tag), Expr::int(1)),
                        send(Expr::int(1), Expr::int(tag), Expr::int(1)),
                    ],
                ),
                if_then(
                    rank1,
                    vec![omp_parallel(
                        Expr::int(0),
                        vec![recv(Expr::int(0), Expr::int(tag))],
                    )],
                ),
            ],
            Episode::RecvLatent => vec![
                if_then(
                    rank0.clone(),
                    vec![
                        send(Expr::int(1), Expr::int(911), Expr::int(1)),
                        send(Expr::int(1), Expr::int(911), Expr::int(1)),
                    ],
                ),
                if_then(
                    rank1,
                    vec![omp_parallel(
                        Expr::int(0),
                        vec![
                            if_then(
                                tid0,
                                vec![
                                    recv(Expr::int(0), Expr::int(911)),
                                    send(Expr::int(0), Expr::int(912), Expr::int(1)),
                                ],
                            ),
                            if_then(
                                tid1,
                                vec![
                                    compute(Expr::int(500_000_000)),
                                    recv(Expr::int(0), Expr::int(911)),
                                ],
                            ),
                        ],
                    )],
                ),
                if_then(rank0, vec![recv(Expr::int(1), Expr::int(912))]),
            ],
            Episode::Request => vec![
                if_then(
                    rank0,
                    vec![send(Expr::int(1), Expr::int(920), Expr::int(1))],
                ),
                if_then(
                    rank1,
                    vec![
                        mpi(MpiStmt::Irecv {
                            src: Expr::int(0),
                            tag: Expr::int(920),
                            req: "rq920".into(),
                            comm: None,
                        }),
                        omp_parallel(
                            Expr::int(0),
                            vec![mpi(MpiStmt::Wait {
                                req: "rq920".into(),
                            })],
                        ),
                    ],
                ),
            ],
            Episode::ProbeLatent => vec![
                if_then(
                    rank0,
                    vec![send(Expr::int(1), Expr::int(930), Expr::int(1))],
                ),
                if_then(
                    rank1.clone(),
                    vec![omp_parallel(
                        Expr::int(0),
                        vec![
                            if_then(
                                tid0,
                                vec![
                                    mpi(MpiStmt::Probe {
                                        src: Expr::int(0),
                                        tag: Expr::int(930),
                                        comm: None,
                                    }),
                                    // A benign, differently-tagged call so
                                    // thread 0's probe has a visible end in
                                    // the observed schedule.
                                    mpi(MpiStmt::Iprobe {
                                        src: Expr::int(0),
                                        tag: Expr::int(931),
                                        comm: None,
                                    }),
                                ],
                            ),
                            if_then(
                                tid1,
                                vec![
                                    compute(Expr::int(500_000_000)),
                                    mpi(MpiStmt::Probe {
                                        src: Expr::int(0),
                                        tag: Expr::int(930),
                                        comm: None,
                                    }),
                                ],
                            ),
                        ],
                    )],
                ),
                if_then(rank1, vec![recv(Expr::int(0), Expr::int(930))]),
            ],
            Episode::CollectivePar => vec![omp_parallel(
                Expr::int(0),
                vec![mpi(MpiStmt::Barrier { comm: None })],
            )],
        }
    }
}

/// The benign ITC-false-positive episode (not a violation; not listed in
/// `injections`).
fn benign_critical_episode() -> Vec<Stmt> {
    let rank0 = Expr::bin(BinOp::Eq, Expr::Rank, Expr::int(0));
    let rank1 = Expr::bin(BinOp::Eq, Expr::Rank, Expr::int(1));
    vec![
        if_then(
            rank0,
            vec![
                send(Expr::int(1), Expr::int(940), Expr::int(1)),
                send(Expr::int(1), Expr::int(940), Expr::int(1)),
            ],
        ),
        if_then(
            rank1,
            vec![omp_parallel(
                Expr::int(0),
                vec![omp_critical(
                    "recv_cs",
                    vec![recv(Expr::int(0), Expr::int(940))],
                )],
            )],
        ),
    ]
}

/// Line range (min, max) covered by `stmts` after id/line assignment.
fn line_range(stmts: &[Stmt]) -> (u32, u32) {
    let mut min = u32::MAX;
    let mut max = 0;
    fn walk(stmts: &[Stmt], min: &mut u32, max: &mut u32) {
        for s in stmts {
            *min = (*min).min(s.line);
            *max = (*max).max(s.line);
            for b in s.kind.blocks() {
                walk(b, min, max);
            }
        }
    }
    walk(stmts, &mut min, &mut max);
    (min, max)
}

/// Build `benchmark` (at `class`) with its paper-table injection plan.
pub fn build_injected(benchmark: Benchmark, class: Class) -> InjectedProgram {
    let (episodes, with_benign) = episode_plan(benchmark);
    build_with_episodes(benchmark, class, &episodes, with_benign)
}

fn build_with_episodes(
    benchmark: Benchmark,
    class: Class,
    episodes: &[Episode],
    with_benign: bool,
) -> InjectedProgram {
    let init_level = if episodes.contains(&Episode::InitFunneled) {
        IrThreadLevel::Funneled
    } else {
        IrThreadLevel::Multiple
    };
    let finalize_replaced = episodes.contains(&Episode::FinalizeWorker);

    // Assemble top-level statements, remembering which body indices belong
    // to which episode.
    let mut body: Vec<Stmt> = vec![mpi(MpiStmt::InitThread {
        required: init_level,
    })];
    let mut episode_spans: Vec<(Episode, std::ops::Range<usize>)> = Vec::new();

    // The init trigger region goes right after init.
    if let Some(&ep) = episodes.iter().find(|e| matches!(e, Episode::InitFunneled)) {
        let stmts = ep.stmts();
        let start = body.len();
        body.extend(stmts);
        episode_spans.push((ep, start..body.len()));
    }

    body.extend(benchmark_body(benchmark, class));

    for &ep in episodes {
        if matches!(ep, Episode::InitFunneled | Episode::FinalizeWorker) {
            continue;
        }
        let stmts = ep.stmts();
        let start = body.len();
        body.extend(stmts);
        episode_spans.push((ep, start..body.len()));
    }

    if with_benign {
        body.extend(benign_critical_episode());
    }

    // Finalize (possibly the violating variant).
    if finalize_replaced {
        let ep = Episode::FinalizeWorker;
        let stmts = ep.stmts();
        let start = body.len();
        body.extend(stmts);
        episode_spans.push((ep, start..body.len()));
    } else {
        body.push(mpi(MpiStmt::Finalize));
    }

    let program = home_ir::build::finalize(
        &format!(
            "{}_{}_injected",
            benchmark.name().to_lowercase().replace('-', "_"),
            class
        ),
        body,
    );

    // Now that lines are assigned, record per-episode line ranges.
    let injections = episode_spans
        .into_iter()
        .map(|(ep, span)| InjectionInfo {
            kind: ep.kind(),
            label: ep.label(),
            lines: line_range(&program.body[span]),
        })
        .collect();

    InjectedProgram {
        program,
        injections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_have_six_injections() {
        for b in Benchmark::ALL {
            let ip = build_injected(b, Class::S);
            assert_eq!(ip.injections.len(), 6, "{b}");
        }
    }

    #[test]
    fn lu_has_probe_bt_and_sp_do_not() {
        let kinds = |b: Benchmark| {
            build_injected(b, Class::S)
                .injections
                .iter()
                .map(|i| i.kind)
                .collect::<Vec<_>>()
        };
        assert!(kinds(Benchmark::LuMz).contains(&ViolationKind::Probe));
        assert!(!kinds(Benchmark::BtMz).contains(&ViolationKind::Probe));
        assert!(!kinds(Benchmark::SpMz).contains(&ViolationKind::Probe));
        // BT has two receive injections.
        assert_eq!(
            kinds(Benchmark::BtMz)
                .iter()
                .filter(|k| **k == ViolationKind::ConcurrentRecv)
                .count(),
            2
        );
    }

    #[test]
    fn injected_programs_reparse() {
        for b in Benchmark::ALL {
            let ip = build_injected(b, Class::S);
            let printed = home_ir::print_program(&ip.program);
            home_ir::parse(&printed).expect("injected program must reparse");
        }
    }

    #[test]
    fn line_ranges_are_disjoint_and_nonempty() {
        for b in Benchmark::ALL {
            let ip = build_injected(b, Class::S);
            let mut ranges: Vec<(u32, u32)> = ip.injections.iter().map(|i| i.lines).collect();
            ranges.sort_unstable();
            for w in ranges.windows(2) {
                assert!(w[0].1 < w[1].0, "{b}: overlapping ranges {ranges:?}");
            }
            for (lo, hi) in ranges {
                assert!(lo > 0 && hi >= lo);
            }
        }
    }

    #[test]
    fn all_six_kinds_covered_in_lu() {
        let ip = build_injected(Benchmark::LuMz, Class::S);
        let mut kinds: Vec<ViolationKind> = ip.injections.iter().map(|i| i.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), 6, "LU exercises every violation class");
    }
}
