//! Figure 6 bench target: SpMz execution under each tool.
//!
//! Criterion measures the *wall-clock* cost of simulating each
//! (tool, process-count) cell; the simulated-seconds series itself is
//! printed by `cargo run -p home-bench --bin report -- figure6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use home_baselines::Tool;
use home_bench::measure;
use home_npb::{Benchmark, Class};
use std::time::Duration;

fn bench_sp_mz(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure6_sp_mz");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for np in [2usize, 8] {
        for tool in [Tool::Base, Tool::Home, Tool::Marmot, Tool::Itc] {
            group.bench_with_input(BenchmarkId::new(tool.label(), np), &np, |b, &np| {
                b.iter(|| measure(Benchmark::SpMz, Class::W, tool, np))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sp_mz);
criterion_main!(benches);
