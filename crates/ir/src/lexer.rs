//! Lexer for the hybrid mini-language.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Colon,
    DotDot,
    // Operators.
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Colon => write!(f, ":"),
            Tok::DotDot => write!(f, ".."),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} on line {}",
            self.ch, self.line
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`. Supports `//` line comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! push {
        ($t:expr) => {
            out.push(Token { tok: $t, line })
        };
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    // Line comment.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    push!(Tok::Slash);
                }
            }
            c if c.is_ascii_digit() => {
                let mut v: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        v = v * 10 + digit as i64;
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s));
            }
            '{' => {
                chars.next();
                push!(Tok::LBrace);
            }
            '}' => {
                chars.next();
                push!(Tok::RBrace);
            }
            '(' => {
                chars.next();
                push!(Tok::LParen);
            }
            ')' => {
                chars.next();
                push!(Tok::RParen);
            }
            ';' => {
                chars.next();
                push!(Tok::Semi);
            }
            ',' => {
                chars.next();
                push!(Tok::Comma);
            }
            ':' => {
                chars.next();
                push!(Tok::Colon);
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    push!(Tok::DotDot);
                } else {
                    return Err(LexError { ch: '.', line });
                }
            }
            '+' => {
                chars.next();
                push!(Tok::Plus);
            }
            '-' => {
                chars.next();
                push!(Tok::Minus);
            }
            '*' => {
                chars.next();
                push!(Tok::Star);
            }
            '%' => {
                chars.next();
                push!(Tok::Percent);
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::EqEq);
                } else {
                    push!(Tok::Assign);
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::NotEq);
                } else {
                    push!(Tok::Bang);
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::Le);
                } else {
                    push!(Tok::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(Tok::Ge);
                } else {
                    push!(Tok::Gt);
                }
            }
            '&' => {
                chars.next();
                if chars.peek() == Some(&'&') {
                    chars.next();
                    push!(Tok::AndAnd);
                } else {
                    return Err(LexError { ch: '&', line });
                }
            }
            '|' => {
                chars.next();
                if chars.peek() == Some(&'|') {
                    chars.next();
                    push!(Tok::OrOr);
                } else {
                    return Err(LexError { ch: '|', line });
                }
            }
            other => return Err(LexError { ch: other, line }),
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("x = 42;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("== != <= >= < > && || ! .."),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::DotDot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let tokens = lex("a // comment\nb").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[1].tok, Tok::Ident("b".into()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let tokens = lex("a\n\nb\nc").unwrap();
        let lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 3, 4, 4]);
    }

    #[test]
    fn bad_character_errors() {
        let e = lex("a @ b").unwrap_err();
        assert_eq!(e.ch, '@');
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("'@'"));
    }

    #[test]
    fn lone_dot_and_amp_error() {
        assert!(lex("a.b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }
}
