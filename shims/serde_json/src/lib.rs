//! Offline shim for the `serde_json` API subset used in this repository:
//! `to_string`, `to_string_pretty`, `to_value`, `from_str`, plus the
//! [`Value`]/[`Map`] types. Text format is standard JSON; parsing accepts
//! any valid JSON document (escapes, exponents, nesting).

use serde::{Deserialize, Serialize};

pub use serde::Error;
pub use serde::Value;

/// Ordered string-keyed map (`serde_json::Map` stand-in).
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// Serialize into compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), None, 0, &mut out);
    Ok(out)
}

/// Serialize into human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), Some(2), 0, &mut out);
    Ok(out)
}

/// Serialize into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::deserialize(&value)
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

fn write_value(value: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(n) => {
            if n.is_finite() {
                // Guarantee a numeric token that re-parses as a float-capable
                // value; Rust's shortest repr is already valid JSON.
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            write_newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(indent, level + 1, out);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out);
            }
            write_newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn write_newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn error(&self, message: &str) -> Error {
        Error::message(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{keyword}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-consume the run of plain bytes up to the next
                    // quote or backslash. Both delimiters are ASCII, so
                    // the run never splits a UTF-8 scalar; one validation
                    // per run keeps the whole parse linear instead of
                    // re-validating the remaining input per character.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn big_u64_survives() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, Value::UInt(u64::MAX));
        assert_eq!(to_string(&v).unwrap(), "18446744073709551615");
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<Value>("[1, 2").unwrap_err();
        assert!(err.to_string().contains("at byte"));
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn map_collects_and_serializes() {
        let map: Map<String, Value> = [("k".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(to_string(&map).unwrap(), r#"{"k":1}"#);
    }
}
