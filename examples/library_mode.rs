//! Library mode: checking a program written directly against the simulator
//! APIs — no DSL involved. This is the paper's future-work direction
//! ("extending HOME to handle not only MPI and OpenMP but also the other
//! ... programming models"): the dynamic phase and the rule matcher are
//! front-end agnostic; anything that emits the event model can be checked.
//!
//! ```text
//! cargo run --example library_mode
//! ```

use home::core::match_violations;
use home::dynamic::{detect, DetectorConfig};
use home::mpi::{payload, MpiConfig, SrcSpec, TagSpec, World};
use home::omp::{OmpCosts, OmpProc};
use home::prelude::*;
use home::trace::{Collector, Rank, COMM_WORLD};

fn main() {
    let rt = Runtime::new(SchedConfig::deterministic(21));
    let world = World::new(rt.clone(), 2, MpiConfig::test());
    let (collector, sink) = Collector::in_memory();

    // Rank 0: plain sender (two same-tag messages).
    {
        let p = world.process(0);
        rt.spawn("rank0", move || {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            for _ in 0..2 {
                p.send(1, 42, COMM_WORLD, payload(vec![1.0])).unwrap();
            }
            p.finalize().unwrap();
        });
    }

    // Rank 1: two OpenMP threads both receive with tag 42 — the violation —
    // written directly in Rust with explicit wrapper emission (what the
    // interpreter does automatically for DSL programs).
    {
        let p = world.process(1);
        let omp = OmpProc::with_costs(rt.clone(), Rank(1), collector.clone(), OmpCosts::zero());
        rt.spawn("rank1", move || {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            let p2 = p.clone();
            omp.parallel(2, move |ctx| {
                // HMPI_Recv: write the monitored variables, then call.
                let record = home::trace::MpiCallRecord {
                    kind: home::trace::MpiCallKind::Recv,
                    peer: Some(0),
                    tag: Some(42),
                    comm: COMM_WORLD,
                    request: None,
                    is_main_thread: p2.is_thread_main(),
                    thread_level: p2.thread_level(),
                };
                for var in [MonitoredVar::Src, MonitoredVar::Tag, MonitoredVar::Comm] {
                    ctx.emit(home::trace::EventKind::MonitoredWrite {
                        var,
                        call: record.clone(),
                    });
                }
                p2.recv(SrcSpec::Rank(0), TagSpec::Tag(42), COMM_WORLD)
                    .map_err(|e| match e {
                        home::mpi::MpiError::Sched(s) => s,
                        other => panic!("{other}"),
                    })?;
                Ok(())
            })
            .unwrap();
            p.finalize().unwrap();
        });
    }

    rt.run().unwrap();

    // The same dynamic phase + rule matcher the DSL pipeline uses.
    let trace = sink.drain();
    let races = detect(&trace, &DetectorConfig::hybrid())
        .expect("trace straight from the collector is well-formed");
    let violations = match_violations(&trace, &races, &[]);

    println!("{} events, {} monitored races", trace.len(), races.len());
    for v in &violations {
        println!("VIOLATION: {v}");
    }
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::ConcurrentRecv),
        "library-mode detection must find the same-tag receives"
    );
    println!("library-mode check complete: the analyses are front-end agnostic.");
}
