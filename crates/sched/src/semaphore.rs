//! A counting semaphore built on the scheduler's block/unblock primitives.
//!
//! Unlike an OS semaphore, blocking here participates in deterministic
//! scheduling and whole-system deadlock detection. The MPI and OpenMP
//! simulators build their barriers and rendezvous on top of this.

use crate::runtime::{current_vtid, Runtime};
use crate::state::BlockReason;
use crate::vtid::Vtid;
use crate::SchedResult;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct SemState {
    permits: u64,
    waiters: VecDeque<Vtid>,
}

/// A counting semaphore over virtual threads.
#[derive(Clone)]
pub struct SimSemaphore {
    rt: Runtime,
    name: String,
    state: Arc<Mutex<SemState>>,
}

impl SimSemaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(rt: Runtime, name: impl Into<String>, permits: u64) -> Self {
        SimSemaphore {
            rt,
            name: name.into(),
            state: Arc::new(Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Acquire one permit, blocking through the scheduler if none are
    /// available. Must be called from a virtual thread.
    pub fn acquire(&self) -> SchedResult<()> {
        let me = current_vtid().expect("SimSemaphore::acquire outside a virtual thread");
        loop {
            {
                let mut st = self.state.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    return Ok(());
                }
                if !st.waiters.contains(&me) {
                    st.waiters.push_back(me);
                }
            }
            self.rt
                .block_current(BlockReason::Semaphore(self.name.clone()))?;
        }
    }

    /// Try to acquire a permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Release one permit, waking one waiter if any.
    pub fn release(&self) {
        let waiter = {
            let mut st = self.state.lock();
            st.permits += 1;
            st.waiters.pop_front()
        };
        if let Some(w) = waiter {
            self.rt.unblock(w);
        }
    }

    /// Current number of available permits.
    pub fn permits(&self) -> u64 {
        self.state.lock().permits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SchedConfig, SchedError};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn acquire_release_counts() {
        let rt = Runtime::new(SchedConfig::deterministic(0));
        let sem = SimSemaphore::new(rt.clone(), "s", 2);
        let sem2 = sem.clone();
        rt.spawn("user", move || {
            sem2.acquire().unwrap();
            sem2.acquire().unwrap();
            assert_eq!(sem2.permits(), 0);
            assert!(!sem2.try_acquire());
            sem2.release();
            assert!(sem2.try_acquire());
            sem2.release();
            sem2.release();
        });
        rt.run().unwrap();
        assert_eq!(sem.permits(), 2);
    }

    #[test]
    fn blocked_acquire_is_woken_by_release() {
        let rt = Runtime::new(SchedConfig::deterministic(1));
        let sem = SimSemaphore::new(rt.clone(), "s", 0);
        let order = Arc::new(AtomicUsize::new(0));

        let s1 = sem.clone();
        let o1 = Arc::clone(&order);
        rt.spawn("taker", move || {
            s1.acquire().unwrap();
            o1.fetch_add(1, Ordering::SeqCst);
        });

        let s2 = sem.clone();
        let rt2 = rt.clone();
        rt.spawn("giver", move || {
            for _ in 0..3 {
                rt2.yield_now().unwrap();
            }
            s2.release();
        });
        rt.run().unwrap();
        assert_eq!(order.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn starvation_is_a_deadlock() {
        let rt = Runtime::new(SchedConfig::deterministic(2));
        let sem = SimSemaphore::new(rt.clone(), "never", 0);
        rt.spawn("starved", move || {
            let e = sem.acquire().unwrap_err();
            assert!(matches!(e, SchedError::Deadlock(_)));
        });
        let err = rt.run().unwrap_err();
        match err {
            SchedError::Deadlock(info) => assert!(info.involves("never")),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn fifo_handoff_under_contention() {
        let rt = Runtime::new(SchedConfig::deterministic(3));
        let sem = SimSemaphore::new(rt.clone(), "s", 1);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..4 {
            let s = sem.clone();
            let d = Arc::clone(&done);
            let rt2 = rt.clone();
            rt.spawn(format!("c{i}"), move || {
                s.acquire().unwrap();
                rt2.yield_now().unwrap();
                d.fetch_add(1, Ordering::SeqCst);
                s.release();
            });
        }
        rt.run().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
