//! DPOR-lite schedule fingerprints.
//!
//! Detection in this pipeline is *per rank*: the dynamic phase shards the
//! trace by rank and the rule engine classifies per-rank evidence. Two
//! schedules whose per-rank event projections are identical therefore get
//! identical verdicts — the cross-rank interleaving of independent events
//! commutes. The fingerprint hashes exactly that: for each rank, the
//! sequence of happens-before-relevant event fields (thread, region,
//! source location, event payload), **excluding** the global sequence
//! number and virtual timestamps, which differ between equivalent
//! interleavings. Per-rank digests are folded together in rank order,
//! along with the run's incidents and deadlock shape (they feed the rules
//! too).
//!
//! This is a sound *dedup* key, not a full DPOR persistent-set scheme:
//! equal fingerprints ⇒ equal verdicts, so the explorer counts the
//! schedule as covered and skips re-detection.

use home_interp::RunResult;
use home_trace::FxHasher;
use std::collections::BTreeMap;
use std::hash::Hasher;

/// Fingerprint of one executed schedule (see module docs).
pub fn schedule_fingerprint(result: &RunResult) -> u64 {
    let mut per_rank: BTreeMap<u32, FxHasher> = BTreeMap::new();
    for e in result.trace.events() {
        let h = per_rank.entry(e.rank.0).or_default();
        h.write_u32(e.tid.0);
        match e.region {
            Some(r) => {
                h.write_u8(1);
                h.write_u64(r.0);
            }
            None => h.write_u8(0),
        }
        match &e.loc {
            Some(l) => {
                h.write_u8(1);
                h.write(l.file.as_bytes());
                h.write_u32(l.line);
            }
            None => h.write_u8(0),
        }
        // The payload (access kind + location, MPI call metadata, barrier
        // epochs…) is what the detector and rules consume; its Debug form
        // is stable and total over every variant.
        h.write(format!("{:?}", e.kind).as_bytes());
    }
    let mut combined = FxHasher::default();
    for (rank, h) in per_rank {
        combined.write_u32(rank);
        combined.write_u64(h.finish());
    }
    for i in &result.mpi_errors {
        combined.write_u32(i.rank);
        combined.write_u32(i.line);
        combined.write(i.call.as_bytes());
        combined.write(i.error.as_bytes());
    }
    match &result.deadlock {
        Some(d) => {
            combined.write_u8(1);
            // Step counts differ between equivalent interleavings; the
            // *shape* (who was stuck on what) is what the report shows.
            let mut blocked: Vec<String> = d
                .blocked
                .iter()
                .map(|b| format!("{}:{}", b.name, b.reason))
                .collect();
            blocked.sort_unstable();
            for b in blocked {
                combined.write(b.as_bytes());
            }
        }
        None => combined.write_u8(0),
    }
    combined.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_interp::{run, RunConfig};
    use home_sched::SchedPolicy;

    const PROGRAM: &str = r#"
        program fp {
            mpi_init_thread(multiple);
            omp parallel num_threads(2) {
                if (rank == 0) { mpi_send(to: 1, tag: tid, count: 1); }
                if (rank == 1) { mpi_recv(from: 0, tag: tid); }
            }
            mpi_finalize();
        }
    "#;

    #[test]
    fn fingerprint_is_stable_across_replays() {
        let program = home_ir::parse(PROGRAM).unwrap();
        for seed in [1u64, 2, 3] {
            let fp = |_| {
                let cfg = RunConfig::test(2, seed);
                schedule_fingerprint(&run(&program, &cfg))
            };
            assert_eq!(fp(()), fp(()), "seed {seed}");
        }
    }

    #[test]
    fn fingerprint_ignores_policy_if_projections_match() {
        // A single-threaded-per-rank program has only one per-rank
        // projection, so every schedule policy must fingerprint equal.
        let program = home_ir::parse(
            r#"
            program serial {
                mpi_init_thread(multiple);
                if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
                if (rank == 1) { mpi_recv(from: 0, tag: 0); }
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let fp_for = |policy: SchedPolicy, seed: u64| {
            let mut cfg = RunConfig::test(2, seed);
            cfg.sched.policy = policy;
            schedule_fingerprint(&run(&program, &cfg))
        };
        let base = fp_for(SchedPolicy::Random, 1);
        assert_eq!(base, fp_for(SchedPolicy::Random, 99));
        assert_eq!(base, fp_for(SchedPolicy::Priority { depth: 3 }, 5));
    }
}
