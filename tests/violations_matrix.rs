//! The six-violation matrix: for every violation class, a program that
//! commits it (detected) and the corresponding corrected program (clean).
//! This is the integration-level ground truth behind the accuracy table.

use home::prelude::*;

fn flags(src: &str, kind: ViolationKind) -> (bool, String) {
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    (report.has(kind), report.render())
}

fn assert_detected(src: &str, kind: ViolationKind) {
    let (found, render) = flags(src, kind);
    assert!(found, "expected {kind} in:\n{render}");
}

fn assert_clean_of(src: &str, kind: ViolationKind) {
    let (found, render) = flags(src, kind);
    assert!(!found, "unexpected {kind} in:\n{render}");
}

#[test]
fn initialization_violation_and_fix() {
    assert_detected(
        r#"program v {
            mpi_init_thread(serialized);
            omp parallel num_threads(2) {
                mpi_send(to: rank, tag: tid, count: 1);
                mpi_recv(from: rank, tag: tid);
            }
            mpi_finalize();
        }"#,
        ViolationKind::Initialization,
    );
    assert_clean_of(
        r#"program ok {
            mpi_init_thread(multiple);
            omp parallel num_threads(2) {
                mpi_send(to: rank, tag: tid, count: 1);
                mpi_recv(from: rank, tag: tid);
            }
            mpi_finalize();
        }"#,
        ViolationKind::Initialization,
    );
}

#[test]
fn serialized_level_with_master_only_calls_is_legal() {
    // SERIALIZED allows MPI from threads as long as calls never overlap;
    // master-only calls satisfy that.
    assert_clean_of(
        r#"program ok {
            mpi_init_thread(serialized);
            omp parallel num_threads(2) {
                omp master { mpi_barrier(); }
            }
            mpi_finalize();
        }"#,
        ViolationKind::Initialization,
    );
}

#[test]
fn finalization_violation_and_fix() {
    assert_detected(
        r#"program v {
            mpi_init_thread(multiple);
            omp parallel num_threads(2) {
                if (tid == 1) { mpi_finalize(); }
            }
        }"#,
        ViolationKind::Finalization,
    );
    assert_clean_of(
        r#"program ok {
            mpi_init_thread(multiple);
            omp parallel num_threads(2) { compute(10); }
            mpi_finalize();
        }"#,
        ViolationKind::Finalization,
    );
}

#[test]
fn concurrent_recv_violation_and_fix() {
    assert_detected(
        r#"program v {
            mpi_init_thread(multiple);
            if (rank == 0) {
                mpi_send(to: 1, tag: 4, count: 1);
                mpi_send(to: 1, tag: 4, count: 1);
            }
            if (rank == 1) {
                omp parallel num_threads(2) { mpi_recv(from: 0, tag: 4); }
            }
            mpi_finalize();
        }"#,
        ViolationKind::ConcurrentRecv,
    );
    assert_clean_of(
        r#"program ok {
            mpi_init_thread(multiple);
            if (rank == 0) {
                mpi_send(to: 1, tag: 100, count: 1);
                mpi_send(to: 1, tag: 101, count: 1);
            }
            if (rank == 1) {
                omp parallel num_threads(2) { mpi_recv(from: 0, tag: 100 + tid); }
            }
            mpi_finalize();
        }"#,
        ViolationKind::ConcurrentRecv,
    );
}

#[test]
fn wildcard_recv_collides_with_everything() {
    assert_detected(
        r#"program v {
            mpi_init_thread(multiple);
            if (rank == 0) {
                mpi_send(to: 1, tag: 100, count: 1);
                mpi_send(to: 1, tag: 101, count: 1);
            }
            if (rank == 1) {
                omp parallel num_threads(2) { mpi_recv(from: any, tag: any); }
            }
            mpi_finalize();
        }"#,
        ViolationKind::ConcurrentRecv,
    );
}

#[test]
fn concurrent_request_violation_and_fix() {
    assert_detected(
        r#"program v {
            mpi_init_thread(multiple);
            if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
            if (rank == 1) {
                mpi_irecv(from: 0, tag: 0, req: r);
                omp parallel num_threads(2) { mpi_wait(req: r); }
            }
            mpi_finalize();
        }"#,
        ViolationKind::ConcurrentRequest,
    );
    assert_clean_of(
        r#"program ok {
            mpi_init_thread(multiple);
            if (rank == 0) { mpi_send(to: 1, tag: 0, count: 1); }
            if (rank == 1) {
                mpi_irecv(from: 0, tag: 0, req: r);
                mpi_wait(req: r);
            }
            mpi_finalize();
        }"#,
        ViolationKind::ConcurrentRequest,
    );
}

#[test]
fn probe_violation_and_fix() {
    assert_detected(
        r#"program v {
            mpi_init_thread(multiple);
            if (rank == 0) {
                mpi_send(to: 1, tag: 9, count: 1);
                mpi_send(to: 1, tag: 9, count: 1);
            }
            if (rank == 1) {
                omp parallel num_threads(2) {
                    mpi_probe(from: 0, tag: 9);
                    mpi_recv(from: 0, tag: 9);
                }
            }
            mpi_finalize();
        }"#,
        ViolationKind::Probe,
    );
    assert_clean_of(
        r#"program ok {
            mpi_init_thread(multiple);
            if (rank == 0) { mpi_send(to: 1, tag: 9, count: 1); }
            if (rank == 1) {
                omp parallel num_threads(2) {
                    omp master {
                        mpi_probe(from: 0, tag: 9);
                        mpi_recv(from: 0, tag: 9);
                    }
                }
            }
            mpi_finalize();
        }"#,
        ViolationKind::Probe,
    );
}

#[test]
fn collective_violation_and_fix() {
    assert_detected(
        r#"program v {
            mpi_init_thread(multiple);
            omp parallel num_threads(2) { mpi_barrier(); }
            mpi_finalize();
        }"#,
        ViolationKind::CollectiveCall,
    );
    assert_clean_of(
        r#"program ok {
            mpi_init_thread(multiple);
            omp parallel num_threads(2) { omp master { mpi_barrier(); } }
            mpi_finalize();
        }"#,
        ViolationKind::CollectiveCall,
    );
}

#[test]
fn all_six_kinds_in_one_program() {
    // One program committing everything at once; HOME must report all six.
    let src = r#"program omnibus {
        mpi_init_thread(funneled);
        omp parallel num_threads(2) {
            mpi_send(to: rank, tag: 900 + tid, count: 1);
            mpi_recv(from: rank, tag: 900 + tid);
        }
        if (rank == 0) {
            mpi_send(to: 1, tag: 4, count: 1);
            mpi_send(to: 1, tag: 4, count: 1);
            mpi_send(to: 1, tag: 9, count: 1);
            mpi_send(to: 1, tag: 9, count: 1);
            mpi_send(to: 1, tag: 5, count: 1);
        }
        if (rank == 1) {
            omp parallel num_threads(2) { mpi_recv(from: 0, tag: 4); }
            omp parallel num_threads(2) {
                mpi_probe(from: 0, tag: 9);
                mpi_recv(from: 0, tag: 9);
            }
            mpi_irecv(from: 0, tag: 5, req: r);
            omp parallel num_threads(2) { mpi_wait(req: r); }
        }
        omp parallel num_threads(2) { mpi_barrier(); }
        omp parallel num_threads(2) {
            if (tid == 1) { mpi_finalize(); }
        }
    }"#;
    let report = check(&parse(src).unwrap(), &CheckOptions::default());
    for kind in ViolationKind::ALL {
        assert!(report.has(kind), "missing {kind}:\n{}", report.render());
    }
}
