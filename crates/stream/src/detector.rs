//! The online streaming race detector.
//!
//! [`StreamDetector`] consumes events one at a time (it implements both
//! [`EventSink`] and [`home_trace::TraceSink`], so a simulation can feed it
//! live through `interp::run_with_sink`) and runs the same incremental
//! lockset + vector-clock analysis as `home_dynamic::detect`, producing the
//! **same races in the same order** — the batch engine is the executable
//! specification, and `tests/stream_parity.rs` enforces report-level byte
//! identity on every bundled program, seed, and jobs value.
//!
//! Differences from the batch engine are purely operational:
//!
//! - **No pre-scan, no materialized trace.** The batch engine scans the
//!   whole trace up front to learn each region's thread set and each
//!   barrier epoch's participants. Streaming cannot look ahead, so it
//!   derives both incrementally: region membership is accumulated in
//!   first-seen order (exactly the order the batch pre-scan would record),
//!   and barrier participants are *synthesized* from the region's `Fork`
//!   event as threads `0..nthreads`. The runtime's barrier releases only
//!   when the full team arrives, so the synthesized set equals the
//!   pre-scanned set on every recorded trace; joining is commutative and a
//!   never-seen participant contributes a fresh singleton clock exactly as
//!   the batch engine's lazy `vc_mut` does, so verdicts are unchanged.
//! - **Epoch-based retirement (pruning).** When a region joins, every
//!   vector clock, lockset, and access-history record of its segments is
//!   dead weight: the join folds the segments' final clocks into the
//!   master spine, so every later access happens-after every retired
//!   record and can never be HB-concurrent with one. The streaming engine
//!   drops them, bounding live state by the *widest* region instead of the
//!   whole trace. Retirement is disabled in `LocksetOnly` mode, which has
//!   no happens-before edges to make it sound.
//! - **Per-rank sharding.** Ranks share nothing (the analysis is
//!   per-process); state lives in `RANK_SHARDS` mutex-guarded shards keyed
//!   by rank, so concurrent producers contend only within a rank.
//!
//! Slot *numbers* assigned to segments can differ from the batch engine
//! (synthesized barrier teams are created in thread order, the pre-scanned
//! ones in first-arrival order), but a consistent renaming of clock slots
//! preserves every ≤/concurrency verdict, and no output depends on slot
//! numbers.

use crate::{EventSink, RaceSink};
use home_dynamic::{DetectorConfig, DetectorMode, Race, RaceAccess};
use home_trace::{
    AccessKind, BarrierId, Event, EventKind, FxHashMap, FxHashSet, HomeError, LockId, LocksetId,
    LocksetTable, MemLoc, Rank, RegionId, Tid, Trace, TraceSink, VectorClock,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Number of rank shards (ranks map to shards by `rank % RANK_SHARDS`).
const RANK_SHARDS: usize = 16;

/// A logical thread segment, as in the batch detector.
type SegKey = (Option<RegionId>, Tid);

/// Statistics from one streaming detection run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Events consumed.
    pub events: u64,
    /// Sum over ranks of the peak number of simultaneously live segments
    /// (segments whose vector clocks were resident). With pruning this
    /// stays proportional to the widest region, not the trace length.
    pub peak_live_segments: usize,
    /// Total distinct segments ever observed across ranks.
    pub total_segments: usize,
    /// Segments retired (clocks dropped) by region-join pruning.
    pub retired_segments: usize,
    /// Of those, segments retired while at least one *other* region was
    /// still live — the per-segment reachability check proved their records
    /// unreachable without waiting for the overlap to end.
    pub retired_while_overlapping: usize,
    /// True if some location's access history hit the configured cap.
    pub history_overflow: bool,
    /// Consumption throughput, measured from the first event to
    /// [`StreamDetector::finish`].
    pub events_per_sec: f64,
}

/// One remembered access, stored FastTrack-style exactly as in the batch
/// detector: the segment's `(slot, clock)` epoch plus an interned lockset
/// id (see the batch `AccessRecord` for why the epoch check is exact).
struct AccessRecord {
    seg: SegKey,
    slot: usize,
    clock: u64,
    lockset: LocksetId,
    kind: AccessKind,
    access: RaceAccess,
}

/// Per-location access history. `pushed` counts records ever pushed and is
/// never decremented by pruning, so cap/overflow decisions are identical to
/// the batch engine's `history.len() < cap` check.
#[derive(Default)]
struct LocHistory {
    records: Vec<AccessRecord>,
    pushed: usize,
}

/// All per-segment analysis state, held in one map entry so the hot path
/// pays one hash lookup per event instead of one per parallel map (the
/// batch detector's `SegState` mirror).
struct SegState {
    /// The segment's clock slot (unique per segment, never reused — even
    /// across retirement, so remembered epochs can never alias another
    /// segment's component).
    slot: usize,
    vc: VectorClock,
    lockset: LocksetId,
}

/// A joined segment awaiting retirement. Only the final `(slot, clock)`
/// epoch is kept (the vector clock is already dropped): a later sweep
/// retires the segment's history records once every possible future access
/// provably happens-after this epoch.
struct PendingSeg {
    seg: SegKey,
    slot: usize,
    clock: u64,
}

/// All mutable analysis state of one rank.
struct RankStream {
    segs: FxHashMap<SegKey, SegState>,
    /// Next clock slot to assign (monotone, never reused).
    next_slot: usize,
    lockset_table: LocksetTable,
    release_vc: FxHashMap<LockId, VectorClock>,
    fork_vc: FxHashMap<RegionId, VectorClock>,
    barrier_join: FxHashMap<(RegionId, BarrierId, u64), VectorClock>,
    /// Team width announced by each region's `Fork` event; source of the
    /// synthesized barrier participant set.
    region_nthreads: FxHashMap<RegionId, u32>,
    /// Segments seen per region so far, in first-seen order — the same
    /// order the batch pre-scan records.
    region_threads: FxHashMap<RegionId, Vec<SegKey>>,
    history: FxHashMap<MemLoc, LocHistory>,
    history_overflow: bool,
    reported: FxHashSet<(MemLoc, SegKey, SegKey, u32, u32)>,
    races: Vec<Race>,
    last_seq: Option<u64>,
    peak_live: usize,
    retired: usize,
    /// Joined segments whose history records are not yet provably
    /// unreachable (another region was live at join time).
    pending: Vec<PendingSeg>,
    retired_overlapping: usize,
}

impl RankStream {
    fn new() -> Self {
        RankStream {
            segs: FxHashMap::default(),
            next_slot: 0,
            lockset_table: LocksetTable::new(),
            release_vc: FxHashMap::default(),
            fork_vc: FxHashMap::default(),
            barrier_join: FxHashMap::default(),
            region_nthreads: FxHashMap::default(),
            region_threads: FxHashMap::default(),
            history: FxHashMap::default(),
            history_overflow: false,
            reported: FxHashSet::default(),
            races: Vec::new(),
            last_seq: None,
            peak_live: 0,
            retired: 0,
            pending: Vec::new(),
            retired_overlapping: 0,
        }
    }

    /// The segment's state, lazily initialized on first sight (inheriting
    /// the fork clock and counting one local step) — the batch engine's
    /// `seg_mut`.
    fn seg_mut(&mut self, seg: SegKey) -> &mut SegState {
        let RankStream {
            segs,
            next_slot,
            fork_vc,
            ..
        } = self;
        segs.entry(seg).or_insert_with(|| {
            let slot = *next_slot;
            *next_slot += 1;
            let mut vc = match seg.0.and_then(|region| fork_vc.get(&region)) {
                Some(fork_vc) => fork_vc.clone(),
                None => VectorClock::new(),
            };
            vc.tick(slot);
            SegState {
                slot,
                vc,
                lockset: LocksetTable::EMPTY,
            }
        })
    }

    /// Advance the segment's clock one local step, returning
    /// `(slot, new own component)`.
    fn advance(&mut self, seg: SegKey) -> (usize, u64) {
        let state = self.seg_mut(seg);
        let value = state.vc.tick(state.slot);
        (state.slot, value)
    }

    /// Consume one event of this rank. Mirrors `detect_rank` arm for arm.
    fn on_event(
        &mut self,
        rank: Rank,
        e: &Event,
        config: &DetectorConfig,
        sink: Option<&dyn RaceSink>,
    ) -> Result<(), HomeError> {
        if let Some(prev) = self.last_seq {
            if e.seq < prev {
                return Err(HomeError::corrupt_trace(format!(
                    "out-of-order event stream on {rank}: seq {} after seq {prev}",
                    e.seq
                )));
            }
        }
        self.last_seq = Some(e.seq);

        let seg: SegKey = (e.region, e.tid);
        if let Some(region) = e.region {
            let v = self.region_threads.entry(region).or_default();
            if !v.contains(&seg) {
                v.push(seg);
            }
        }

        match &e.kind {
            EventKind::Fork { region, nthreads } => {
                self.region_nthreads.insert(*region, *nthreads);
                let vc = self.seg_mut(seg).vc.clone();
                self.fork_vc.insert(*region, vc);
                self.advance(seg);
            }
            EventKind::JoinRegion { region } => {
                if !self.fork_vc.contains_key(region) && !self.region_threads.contains_key(region) {
                    return Err(HomeError::corrupt_trace(format!(
                        "join event at seq {} on {rank} references unknown segment {region} \
                         (no fork recorded and no thread events)",
                        e.seq
                    )));
                }
                // Detach the spine state so the sibling clocks can be
                // borrowed in place instead of cloned.
                self.seg_mut(seg);
                if let Some(mut state) = self.segs.remove(&seg) {
                    for s in self.region_threads.get(region).into_iter().flatten() {
                        if let Some(j) = self.segs.get(s) {
                            state.vc.join(&j.vc);
                        }
                    }
                    self.segs.insert(seg, state);
                }
                self.advance(seg);
                // The join folded the region's final clocks into the spine,
                // so its segments are candidates for retirement. With no
                // other region live they retire in this very sweep; under
                // overlapping/nested regions they wait in `pending` until
                // the per-segment reachability check proves every possible
                // future access happens-after their final epoch.
                if config.mode != DetectorMode::LocksetOnly {
                    self.begin_retire(*region);
                    self.sweep_retired();
                }
            }
            EventKind::Barrier { barrier, epoch } => {
                if let Some(region) = e.region {
                    let key = (region, *barrier, *epoch);
                    if !self.barrier_join.contains_key(&key) {
                        // First arrival processed: the runtime emits
                        // barrier events only after the whole team
                        // arrived, so every participant's pre-barrier
                        // events are already folded into its clock and
                        // the epoch join is computable now, from borrowed
                        // participant clocks. The team is synthesized from
                        // the fork's width; a trace missing the fork
                        // (hand-built) falls back to the threads seen so
                        // far.
                        let participants: Vec<SegKey> = match self.region_nthreads.get(&region) {
                            Some(&n) => (0..n).map(|t| (Some(region), Tid(t))).collect(),
                            None => self
                                .region_threads
                                .get(&region)
                                .cloned()
                                .unwrap_or_default(),
                        };
                        let mut join = VectorClock::new();
                        for p in participants {
                            join.join(&self.seg_mut(p).vc);
                        }
                        self.barrier_join.insert(key, join);
                    }
                    self.seg_mut(seg);
                    let RankStream {
                        segs, barrier_join, ..
                    } = self;
                    if let (Some(join), Some(state)) = (barrier_join.get(&key), segs.get_mut(&seg))
                    {
                        state.vc.join(join);
                    }
                    self.advance(seg);
                    // Barriers fold whole-team clocks, the strongest
                    // ordering edge inside a region — the natural moment a
                    // pending segment from an overlapped region becomes
                    // provably unreachable.
                    self.sweep_retired();
                }
            }
            EventKind::Acquire { lock } => {
                if !config.ignore_locks {
                    self.seg_mut(seg);
                    let RankStream {
                        segs,
                        release_vc,
                        lockset_table,
                        ..
                    } = self;
                    if let Some(state) = segs.get_mut(&seg) {
                        if let Some(rvc) = release_vc.get(lock) {
                            state.vc.join(rvc);
                        }
                        state.lockset = lockset_table.with_insert(state.lockset, *lock);
                        state.vc.tick(state.slot);
                    }
                }
            }
            EventKind::Release { lock } => {
                if !config.ignore_locks {
                    self.seg_mut(seg);
                    let RankStream {
                        segs,
                        release_vc,
                        lockset_table,
                        ..
                    } = self;
                    if let Some(state) = segs.get_mut(&seg) {
                        state.lockset = lockset_table.with_remove(state.lockset, *lock);
                        release_vc.insert(*lock, state.vc.clone());
                        state.vc.tick(state.slot);
                    }
                }
            }
            kind => {
                if let Some((loc, akind)) = kind.access() {
                    let state = self.seg_mut(seg);
                    let clock = state.vc.tick(state.slot);
                    let record = AccessRecord {
                        seg,
                        slot: state.slot,
                        clock,
                        lockset: state.lockset,
                        kind: akind,
                        access: race_access(e, akind),
                    };
                    self.check_and_insert(rank, loc, record, config, sink);
                } else {
                    self.advance(seg);
                }
            }
        }
        self.peak_live = self.peak_live.max(self.segs.len());
        Ok(())
    }

    /// Begin retiring a joined region: drop its bookkeeping (fork clock,
    /// barrier joins, team roster) and move its segments' final epochs to
    /// the pending list. The vector clocks and locksets are freed here —
    /// only the scalar `(slot, clock)` epoch survives, which is all
    /// [`RankStream::sweep_retired`] needs to decide reachability, and all
    /// the race check needs to test remembered records (slots are never
    /// reused, so the epochs stay exact).
    fn begin_retire(&mut self, region: RegionId) {
        let mut keys: Vec<SegKey> = self.region_threads.remove(&region).unwrap_or_default();
        if let Some(n) = self.region_nthreads.remove(&region) {
            for t in 0..n {
                let seg = (Some(region), Tid(t));
                if !keys.contains(&seg) {
                    keys.push(seg);
                }
            }
        }
        self.fork_vc.remove(&region);
        self.barrier_join.retain(|(r, _, _), _| *r != region);
        for seg in keys {
            if let Some(state) = self.segs.remove(&seg) {
                self.pending.push(PendingSeg {
                    seg,
                    slot: state.slot,
                    clock: state.vc.get(state.slot),
                });
            }
        }
    }

    /// Per-segment reachability sweep: a pending segment retires once every
    /// possible future access happens-after its final epoch `(slot, clock)`
    /// — at which point no future access can be HB-concurrent with any of
    /// its remembered records, and they can be dropped.
    ///
    /// "Every possible future access" decomposes into (a) accesses by
    /// currently live segments, covered iff each live clock dominates the
    /// epoch (new regions they fork later inherit a dominating clock
    /// transitively), and (b) first accesses of live regions' *not yet
    /// materialized* team members, whose initial clock is the region's fork
    /// clock — covered iff that fork clock dominates the epoch, or the team
    /// is already fully materialized (fork width known and every member
    /// seen), leaving no such future member.
    ///
    /// With no region live this fires immediately for every pending segment
    /// (the join fold makes the spine dominate), reproducing the old
    /// serial-region behaviour; under overlap it is the reachability check
    /// that replaces the old "never retire" pessimism.
    fn sweep_retired(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut live_regions: FxHashSet<RegionId> = self.fork_vc.keys().copied().collect();
        live_regions.extend(self.region_nthreads.keys().copied());
        live_regions.extend(self.region_threads.keys().copied());
        let overlapping = !live_regions.is_empty();
        let materialized: FxHashSet<RegionId> = live_regions
            .iter()
            .copied()
            .filter(
                |r| match (self.region_nthreads.get(r), self.region_threads.get(r)) {
                    (Some(&n), Some(seen)) => (0..n).all(|t| seen.contains(&(Some(*r), Tid(t)))),
                    _ => false,
                },
            )
            .collect();

        let mut retired_now: Vec<SegKey> = Vec::new();
        let mut still_pending: Vec<PendingSeg> = Vec::new();
        for p in std::mem::take(&mut self.pending) {
            let live_segs_dominate = self.segs.values().all(|t| t.vc.get(p.slot) >= p.clock);
            let future_members_dominate = live_regions.iter().all(|r| {
                materialized.contains(r)
                    || self
                        .fork_vc
                        .get(r)
                        .is_some_and(|f| f.get(p.slot) >= p.clock)
            });
            if live_segs_dominate && future_members_dominate {
                retired_now.push(p.seg);
            } else {
                still_pending.push(p);
            }
        }
        self.pending = still_pending;
        if retired_now.is_empty() {
            return;
        }
        self.retired += retired_now.len();
        if overlapping {
            self.retired_overlapping += retired_now.len();
        }
        let retired_set: FxHashSet<SegKey> = retired_now.into_iter().collect();
        for h in self.history.values_mut() {
            h.records.retain(|r| !retired_set.contains(&r.seg));
        }
    }

    fn check_and_insert(
        &mut self,
        rank: Rank,
        loc: MemLoc,
        record: AccessRecord,
        config: &DetectorConfig,
        sink: Option<&dyn RaceSink>,
    ) {
        let same_physical = |a: SegKey, b: SegKey| a.1 == b.1 && (a.1 == Tid(0) || a.0 == b.0);
        let RankStream {
            history,
            lockset_table,
            history_overflow,
            reported,
            races,
            segs,
            ..
        } = self;
        let Some(cur_vc) = segs.get(&record.seg).map(|s| &s.vc) else {
            return; // unreachable: the access arm just advanced this clock
        };
        let entry = history.entry(loc).or_default();
        for prev in entry.records.iter() {
            if prev.seg == record.seg || same_physical(prev.seg, record.seg) {
                continue;
            }
            if prev.kind == AccessKind::Read && record.kind == AccessKind::Read {
                continue;
            }
            // The FastTrack epoch check, exactly as in the batch engine.
            let hb_concurrent = || prev.clock > cur_vc.get(prev.slot);
            let is_race = match config.mode {
                DetectorMode::Hybrid => {
                    hb_concurrent() && lockset_table.disjoint(prev.lockset, record.lockset)
                }
                DetectorMode::LocksetOnly => lockset_table.disjoint(prev.lockset, record.lockset),
                DetectorMode::HappensBeforeOnly => hb_concurrent(),
            };
            if is_race {
                let line = |a: &RaceAccess| a.loc.as_ref().map(|l| l.line).unwrap_or(0);
                let (la, lb) = (line(&prev.access), line(&record.access));
                let key = (
                    loc,
                    prev.seg.min(record.seg),
                    prev.seg.max(record.seg),
                    la.min(lb),
                    la.max(lb),
                );
                if config.dedupe_pairs && !reported.insert(key) {
                    continue;
                }
                let race = Race {
                    rank,
                    loc,
                    first: prev.access.clone(),
                    second: record.access.clone(),
                };
                if let Some(sink) = sink {
                    sink.on_race(&race);
                }
                races.push(race);
            }
        }
        if entry.pushed < config.history_cap {
            entry.records.push(record);
            entry.pushed += 1;
        } else {
            *history_overflow = true;
        }
    }
}

fn race_access(e: &Event, kind: AccessKind) -> RaceAccess {
    RaceAccess {
        seq: e.seq,
        tid: e.tid,
        region: e.region,
        kind,
        loc: e.loc.clone(),
        mpi: e.kind.mpi_call().cloned(),
    }
}

#[derive(Default)]
struct Shard {
    ranks: HashMap<Rank, RankStream>,
}

/// The online detector. Feed it events (in recording order per rank) via
/// [`EventSink::on_event`] or [`home_trace::TraceSink::record`], then call
/// [`StreamDetector::finish`] once to collect races and statistics.
pub struct StreamDetector {
    config: DetectorConfig,
    shards: Vec<Mutex<Shard>>,
    events: AtomicU64,
    failed: AtomicBool,
    error: Mutex<Option<HomeError>>,
    start: OnceLock<Instant>,
    race_sink: Option<Arc<dyn RaceSink>>,
}

impl StreamDetector {
    /// Create a detector with the given configuration (`config.jobs` is
    /// ignored — streaming parallelism comes from the producers).
    pub fn new(config: DetectorConfig) -> Self {
        StreamDetector {
            config,
            shards: (0..RANK_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            events: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            start: OnceLock::new(),
            race_sink: None,
        }
    }

    /// Create a detector that reports each race to `sink` the moment it is
    /// discovered (see [`RaceSink`] for the re-entrancy contract). The
    /// races are still accumulated and returned by
    /// [`StreamDetector::finish`] as usual.
    pub fn with_race_sink(config: DetectorConfig, sink: Arc<dyn RaceSink>) -> Self {
        StreamDetector {
            race_sink: Some(sink),
            ..StreamDetector::new(config)
        }
    }

    /// Consume one event. Infallible at the call site; the first structural
    /// error (corrupt stream) is stashed and surfaced by `finish`, and all
    /// further events are ignored.
    pub fn consume(&self, e: &Event) {
        if self.failed.load(Ordering::Relaxed) {
            return;
        }
        self.start.get_or_init(Instant::now);
        self.events.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[e.rank.index() % RANK_SHARDS];
        let mut guard = shard.lock();
        let st = guard.ranks.entry(e.rank).or_insert_with(RankStream::new);
        if let Err(err) = st.on_event(e.rank, e, &self.config, self.race_sink.as_deref()) {
            drop(guard);
            self.failed.store(true, Ordering::Relaxed);
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
        }
    }

    /// Consume a batch of events, resolving the shard lock and rank-state
    /// lookup once per run of same-rank events instead of once per event.
    /// HBT sections are rank-clustered, so a batch typically dissolves
    /// into a handful of long runs. Byte-identical to calling
    /// [`StreamDetector::consume`] per event: per-rank event order is
    /// preserved, and on a structural error the events up to and
    /// including the failing one are counted, none after.
    pub fn consume_batch(&self, events: &[Event]) {
        let mut rest = events;
        while let Some(first) = rest.first() {
            if self.failed.load(Ordering::Relaxed) {
                return;
            }
            self.start.get_or_init(Instant::now);
            let rank = first.rank;
            let run_len = rest
                .iter()
                .position(|e| e.rank != rank)
                .unwrap_or(rest.len());
            let (run, tail) = rest.split_at(run_len);
            rest = tail;
            let shard = &self.shards[rank.index() % RANK_SHARDS];
            let mut guard = shard.lock();
            let st = guard.ranks.entry(rank).or_insert_with(RankStream::new);
            let mut consumed = 0u64;
            let mut failure = None;
            for e in run {
                consumed += 1;
                if let Err(err) = st.on_event(rank, e, &self.config, self.race_sink.as_deref()) {
                    failure = Some(err);
                    break;
                }
            }
            drop(guard);
            self.events.fetch_add(consumed, Ordering::Relaxed);
            if let Some(err) = failure {
                self.failed.store(true, Ordering::Relaxed);
                let mut slot = self.error.lock();
                if slot.is_none() {
                    *slot = Some(err);
                }
                return;
            }
        }
    }

    /// Finalize: drain all rank states and return the races (concatenated
    /// in ascending rank order, matching the batch engine's merge) plus
    /// run statistics. Call once; a second call sees an empty detector.
    pub fn finish(&self) -> Result<(Vec<Race>, StreamStats), HomeError> {
        if let Some(err) = self.error.lock().take() {
            return Err(err);
        }
        let elapsed = self.start.get().map(Instant::elapsed).unwrap_or_default();
        let mut per_rank: Vec<(Rank, RankStream)> = Vec::new();
        for shard in &self.shards {
            per_rank.extend(shard.lock().ranks.drain());
        }
        per_rank.sort_by_key(|(rank, _)| *rank);
        let mut races = Vec::new();
        let mut stats = StreamStats {
            events: self.events.load(Ordering::Relaxed),
            ..StreamStats::default()
        };
        for (_, st) in per_rank {
            races.extend(st.races);
            stats.peak_live_segments += st.peak_live;
            stats.total_segments += st.next_slot;
            stats.retired_segments += st.retired;
            stats.retired_while_overlapping += st.retired_overlapping;
            stats.history_overflow |= st.history_overflow;
        }
        let secs = elapsed.as_secs_f64();
        stats.events_per_sec = if secs > 0.0 {
            stats.events as f64 / secs
        } else {
            0.0
        };
        Ok((races, stats))
    }
}

impl EventSink for StreamDetector {
    fn on_event(&self, event: &Event) {
        self.consume(event);
    }
}

impl TraceSink for StreamDetector {
    fn record(&self, event: Event) {
        self.consume(&event);
    }
}

/// Run the streaming detector over an already-materialized trace — the
/// drop-in streaming counterpart of [`home_dynamic::detect`].
pub fn detect_stream(
    trace: &Trace,
    config: &DetectorConfig,
) -> Result<(Vec<Race>, StreamStats), HomeError> {
    let detector = StreamDetector::new(config.clone());
    for e in trace.events() {
        detector.consume(e);
    }
    detector.finish()
}

/// [`detect_stream`] over the amortized batch feed path: events go
/// through [`StreamDetector::consume_batch`] in chunks of `batch`
/// events (the whole trace at once when `batch` is 0). Byte-identical
/// results for every batch size.
pub fn detect_stream_batched(
    trace: &Trace,
    config: &DetectorConfig,
    batch: usize,
) -> Result<(Vec<Race>, StreamStats), HomeError> {
    let detector = StreamDetector::new(config.clone());
    let events = trace.events();
    if batch == 0 {
        detector.consume_batch(events);
    } else {
        for chunk in events.chunks(batch) {
            detector.consume_batch(chunk);
        }
    }
    detector.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_dynamic::detect;
    use home_trace::VarId;

    fn ev(seq: u64, tid: u32, region: Option<u64>, kind: EventKind) -> Event {
        Event {
            seq,
            rank: Rank(0),
            tid: Tid(tid),
            region: region.map(RegionId),
            time_ns: seq,
            loc: None,
            kind,
        }
    }

    fn write(seq: u64, tid: u32, region: Option<u64>, var: u32) -> Event {
        ev(
            seq,
            tid,
            region,
            EventKind::Access {
                loc: MemLoc::Var(VarId(var)),
                kind: AccessKind::Write,
            },
        )
    }

    fn fork(seq: u64, region: u64, n: u32) -> Event {
        ev(
            seq,
            0,
            None,
            EventKind::Fork {
                region: RegionId(region),
                nthreads: n,
            },
        )
    }

    fn join(seq: u64, region: u64) -> Event {
        ev(
            seq,
            0,
            None,
            EventKind::JoinRegion {
                region: RegionId(region),
            },
        )
    }

    #[test]
    fn matches_batch_on_simple_race() {
        let t = Trace::from_events(vec![
            fork(0, 0, 2),
            write(1, 0, Some(0), 7),
            write(2, 1, Some(0), 7),
            join(3, 0),
        ]);
        let cfg = DetectorConfig::hybrid();
        let batch = detect(&t, &cfg).unwrap();
        let (stream, stats) = detect_stream(&t, &cfg).unwrap();
        assert_eq!(format!("{batch:?}"), format!("{stream:?}"));
        assert_eq!(stats.events, 4);
        assert!(stats.retired_segments >= 2, "{stats:?}");
    }

    #[test]
    fn pruning_keeps_live_below_total_across_regions() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        for r in 0..4u64 {
            events.push(fork(seq, r, 2));
            seq += 1;
            for tid in 0..2u32 {
                events.push(write(seq, tid, Some(r), r as u32));
                seq += 1;
            }
            events.push(join(seq, r));
            seq += 1;
        }
        let t = Trace::from_events(events);
        let cfg = DetectorConfig::hybrid();
        let batch = detect(&t, &cfg).unwrap();
        let (stream, stats) = detect_stream(&t, &cfg).unwrap();
        assert_eq!(format!("{batch:?}"), format!("{stream:?}"));
        assert!(stats.peak_live_segments < stats.total_segments, "{stats:?}");
        assert_eq!(stats.retired_segments, 8, "{stats:?}");
    }

    #[test]
    fn no_pruning_in_lockset_only_mode() {
        let t = Trace::from_events(vec![
            fork(0, 0, 2),
            write(1, 0, Some(0), 7),
            write(2, 1, Some(0), 7),
            join(3, 0),
        ]);
        let cfg = DetectorConfig::lockset_only();
        let (_, stats) = detect_stream(&t, &cfg).unwrap();
        assert_eq!(stats.retired_segments, 0);
    }

    fn acquire(seq: u64, tid: u32, region: Option<u64>, lock: u32) -> Event {
        ev(seq, tid, region, EventKind::Acquire { lock: LockId(lock) })
    }

    fn release(seq: u64, tid: u32, region: Option<u64>, lock: u32) -> Event {
        ev(seq, tid, region, EventKind::Release { lock: LockId(lock) })
    }

    fn barrier(seq: u64, tid: u32, region: u64, b: u32) -> Event {
        ev(
            seq,
            tid,
            Some(region),
            EventKind::Barrier {
                barrier: BarrierId(b),
                epoch: 0,
            },
        )
    }

    /// The reachability sweep retires a region joined *while another region
    /// is still live*, once lock-release edges and a barrier make every
    /// live clock dominate its final epoch — the case the old "no other
    /// region live" guard could never retire.
    #[test]
    fn overlapping_region_retires_via_reachability_sweep() {
        let t = Trace::from_events(vec![
            fork(0, 1, 2),
            write(1, 0, Some(1), 10),
            write(2, 1, Some(1), 10), // race inside R1
            fork(3, 2, 1),            // spine forks R2 while R1 is live
            write(4, 0, Some(2), 20),
            join(5, 2), // R2 joins under overlap -> pending, not retired
            // Publish the spine's post-join clock (which covers R2) to both
            // R1 workers through a lock-release chain...
            acquire(6, 0, None, 9),
            release(7, 0, None, 9),
            acquire(8, 0, Some(1), 9),
            release(9, 0, Some(1), 9),
            acquire(10, 1, Some(1), 9),
            release(11, 1, Some(1), 9),
            // ...and let the barrier's sweep observe full domination.
            barrier(12, 0, 1, 0),
            barrier(13, 1, 1, 0),
            write(14, 0, Some(1), 30),
            write(15, 1, Some(1), 30), // post-barrier race, still detected
            join(16, 1),
        ]);
        let cfg = DetectorConfig::hybrid();
        let batch = detect(&t, &cfg).unwrap();
        let (stream, stats) = detect_stream(&t, &cfg).unwrap();
        assert_eq!(format!("{batch:?}"), format!("{stream:?}"));
        assert_eq!(stream.len(), 2, "{stream:?}");
        assert_eq!(stats.retired_while_overlapping, 1, "{stats:?}");
        assert_eq!(stats.retired_segments, 3, "{stats:?}");
    }

    /// A region joined under overlap stays pending while a live segment's
    /// clock does not dominate it (no ordering edge was recorded).
    #[test]
    fn unreachable_overlap_is_not_retired() {
        let t = Trace::from_events(vec![
            fork(0, 1, 2),
            write(1, 0, Some(1), 10),
            write(2, 1, Some(1), 10),
            fork(3, 2, 1),
            write(4, 0, Some(2), 20),
            join(5, 2), // R1 workers never see R2's clock
            join(6, 1),
        ]);
        let (_, stats) = detect_stream(&t, &DetectorConfig::hybrid()).unwrap();
        assert_eq!(stats.retired_while_overlapping, 0, "{stats:?}");
        // R1's own segments still retire at its (non-overlapped) join; the
        // R2 segment is sweepable then too, since R1's bookkeeping is gone.
        assert!(stats.retired_segments >= 2, "{stats:?}");
    }

    #[test]
    fn race_sink_sees_each_race_at_discovery_time() {
        struct Collect(parking_lot::Mutex<Vec<Race>>);
        impl RaceSink for Collect {
            fn on_race(&self, race: &Race) {
                self.0.lock().push(race.clone());
            }
        }
        let sink = Arc::new(Collect(parking_lot::Mutex::new(Vec::new())));
        let d = StreamDetector::with_race_sink(DetectorConfig::hybrid(), sink.clone());
        d.consume(&fork(0, 0, 2));
        d.consume(&write(1, 0, Some(0), 7));
        assert!(sink.0.lock().is_empty(), "no race after one access");
        d.consume(&write(2, 1, Some(0), 7));
        assert_eq!(sink.0.lock().len(), 1, "race reported before finish");
        d.consume(&join(3, 0));
        let (races, _) = d.finish().unwrap();
        assert_eq!(*sink.0.lock(), races);
    }

    #[test]
    fn out_of_order_stream_is_a_typed_error() {
        let d = StreamDetector::new(DetectorConfig::hybrid());
        d.consume(&write(5, 0, None, 1));
        d.consume(&write(3, 0, None, 1));
        let err = d.finish().unwrap_err();
        assert!(matches!(err, HomeError::CorruptTrace { .. }), "{err:?}");
    }

    #[test]
    fn join_of_unknown_region_is_a_typed_error() {
        let t = Trace::from_events(vec![write(0, 0, None, 7), join(1, 42)]);
        let err = detect_stream(&t, &DetectorConfig::hybrid()).unwrap_err();
        assert!(matches!(err, HomeError::CorruptTrace { .. }), "{err:?}");
        assert!(err.to_string().contains("region42"), "{err}");
    }
}
