//! The runtime event model.
//!
//! Every observable action of a simulated hybrid program — memory accesses,
//! lock operations, OpenMP region fork/join, barriers, and MPI calls — is an
//! [`Event`]. The dynamic analyses (`home-dynamic`) and the baseline tools
//! consume streams of these.

use crate::ids::{BarrierId, CommId, LockId, Rank, RegionId, ReqId, SrcLoc, Tid, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The MPI thread-support level requested at initialization
/// (`MPI_Init_thread`). Mirrors the four levels of the MPI standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ThreadLevel {
    /// Only one thread exists in the process.
    Single,
    /// Multiple threads, but only the main thread makes MPI calls.
    Funneled,
    /// Multiple threads may call MPI, but never concurrently.
    Serialized,
    /// Unrestricted multithreaded MPI.
    Multiple,
}

impl fmt::Display for ThreadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadLevel::Single => "MPI_THREAD_SINGLE",
            ThreadLevel::Funneled => "MPI_THREAD_FUNNELED",
            ThreadLevel::Serialized => "MPI_THREAD_SERIALIZED",
            ThreadLevel::Multiple => "MPI_THREAD_MULTIPLE",
        };
        f.write_str(s)
    }
}

/// The per-process monitored variables the HOME wrappers write into.
///
/// Each corresponds to one argument class of the wrapped MPI calls; a race
/// on a monitored variable means two MPI calls touching that argument class
/// executed concurrently on different threads (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MonitoredVar {
    /// `srctmp` — source/destination rank argument.
    Src,
    /// `tagtmp` — tag argument.
    Tag,
    /// `commtmp` — communicator argument.
    Comm,
    /// `requesttmp` — request handle of nonblocking completion calls.
    Request,
    /// `collectivetmp` — collective-call marker per communicator.
    Collective,
    /// `finalizetmp` — `MPI_Finalize` marker.
    Finalize,
}

impl MonitoredVar {
    /// All six monitored variables.
    pub const ALL: [MonitoredVar; 6] = [
        MonitoredVar::Src,
        MonitoredVar::Tag,
        MonitoredVar::Comm,
        MonitoredVar::Request,
        MonitoredVar::Collective,
        MonitoredVar::Finalize,
    ];

    /// The paper's variable name.
    pub fn name(self) -> &'static str {
        match self {
            MonitoredVar::Src => "srctmp",
            MonitoredVar::Tag => "tagtmp",
            MonitoredVar::Comm => "commtmp",
            MonitoredVar::Request => "requesttmp",
            MonitoredVar::Collective => "collectivetmp",
            MonitoredVar::Finalize => "finalizetmp",
        }
    }
}

impl fmt::Display for MonitoredVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Kinds of MPI calls the wrappers understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MpiCallKind {
    Init,
    InitThread,
    Finalize,
    Send,
    Ssend,
    Recv,
    Isend,
    Irecv,
    Sendrecv,
    Wait,
    Test,
    Waitall,
    Probe,
    Iprobe,
    Barrier,
    Bcast,
    Reduce,
    Allreduce,
    Gather,
    Scatter,
    Allgather,
    Alltoall,
    CommDup,
    CommSplit,
}

impl MpiCallKind {
    /// True for collective operations (must be called by all ranks of the
    /// communicator, and not concurrently by threads of one process).
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            MpiCallKind::Barrier
                | MpiCallKind::Bcast
                | MpiCallKind::Reduce
                | MpiCallKind::Allreduce
                | MpiCallKind::Gather
                | MpiCallKind::Scatter
                | MpiCallKind::Allgather
                | MpiCallKind::Alltoall
                | MpiCallKind::CommDup
                | MpiCallKind::CommSplit
        )
    }

    /// True for receive-side point-to-point calls.
    pub fn is_recv(self) -> bool {
        matches!(
            self,
            MpiCallKind::Recv | MpiCallKind::Irecv | MpiCallKind::Sendrecv
        )
    }

    /// True for request-completion calls (`MPI_Wait`/`MPI_Test`/`Waitall`).
    pub fn is_completion(self) -> bool {
        matches!(
            self,
            MpiCallKind::Wait | MpiCallKind::Test | MpiCallKind::Waitall
        )
    }

    /// True for probing calls.
    pub fn is_probe(self) -> bool {
        matches!(self, MpiCallKind::Probe | MpiCallKind::Iprobe)
    }

    /// The MPI function name, for reports.
    pub fn mpi_name(self) -> &'static str {
        match self {
            MpiCallKind::Init => "MPI_Init",
            MpiCallKind::InitThread => "MPI_Init_thread",
            MpiCallKind::Finalize => "MPI_Finalize",
            MpiCallKind::Send => "MPI_Send",
            MpiCallKind::Ssend => "MPI_Ssend",
            MpiCallKind::Recv => "MPI_Recv",
            MpiCallKind::Isend => "MPI_Isend",
            MpiCallKind::Irecv => "MPI_Irecv",
            MpiCallKind::Sendrecv => "MPI_Sendrecv",
            MpiCallKind::Wait => "MPI_Wait",
            MpiCallKind::Test => "MPI_Test",
            MpiCallKind::Waitall => "MPI_Waitall",
            MpiCallKind::Probe => "MPI_Probe",
            MpiCallKind::Iprobe => "MPI_Iprobe",
            MpiCallKind::Barrier => "MPI_Barrier",
            MpiCallKind::Bcast => "MPI_Bcast",
            MpiCallKind::Reduce => "MPI_Reduce",
            MpiCallKind::Allreduce => "MPI_Allreduce",
            MpiCallKind::Gather => "MPI_Gather",
            MpiCallKind::Scatter => "MPI_Scatter",
            MpiCallKind::Allgather => "MPI_Allgather",
            MpiCallKind::Alltoall => "MPI_Alltoall",
            MpiCallKind::CommDup => "MPI_Comm_dup",
            MpiCallKind::CommSplit => "MPI_Comm_split",
        }
    }
}

impl fmt::Display for MpiCallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mpi_name())
    }
}

/// Everything the HOME wrapper records about one MPI call.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MpiCallRecord {
    /// Which MPI function.
    pub kind: MpiCallKind,
    /// Peer rank (destination for sends, source for receives/probes);
    /// `Some(-1)` encodes `MPI_ANY_SOURCE`.
    pub peer: Option<i32>,
    /// Message tag; `Some(-1)` encodes `MPI_ANY_TAG`.
    pub tag: Option<i32>,
    /// Communicator.
    pub comm: CommId,
    /// Request handle for nonblocking ops and their completions.
    pub request: Option<ReqId>,
    /// True if issued by the process's main (master) thread.
    pub is_main_thread: bool,
    /// Thread level the process was initialized with (as known at call time;
    /// `None` before initialization).
    pub thread_level: Option<ThreadLevel>,
}

impl MpiCallRecord {
    /// A minimal record for calls without p2p arguments.
    pub fn of_kind(kind: MpiCallKind) -> Self {
        MpiCallRecord {
            kind,
            peer: None,
            tag: None,
            comm: crate::ids::COMM_WORLD,
            request: None,
            is_main_thread: true,
            thread_level: None,
        }
    }
}

impl fmt::Display for MpiCallRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.kind)?;
        let mut first = true;
        let mut field = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{s}")
        };
        if let Some(p) = self.peer {
            field(
                f,
                if p < 0 {
                    "peer=ANY".into()
                } else {
                    format!("peer={p}")
                },
            )?;
        }
        if let Some(t) = self.tag {
            field(
                f,
                if t < 0 {
                    "tag=ANY".into()
                } else {
                    format!("tag={t}")
                },
            )?;
        }
        field(f, format!("{}", self.comm))?;
        if let Some(r) = self.request {
            field(f, format!("{r}"))?;
        }
        write!(f, ")")
    }
}

/// A memory location, as seen by the race detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemLoc {
    /// One of the six per-process monitored variables the HOME wrappers
    /// write into.
    Monitored(MonitoredVar),
    /// A named shared program variable (scalar).
    Var(VarId),
    /// One element (or block) of a named shared array.
    Elem(VarId, u64),
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLoc::Monitored(v) => write!(f, "{v}"),
            MemLoc::Var(v) => write!(f, "{v}"),
            MemLoc::Elem(v, i) => write!(f, "{v}[{i}]"),
        }
    }
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    Read,
    Write,
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A read or write of a shared location.
    Access { loc: MemLoc, kind: AccessKind },
    /// The HOME wrapper's write into a monitored variable, carrying the MPI
    /// call that produced it. Race detection treats it as a `Write` on
    /// `MemLoc::Monitored(var)`; violation matching reads the call record.
    MonitoredWrite {
        var: MonitoredVar,
        call: MpiCallRecord,
    },
    /// Lock acquired (OpenMP `critical` or runtime lock).
    Acquire { lock: LockId },
    /// Lock released.
    Release { lock: LockId },
    /// The master thread forked an OpenMP parallel region.
    Fork { region: RegionId, nthreads: u32 },
    /// The master thread joined an OpenMP parallel region.
    JoinRegion { region: RegionId },
    /// This thread passed a barrier (epoch counts completions at that
    /// barrier object within the region instance).
    Barrier { barrier: BarrierId, epoch: u64 },
    /// An MPI call was issued (wrapper entry). Emitted in addition to the
    /// `MonitoredWrite`s for that call.
    MpiCall { call: MpiCallRecord },
    /// The process initialized MPI with the given thread level.
    MpiInit {
        level: ThreadLevel,
        requested_by_init_thread: bool,
    },
}

impl EventKind {
    /// The location this event reads or writes, if it is an access.
    pub fn access(&self) -> Option<(MemLoc, AccessKind)> {
        match self {
            EventKind::Access { loc, kind } => Some((*loc, *kind)),
            EventKind::MonitoredWrite { var, .. } => {
                Some((MemLoc::Monitored(*var), AccessKind::Write))
            }
            _ => None,
        }
    }

    /// The MPI call record attached to this event, if any.
    pub fn mpi_call(&self) -> Option<&MpiCallRecord> {
        match self {
            EventKind::MonitoredWrite { call, .. } | EventKind::MpiCall { call } => Some(call),
            _ => None,
        }
    }
}

/// One observed runtime event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Global observation sequence number (total order of recording).
    pub seq: u64,
    /// MPI process rank.
    pub rank: Rank,
    /// OpenMP thread id within the rank (master = 0).
    pub tid: Tid,
    /// Parallel-region instance the thread was in (`None` = sequential part).
    pub region: Option<RegionId>,
    /// Virtual time at which the event occurred.
    pub time_ns: u64,
    /// Source location, when known.
    pub loc: Option<SrcLoc>,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// True if this event is inside an OpenMP parallel region.
    pub fn in_parallel_region(&self) -> bool {
        self.region.is_some()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}.{}] ", self.seq, self.rank, self.tid)?;
        match &self.kind {
            EventKind::Access { loc, kind } => {
                write!(
                    f,
                    "{} {loc}",
                    if *kind == AccessKind::Read {
                        "read"
                    } else {
                        "write"
                    }
                )
            }
            EventKind::MonitoredWrite { var, call } => write!(f, "monitored {var} ← {call}"),
            EventKind::Acquire { lock } => write!(f, "acquire {lock}"),
            EventKind::Release { lock } => write!(f, "release {lock}"),
            EventKind::Fork { region, nthreads } => write!(f, "fork {region} ({nthreads} threads)"),
            EventKind::JoinRegion { region } => write!(f, "join {region}"),
            EventKind::Barrier { barrier, epoch } => write!(f, "barrier {barrier}@{epoch}"),
            EventKind::MpiCall { call } => write!(f, "mpi {call}"),
            EventKind::MpiInit { level, .. } => write!(f, "mpi-init {level}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::COMM_WORLD;

    #[test]
    fn call_kind_predicates() {
        assert!(MpiCallKind::Barrier.is_collective());
        assert!(MpiCallKind::Allreduce.is_collective());
        assert!(!MpiCallKind::Send.is_collective());
        assert!(MpiCallKind::Recv.is_recv());
        assert!(MpiCallKind::Irecv.is_recv());
        assert!(MpiCallKind::Wait.is_completion());
        assert!(MpiCallKind::Test.is_completion());
        assert!(MpiCallKind::Probe.is_probe());
        assert!(MpiCallKind::Iprobe.is_probe());
        assert!(!MpiCallKind::Recv.is_probe());
    }

    #[test]
    fn monitored_var_names_match_paper() {
        let names: Vec<_> = MonitoredVar::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            vec![
                "srctmp",
                "tagtmp",
                "commtmp",
                "requesttmp",
                "collectivetmp",
                "finalizetmp"
            ]
        );
    }

    #[test]
    fn monitored_write_is_a_write_access() {
        let k = EventKind::MonitoredWrite {
            var: MonitoredVar::Tag,
            call: MpiCallRecord::of_kind(MpiCallKind::Recv),
        };
        assert_eq!(
            k.access(),
            Some((MemLoc::Monitored(MonitoredVar::Tag), AccessKind::Write))
        );
        assert!(k.mpi_call().is_some());
    }

    #[test]
    fn record_display() {
        let r = MpiCallRecord {
            kind: MpiCallKind::Recv,
            peer: Some(-1),
            tag: Some(7),
            comm: COMM_WORLD,
            request: None,
            is_main_thread: false,
            thread_level: Some(ThreadLevel::Multiple),
        };
        let s = r.to_string();
        assert!(s.contains("MPI_Recv"));
        assert!(s.contains("peer=ANY"));
        assert!(s.contains("tag=7"));
    }

    #[test]
    fn thread_level_ordering() {
        assert!(ThreadLevel::Single < ThreadLevel::Funneled);
        assert!(ThreadLevel::Serialized < ThreadLevel::Multiple);
    }

    #[test]
    fn event_serde_roundtrip() {
        let e = Event {
            seq: 3,
            rank: Rank(1),
            tid: Tid(1),
            region: Some(RegionId(2)),
            time_ns: 500,
            loc: Some(SrcLoc::new("x.hmp", 9)),
            kind: EventKind::Barrier {
                barrier: BarrierId(0),
                epoch: 1,
            },
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
