//! Metamorphic properties of the race detector: adding synchronization can
//! only remove races, never create them, and the hybrid detector is the
//! conjunction of its two parts. Cases are generated from a seeded in-repo
//! ChaCha generator (the crates registry is unreachable, so proptest is
//! unavailable); every case is deterministic.

use home::dynamic::{detect, DetectorConfig};
use home::trace::{
    AccessKind, BarrierId, Event, EventKind, LockId, MemLoc, Rank, RegionId, Tid, Trace, VarId,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rng_for(case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x4D45_5441 + case)
}

/// A tiny op language for two threads inside one region.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u32),
    Read(u32),
    Locked(u32, u32), // (lock, var): acquire; write var; release
}

/// Random `(thread, op)` pairs; the pair order is the global interleaving.
fn gen_ops(rng: &mut ChaCha8Rng) -> Vec<(u8, Op)> {
    let len = rng.gen_range(1usize..12);
    (0..len)
        .map(|_| {
            let t = rng.gen_range(0u8..2);
            let op = match rng.gen_range(0u32..3) {
                0 => Op::Write(rng.gen_range(0u32..4)),
                1 => Op::Read(rng.gen_range(0u32..4)),
                _ => Op::Locked(rng.gen_range(0u32..2), rng.gen_range(0u32..4)),
            };
            (t, op)
        })
        .collect()
}

/// Build a trace from the op sequence; `barrier_at` optionally inserts a
/// team barrier after the i-th op.
fn build_trace(ops: &[(u8, Op)], barrier_at: Option<usize>) -> Trace {
    fn push(events: &mut Vec<Event>, tid: u32, kind: EventKind, seq: &mut u64) {
        events.push(Event {
            seq: *seq,
            rank: Rank(0),
            tid: Tid(tid),
            region: Some(RegionId(0)),
            time_ns: *seq,
            loc: Some(home::trace::SrcLoc::new("m.hmp", *seq as u32 + 1)),
            kind,
        });
        *seq += 1;
    }
    let mut events = Vec::new();
    let mut seq = 0u64;
    // Fork from the spine.
    events.push(Event {
        seq,
        rank: Rank(0),
        tid: Tid(0),
        region: None,
        time_ns: 0,
        loc: None,
        kind: EventKind::Fork {
            region: RegionId(0),
            nthreads: 2,
        },
    });
    seq += 1;
    let mut epoch = 0u64;
    for (i, &(t, op)) in ops.iter().enumerate() {
        let tid = t as u32;
        match op {
            Op::Write(v) => push(
                &mut events,
                tid,
                EventKind::Access {
                    loc: MemLoc::Var(VarId(v)),
                    kind: AccessKind::Write,
                },
                &mut seq,
            ),
            Op::Read(v) => push(
                &mut events,
                tid,
                EventKind::Access {
                    loc: MemLoc::Var(VarId(v)),
                    kind: AccessKind::Read,
                },
                &mut seq,
            ),
            Op::Locked(l, v) => {
                push(
                    &mut events,
                    tid,
                    EventKind::Acquire { lock: LockId(l) },
                    &mut seq,
                );
                push(
                    &mut events,
                    tid,
                    EventKind::Access {
                        loc: MemLoc::Var(VarId(v)),
                        kind: AccessKind::Write,
                    },
                    &mut seq,
                );
                push(
                    &mut events,
                    tid,
                    EventKind::Release { lock: LockId(l) },
                    &mut seq,
                );
            }
        }
        if barrier_at == Some(i) {
            // Both threads pass the barrier (recording order: all arrivals
            // precede all departures, which emitting both events here
            // satisfies).
            for bt in 0..2 {
                push(
                    &mut events,
                    bt,
                    EventKind::Barrier {
                        barrier: BarrierId(0),
                        epoch,
                    },
                    &mut seq,
                );
            }
            epoch += 1;
        }
    }
    events.push(Event {
        seq,
        rank: Rank(0),
        tid: Tid(0),
        region: None,
        time_ns: seq,
        loc: None,
        kind: EventKind::JoinRegion {
            region: RegionId(0),
        },
    });
    Trace::from_events(events)
}

fn race_count(trace: &Trace, cfg: &DetectorConfig) -> usize {
    detect(trace, cfg)
        .expect("well-formed synthetic trace")
        .len()
}

fn pair_set(trace: &Trace, cfg: &DetectorConfig) -> std::collections::BTreeSet<(String, u64, u64)> {
    detect(trace, cfg)
        .expect("well-formed synthetic trace")
        .into_iter()
        .map(|r| (r.loc.to_string(), r.first.seq, r.second.seq))
        .collect()
}

/// The hybrid detector reports a subset of each single-analysis mode
/// (it is their conjunction).
#[test]
fn hybrid_is_conjunction_of_modes() {
    for case in 0..96 {
        let mut rng = rng_for(case);
        let ops = gen_ops(&mut rng);
        let trace = build_trace(&ops, None);
        let hybrid = pair_set(&trace, &DetectorConfig::hybrid());
        let lockset = pair_set(&trace, &DetectorConfig::lockset_only());
        let hb = pair_set(&trace, &DetectorConfig::hb_only());
        assert!(hybrid.is_subset(&lockset), "case {case}: hybrid ⊄ lockset");
        assert!(hybrid.is_subset(&hb), "case {case}: hybrid ⊄ hb");
    }
}

/// Inserting a barrier anywhere never increases the hybrid race count.
#[test]
fn adding_a_barrier_never_adds_races() {
    for case in 0..96 {
        let mut rng = rng_for(1_000 + case);
        let ops = gen_ops(&mut rng);
        let trace = build_trace(&ops, None);
        let pos = rng.gen_range(0usize..ops.len());
        let trace_b = build_trace(&ops, Some(pos));
        assert!(
            race_count(&trace_b, &DetectorConfig::hybrid())
                <= race_count(&trace, &DetectorConfig::hybrid()),
            "case {case}: barrier at {pos} added races"
        );
    }
}

/// Wrapping every access in one common lock removes all hybrid races.
#[test]
fn common_lock_eliminates_all_races() {
    for case in 0..96 {
        let mut rng = rng_for(2_000 + case);
        let ops = gen_ops(&mut rng);
        let locked: Vec<(u8, Op)> = ops
            .iter()
            .map(|&(t, op)| {
                let v = match op {
                    Op::Write(v) | Op::Read(v) | Op::Locked(_, v) => v,
                };
                (t, Op::Locked(9, v))
            })
            .collect();
        let trace = build_trace(&locked, None);
        assert_eq!(
            race_count(&trace, &DetectorConfig::hybrid()),
            0,
            "case {case}"
        );
    }
}

/// Reads never race with reads, whatever the interleaving.
#[test]
fn read_only_histories_are_race_free() {
    for case in 0..96 {
        let mut rng = rng_for(3_000 + case);
        let len = rng.gen_range(1usize..12);
        let ops: Vec<(u8, Op)> = (0..len)
            .map(|_| (rng.gen_range(0u8..2), Op::Read(rng.gen_range(0u32..4))))
            .collect();
        let trace = build_trace(&ops, None);
        assert_eq!(
            race_count(&trace, &DetectorConfig::hybrid()),
            0,
            "case {case}"
        );
        assert_eq!(
            race_count(&trace, &DetectorConfig::lockset_only()),
            0,
            "case {case}"
        );
    }
}

/// Determinism: detection is a pure function of the trace.
#[test]
fn detection_is_deterministic() {
    for case in 0..96 {
        let mut rng = rng_for(4_000 + case);
        let ops = gen_ops(&mut rng);
        let trace = build_trace(&ops, None);
        assert_eq!(
            pair_set(&trace, &DetectorConfig::hybrid()),
            pair_set(&trace, &DetectorConfig::hybrid()),
            "case {case}"
        );
    }
}
