//! Call graph with per-edge execution context.
//!
//! Every `call f()` statement becomes one [`CallEdge`] carrying the facts
//! the interprocedural summaries need about the *call site*: whether it
//! sits inside an `omp parallel` region, whether a serializing construct
//! (`master`, `single`, one `section`) guards it, and which critical
//! sections are lexically held around it. The bottom-up summary pass
//! ([`crate::summary`]) folds these contexts over the graph.

use home_ir::{Program, Stmt, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One `call` statement, with the execution context of its call site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallEdge {
    /// Calling function, `None` for the program's main body.
    pub caller: Option<String>,
    /// Callee name (may name no defined function; such edges are kept so
    /// diagnostics can see them, but summaries ignore them).
    pub callee: String,
    /// Source line of the `call` statement.
    pub line: u32,
    /// The call site is lexically inside an `omp parallel` region.
    pub in_parallel: bool,
    /// A serializing construct (`master`/`single`/one `section`) guards the
    /// call site: at most one thread per region instance executes it.
    pub serialized: bool,
    /// Critical-section names lexically held around the call site.
    pub locks_held: BTreeSet<String>,
}

/// The program's call graph: one edge per `call` statement.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CallGraph {
    /// All edges, in program order (main body first, then each function).
    pub edges: Vec<CallEdge>,
}

impl CallGraph {
    /// Build the call graph of `program`.
    pub fn build(program: &Program) -> CallGraph {
        let mut edges = Vec::new();
        let mut ctx = WalkCtx::default();
        walk(&program.body, None, &mut ctx, &mut edges);
        for func in &program.functions {
            let mut ctx = WalkCtx::default();
            walk(&func.body, Some(func.name.as_str()), &mut ctx, &mut edges);
        }
        CallGraph { edges }
    }

    /// Edges whose callee is `name`.
    pub fn callers_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a CallEdge> {
        self.edges.iter().filter(move |e| e.callee == name)
    }

    /// Edges originating in `caller` (`None` = main body).
    pub fn edges_from<'a>(&'a self, caller: Option<&'a str>) -> impl Iterator<Item = &'a CallEdge> {
        self.edges
            .iter()
            .filter(move |e| e.caller.as_deref() == caller)
    }
}

/// Lexical context accumulated while walking one body.
#[derive(Default)]
struct WalkCtx {
    parallel_depth: u32,
    serialize_depth: u32,
    locks: Vec<String>,
}

fn walk(stmts: &[Stmt], caller: Option<&str>, ctx: &mut WalkCtx, edges: &mut Vec<CallEdge>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Call { name } => edges.push(CallEdge {
                caller: caller.map(str::to_string),
                callee: name.clone(),
                line: s.line,
                in_parallel: ctx.parallel_depth > 0,
                serialized: ctx.serialize_depth > 0,
                locks_held: ctx.locks.iter().cloned().collect(),
            }),
            StmtKind::OmpParallel { body, .. } => {
                ctx.parallel_depth += 1;
                walk(body, caller, ctx, edges);
                ctx.parallel_depth -= 1;
            }
            StmtKind::OmpMaster { body } | StmtKind::OmpSingle { body } => {
                ctx.serialize_depth += 1;
                walk(body, caller, ctx, edges);
                ctx.serialize_depth -= 1;
            }
            StmtKind::OmpSections { sections } => {
                ctx.serialize_depth += 1;
                for sec in sections {
                    walk(sec, caller, ctx, edges);
                }
                ctx.serialize_depth -= 1;
            }
            StmtKind::OmpCritical { name, body } => {
                ctx.locks.push(name.clone());
                walk(body, caller, ctx, edges);
                ctx.locks.pop();
            }
            other => {
                for b in other.blocks() {
                    walk(b, caller, ctx, edges);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use home_ir::parse;

    #[test]
    fn edges_carry_call_site_context() {
        let p = parse(
            r#"
            program cg {
                fn inner() { mpi_barrier(); }
                fn outer() { call inner(); }
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    omp critical(gate) { call outer(); }
                    omp master { call inner(); }
                }
                call outer();
                mpi_finalize();
            }
            "#,
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        // Main body: three call sites; `outer` body: one.
        assert_eq!(cg.edges.len(), 4);
        let gated = cg
            .edges
            .iter()
            .find(|e| e.caller.is_none() && e.callee == "outer" && e.in_parallel)
            .unwrap();
        assert!(gated.locks_held.contains("gate"));
        assert!(!gated.serialized);
        let mastered = cg
            .edges
            .iter()
            .find(|e| e.callee == "inner" && e.caller.is_none())
            .unwrap();
        assert!(mastered.serialized, "master serializes the call site");
        let sequential = cg
            .edges
            .iter()
            .find(|e| e.caller.is_none() && e.callee == "outer" && !e.in_parallel)
            .unwrap();
        assert!(sequential.locks_held.is_empty());
        let nested = cg.edges_from(Some("outer")).next().unwrap();
        assert_eq!(nested.callee, "inner");
        assert!(!nested.in_parallel, "context is per call site, not global");
        assert_eq!(cg.callers_of("inner").count(), 2);
    }

    #[test]
    fn sections_serialize_their_call_sites() {
        let p = parse(
            r#"
            program sec {
                fn f() { mpi_barrier(); }
                omp parallel num_threads(2) {
                    omp sections { section { call f(); } }
                }
            }
            "#,
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.edges[0].serialized);
        assert!(cg.edges[0].in_parallel);
    }
}
