//! # home-dynamic — the runtime phase of HOME
//!
//! Offline race detection over recorded traces, per the paper's Section
//! IV-D: classic **Eraser locksets** and **vector-clock happens-before**
//! are maintained simultaneously; the hybrid combination flags a
//! conflicting access pair only when it is both HB-concurrent *and*
//! lockset-disjoint, which keeps false positives low without requiring the
//! race to actually manifest in the observed schedule.
//!
//! The same engine powers the ablation modes
//! ([`DetectorMode::LocksetOnly`], [`DetectorMode::HappensBeforeOnly`]) and
//! the Intel-Thread-Checker baseline's `omp critical` blindness
//! ([`DetectorConfig::ignore_locks`]).

// Fallible paths return `HomeError` instead of panicking: a structurally
// inconsistent trace must become a typed error the pipeline can attach to
// a partial report. Tests are exempt (the attribute is off under cfg(test)).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod detector;
mod races;

pub use detector::{
    default_jobs, detect, detect_with_stats, DetectStats, DetectorConfig, DetectorMode,
};
pub use races::{Race, RaceAccess};
