//! Communicator bookkeeping.

use crate::error::{MpiError, MpiResult};
#[cfg(test)]
use home_trace::COMM_WORLD;
use home_trace::{CommId, Rank};

/// One communicator: an ordered list of member world ranks; a process's
/// rank *within* the communicator is its position in this list.
#[derive(Debug, Clone)]
pub struct CommInfo {
    /// World ranks, in communicator-rank order.
    pub members: Vec<Rank>,
}

impl CommInfo {
    /// Size of the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// The table of live communicators in a [`crate::World`].
#[derive(Debug)]
pub struct CommTable {
    comms: Vec<CommInfo>,
}

impl CommTable {
    /// Create a table containing only `MPI_COMM_WORLD` over `n` processes.
    pub fn new_world(n: usize) -> Self {
        CommTable {
            comms: vec![CommInfo {
                members: (0..n as u32).map(Rank).collect(),
            }],
        }
    }

    /// Look up a communicator.
    pub fn get(&self, comm: CommId) -> MpiResult<&CommInfo> {
        self.comms.get(comm.index()).ok_or(MpiError::InvalidComm)
    }

    /// Size of `comm`.
    pub fn size(&self, comm: CommId) -> MpiResult<usize> {
        Ok(self.get(comm)?.size())
    }

    /// Translate a communicator-relative rank to a world rank.
    pub fn world_rank(&self, comm: CommId, crank: u32) -> MpiResult<Rank> {
        let info = self.get(comm)?;
        info.members
            .get(crank as usize)
            .copied()
            .ok_or(MpiError::InvalidRank {
                rank: crank as i32,
                comm_size: info.size(),
            })
    }

    /// Translate a world rank to its communicator-relative rank, if it is a
    /// member.
    pub fn comm_rank(&self, comm: CommId, world: Rank) -> MpiResult<Option<u32>> {
        let info = self.get(comm)?;
        Ok(info
            .members
            .iter()
            .position(|&m| m == world)
            .map(|p| p as u32))
    }

    /// Register a new communicator, returning its id.
    pub fn add(&mut self, members: Vec<Rank>) -> CommId {
        let id = CommId(self.comms.len() as u32);
        self.comms.push(CommInfo { members });
        id
    }

    /// Duplicate `comm` (same members, fresh id).
    pub fn dup(&mut self, comm: CommId) -> MpiResult<CommId> {
        let members = self.get(comm)?.members.clone();
        Ok(self.add(members))
    }

    /// Number of live communicators.
    pub fn len(&self) -> usize {
        self.comms.len()
    }

    /// Always at least 1 (`MPI_COMM_WORLD`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Perform the group computation of `MPI_Comm_split`: every member of
    /// `comm` supplies `(color, key)` (indexed by communicator rank); each
    /// distinct non-negative color becomes one new communicator, members
    /// ordered by `(key, old rank)`. Returns, per old communicator rank,
    /// the new communicator id (`None` for `MPI_UNDEFINED`, i.e. negative
    /// color).
    pub fn split(
        &mut self,
        comm: CommId,
        colors_keys: &[(i32, i32)],
    ) -> MpiResult<Vec<Option<CommId>>> {
        let info = self.get(comm)?.clone();
        assert_eq!(
            colors_keys.len(),
            info.size(),
            "split needs one (color, key) per member"
        );
        let mut colors: Vec<i32> = colors_keys.iter().map(|&(c, _)| c).collect();
        colors.sort_unstable();
        colors.dedup();
        let mut out: Vec<Option<CommId>> = vec![None; info.size()];
        for color in colors.into_iter().filter(|&c| c >= 0) {
            let mut group: Vec<(i32, u32)> = colors_keys
                .iter()
                .enumerate()
                .filter(|(_, &(c, _))| c == color)
                .map(|(crank, &(_, key))| (key, crank as u32))
                .collect();
            group.sort_unstable();
            let members: Vec<Rank> = group
                .iter()
                .map(|&(_, crank)| info.members[crank as usize])
                .collect();
            let id = self.add(members);
            for (_, crank) in group {
                out[crank as usize] = Some(id);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm_layout() {
        let t = CommTable::new_world(4);
        assert_eq!(t.size(COMM_WORLD).unwrap(), 4);
        assert_eq!(t.world_rank(COMM_WORLD, 2).unwrap(), Rank(2));
        assert_eq!(t.comm_rank(COMM_WORLD, Rank(3)).unwrap(), Some(3));
        assert!(t.get(CommId(1)).is_err());
        assert!(matches!(
            t.world_rank(COMM_WORLD, 7),
            Err(MpiError::InvalidRank { .. })
        ));
    }

    #[test]
    fn dup_preserves_members() {
        let mut t = CommTable::new_world(3);
        let d = t.dup(COMM_WORLD).unwrap();
        assert_ne!(d, COMM_WORLD);
        assert_eq!(
            t.get(d).unwrap().members,
            t.get(COMM_WORLD).unwrap().members
        );
    }

    #[test]
    fn split_by_parity() {
        let mut t = CommTable::new_world(4);
        // Even ranks → color 0, odd → color 1; key = −rank to reverse order.
        let ck: Vec<(i32, i32)> = (0i32..4).map(|r| (r % 2, -r)).collect();
        let out = t.split(COMM_WORLD, &ck).unwrap();
        let even = out[0].unwrap();
        let odd = out[1].unwrap();
        assert_eq!(out[2].unwrap(), even);
        assert_eq!(out[3].unwrap(), odd);
        // Reverse key order: higher old rank first.
        assert_eq!(t.get(even).unwrap().members, vec![Rank(2), Rank(0)]);
        assert_eq!(t.get(odd).unwrap().members, vec![Rank(3), Rank(1)]);
    }

    #[test]
    fn split_undefined_color() {
        let mut t = CommTable::new_world(2);
        let out = t.split(COMM_WORLD, &[(-1, 0), (0, 0)]).unwrap();
        assert_eq!(out[0], None);
        assert!(out[1].is_some());
    }
}
