//! Parallel HBT trace decoding for `home replay` / `home analyze`.
//!
//! v2 streams carry a seek index and self-contained compressed frames
//! ([`home_stream::scan_layout`]), so frame bodies inflate and decode
//! independently — this module fans them across the same scoped-thread
//! worker pattern the seed pipeline uses. v1 streams (and v2 streams
//! carrying plain records) fall back to the serial
//! [`home_stream::decode_sections`] path; both paths produce identical
//! sections, so downstream verdicts are byte-identical for every
//! `--jobs` value.

use crate::fanout::fan_out_indexed_with;
use home_stream::{
    decode_frame_into, decode_sections, scan_layout, sections_from_batches, FrameBatch, FrameLoc,
    FrameScratch, HbtSection,
};
use home_trace::HomeError;

/// Inflate `frames` across `jobs` workers into per-frame batches and
/// stitch them into sections. Each worker reuses one decompression
/// buffer ([`FrameScratch`]) across its whole chunk; decoded events land
/// directly in the [`FrameBatch`] buffers the sections are built from,
/// so no intermediate record list is materialized. The first frame
/// error in stream order wins, matching the serial reader.
fn decode_frames_parallel(
    bytes: &[u8],
    frames: &[FrameLoc],
    jobs: usize,
) -> Result<Vec<HbtSection>, HomeError> {
    let slots = fan_out_indexed_with(frames, jobs, FrameScratch::new, |scratch, _, frame| {
        let mut batch = FrameBatch::new();
        decode_frame_into(bytes, frame, scratch, &mut batch)?;
        Ok::<FrameBatch, HomeError>(batch)
    });
    let mut batches = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let batch = slot.unwrap_or_else(|| {
            Err(HomeError::corrupt_trace(format!(
                "HBT frame {i} produced no decode result"
            )))
        })?;
        batches.push(batch);
    }
    Ok(sections_from_batches(batches))
}

/// Decode an HBT byte stream into its trace sections, inflating v2
/// frames in parallel across `jobs` workers. The first frame error in
/// stream order wins, matching what the serial reader would report
/// first.
pub fn decode_trace(bytes: &[u8], jobs: usize) -> Result<Vec<HbtSection>, HomeError> {
    let layout = match scan_layout(bytes)? {
        Some(layout) => layout,
        None => return decode_sections(bytes),
    };
    decode_frames_parallel(bytes, &layout.frames, jobs)
}

/// Decode only the section recorded under `seed`, seeking straight to its
/// frames via the v2 index instead of inflating the whole stream. Frames
/// belonging to other sections are never touched. Errors:
///
/// * v1 streams (no index) get a typed error suggesting re-recording with
///   `--compress`;
/// * an absent seed gets a typed error listing the seeds the index holds.
pub fn decode_trace_run(
    bytes: &[u8],
    seed: u64,
    jobs: usize,
) -> Result<Vec<HbtSection>, HomeError> {
    let layout = scan_layout(bytes)?.ok_or_else(|| {
        HomeError::trace_parse(
            "this HBT stream is v1 and carries no seek index; \
             re-record it with --compress to enable --run seeking",
        )
    })?;
    // A section = its head frame (entry.seed set) plus any continuation
    // frames that follow it in stream order.
    let mut wanted = Vec::new();
    let mut in_section = false;
    for frame in &layout.frames {
        if frame.entry.continuation {
            if in_section {
                wanted.push(frame.clone());
            }
        } else {
            in_section = frame.entry.seed == Some(seed);
            if in_section {
                wanted.push(frame.clone());
            }
        }
    }
    if wanted.is_empty() {
        let mut available: Vec<u64> = layout.frames.iter().filter_map(|f| f.entry.seed).collect();
        available.sort_unstable();
        available.dedup();
        let listing = if available.is_empty() {
            "the index holds no seeded sections".to_string()
        } else {
            format!(
                "available seeds: {}",
                available
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        return Err(HomeError::seed(
            seed,
            format!("no recorded section for this seed; {listing}"),
        ));
    }
    decode_frames_parallel(bytes, &wanted, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_stream::HbtWriter;
    use home_trace::{BarrierId, Event, EventKind, Rank, RegionId, SrcLoc, Tid};

    fn sample_event(seq: u64) -> Event {
        Event {
            seq,
            rank: Rank(1),
            tid: Tid(2),
            region: Some(RegionId(3)),
            time_ns: 400,
            loc: Some(SrcLoc::new("x.hmp", 9)),
            kind: EventKind::Barrier {
                barrier: BarrierId(0),
                epoch: 1,
            },
        }
    }

    fn big_v2_stream() -> Vec<u8> {
        let mut w = HbtWriter::new_compressed(Vec::new()).unwrap();
        for seed in [7u64, 8, 9] {
            w.begin_run(seed).unwrap();
            for seq in 0..40_000 {
                w.write_event(&sample_event(seq)).unwrap();
            }
        }
        w.finish().unwrap()
    }

    #[test]
    fn parallel_decode_matches_serial_for_every_jobs() {
        let bytes = big_v2_stream();
        let serial = decode_sections(&bytes).unwrap();
        for jobs in [1, 2, 4, 8] {
            let parallel = decode_trace(&bytes, jobs).unwrap();
            assert_eq!(parallel.len(), serial.len(), "jobs {jobs}");
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.seed, s.seed);
                assert_eq!(p.trace.events(), s.trace.events());
                assert_eq!(p.incidents, s.incidents);
            }
        }
    }

    #[test]
    fn run_seek_decodes_only_the_requested_section() {
        let bytes = big_v2_stream();
        let sections = decode_trace_run(&bytes, 8, 2).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].seed, Some(8));
        assert_eq!(sections[0].trace.events().len(), 40_000);
        let full = decode_sections(&bytes).unwrap();
        let full8 = full.iter().find(|s| s.seed == Some(8)).unwrap();
        assert_eq!(sections[0].trace.events(), full8.trace.events());
    }

    #[test]
    fn run_seek_miss_lists_available_seeds() {
        let bytes = big_v2_stream();
        let err = decode_trace_run(&bytes, 99, 1).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("99"), "{msg}");
        assert!(msg.contains("7, 8, 9"), "{msg}");
    }

    #[test]
    fn run_seek_on_v1_stream_suggests_compress() {
        let mut w = HbtWriter::new(Vec::new()).unwrap();
        w.begin_run(7).unwrap();
        w.write_event(&sample_event(0)).unwrap();
        let bytes = w.finish().unwrap();
        let err = decode_trace_run(&bytes, 7, 1).unwrap_err();
        assert!(format!("{err}").contains("--compress"), "{err}");
    }

    #[test]
    fn parallel_decode_of_corrupt_frame_is_typed_error() {
        let mut bytes = big_v2_stream();
        // Flip a byte deep inside a frame body (past the header region).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        for jobs in [1, 4] {
            let err = match decode_trace(&bytes, jobs) {
                Err(e) => e,
                Ok(_) => continue, // the flip may land in slack the codec tolerates
            };
            assert!(format!("{err}").contains("byte"), "jobs {jobs}: {err}");
        }
    }
}
