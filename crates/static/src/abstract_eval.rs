//! Flow-insensitive abstract evaluation of MPI-argument expressions.
//!
//! The static phase wants to know, for each MPI call inside a hybrid
//! region, whether its `tag`/`source` arguments are *thread-distinct*
//! (depend on the OpenMP thread id — the paper's recommended fix of using
//! the thread id as tag), *constant*, or *unknown*. This lets the checklist
//! carry precision hints that reduce dynamic work and false positives.

use home_ir::{BinOp, Expr, Program, StmtKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Abstract value of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbsVal {
    /// A compile-time constant.
    Const(i64),
    /// Depends on the OpenMP thread id (thread-distinct).
    TidDep,
    /// Depends on the MPI rank but not the thread id.
    RankDep,
    /// Anything else (or joined conflicting values).
    Unknown,
}

impl AbsVal {
    /// Lattice join.
    pub fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            match (self, other) {
                // Any combination involving tid-dependence stays
                // tid-dependent only if both sides are; otherwise Unknown —
                // except Const⊔Const (different) which is Unknown too.
                (AbsVal::TidDep, AbsVal::TidDep) => AbsVal::TidDep,
                _ => AbsVal::Unknown,
            }
        }
    }

    /// Combine through a binary operation: tid-dependence propagates.
    fn bin(self, other: AbsVal, op: BinOp, lv: Option<i64>, rv: Option<i64>) -> AbsVal {
        if let (Some(a), Some(b)) = (lv, rv) {
            if let Some(v) = const_bin(op, a, b) {
                return AbsVal::Const(v);
            }
        }
        if self == AbsVal::TidDep || other == AbsVal::TidDep {
            AbsVal::TidDep
        } else if self == AbsVal::RankDep || other == AbsVal::RankDep {
            AbsVal::RankDep
        } else {
            AbsVal::Unknown
        }
    }
}

fn const_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            a % b
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::And => ((a != 0) && (b != 0)) as i64,
        BinOp::Or => ((a != 0) || (b != 0)) as i64,
    })
}

/// A flow-insensitive abstract environment: every variable maps to the join
/// of all values ever assigned to it anywhere in the program. Sound (never
/// claims thread-distinctness that might not hold) and cheap.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AbsEnv {
    vars: HashMap<String, AbsVal>,
}

impl AbsEnv {
    /// Build the environment for a whole program.
    pub fn of_program(program: &Program) -> AbsEnv {
        let mut env = AbsEnv::default();
        // Two passes so later assignments influence earlier uses (loops).
        for _ in 0..2 {
            program.visit(&mut |s| match &s.kind {
                StmtKind::Decl { name, init, .. } => env.record(name, init),
                StmtKind::Assign { name, value } => env.record(name, value),
                StmtKind::For { var, .. } | StmtKind::OmpFor { var, .. } => {
                    // Loop variables range over iteration indices; inside an
                    // `omp for` the value is thread-dependent.
                    let v = if matches!(s.kind, StmtKind::OmpFor { .. }) {
                        AbsVal::TidDep
                    } else {
                        AbsVal::Unknown
                    };
                    env.set_join(var, v);
                }
                _ => {}
            });
        }
        env
    }

    fn record(&mut self, name: &str, value: &Expr) {
        let v = self.eval(value);
        self.set_join(name, v);
    }

    fn set_join(&mut self, name: &str, v: AbsVal) {
        let slot = self.vars.entry(name.to_string()).or_insert(v);
        *slot = slot.join(v);
    }

    /// Abstract value of `e` under this environment.
    pub fn eval(&self, e: &Expr) -> AbsVal {
        match e {
            Expr::Int(v) => AbsVal::Const(*v),
            Expr::Any => AbsVal::Const(-1),
            Expr::ThreadId | Expr::NumThreads => AbsVal::TidDep,
            Expr::Rank | Expr::Size => AbsVal::RankDep,
            Expr::Var(name) => self.vars.get(name).copied().unwrap_or(AbsVal::Unknown),
            Expr::Neg(inner) => match self.eval(inner) {
                AbsVal::Const(v) => AbsVal::Const(-v),
                other => other,
            },
            Expr::Not(inner) => match self.eval(inner) {
                AbsVal::Const(v) => AbsVal::Const((v == 0) as i64),
                other => other,
            },
            Expr::Bin(op, a, b) => {
                let av = self.eval(a);
                let bv = self.eval(b);
                let lv = match av {
                    AbsVal::Const(v) => Some(v),
                    _ => None,
                };
                let rv = match bv {
                    AbsVal::Const(v) => Some(v),
                    _ => None,
                };
                av.bin(bv, *op, lv, rv)
            }
        }
    }

    /// True if `e` is thread-distinct (contains the thread id).
    pub fn is_thread_distinct(&self, e: &Expr) -> bool {
        self.eval(e) == AbsVal::TidDep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_ir::parse;

    #[test]
    fn constants_fold() {
        let env = AbsEnv::default();
        let e = Expr::bin(BinOp::Add, Expr::int(2), Expr::int(3));
        assert_eq!(env.eval(&e), AbsVal::Const(5));
        assert_eq!(env.eval(&Expr::Any), AbsVal::Const(-1));
    }

    #[test]
    fn tid_propagates_through_arithmetic() {
        let env = AbsEnv::default();
        let e = Expr::bin(
            BinOp::Add,
            Expr::ThreadId,
            Expr::bin(BinOp::Mul, Expr::Rank, Expr::int(4)),
        );
        assert_eq!(env.eval(&e), AbsVal::TidDep);
        assert!(env.is_thread_distinct(&e));
    }

    #[test]
    fn rank_without_tid_is_rankdep() {
        let env = AbsEnv::default();
        let e = Expr::bin(BinOp::Add, Expr::Rank, Expr::int(1));
        assert_eq!(env.eval(&e), AbsVal::RankDep);
        assert!(!env.is_thread_distinct(&e));
    }

    #[test]
    fn variables_track_assignments() {
        let p = parse(
            "program v { shared int tag = 0; int t2 = tid; omp parallel { mpi_send(to: 1, tag: tag, count: 1); } }",
        )
        .unwrap();
        let env = AbsEnv::of_program(&p);
        assert_eq!(env.eval(&Expr::var("tag")), AbsVal::Const(0));
        assert_eq!(env.eval(&Expr::var("t2")), AbsVal::TidDep);
        assert_eq!(env.eval(&Expr::var("nosuch")), AbsVal::Unknown);
    }

    #[test]
    fn conflicting_assignments_join_to_unknown() {
        let p = parse("program j { int x = 1; x = 2; }").unwrap();
        let env = AbsEnv::of_program(&p);
        assert_eq!(env.eval(&Expr::var("x")), AbsVal::Unknown);
    }

    #[test]
    fn later_assignment_reaches_earlier_use_via_second_pass() {
        // `y = x;` before `x = tid;` — the two-pass join must still see the
        // tid-dependence of x when evaluating y's assignment.
        let p = parse("program l { int x = tid; int y = x; }").unwrap();
        let env = AbsEnv::of_program(&p);
        assert_eq!(env.eval(&Expr::var("y")), AbsVal::TidDep);
    }

    #[test]
    fn omp_for_loop_var_is_tid_dependent() {
        let p = parse("program f { omp parallel { omp for i in 0..8 { mpi_send(to: 1, tag: i, count: 1); } } }").unwrap();
        let env = AbsEnv::of_program(&p);
        assert_eq!(env.eval(&Expr::var("i")), AbsVal::TidDep);
    }

    #[test]
    fn join_laws() {
        use AbsVal::*;
        assert_eq!(Const(1).join(Const(1)), Const(1));
        assert_eq!(Const(1).join(Const(2)), Unknown);
        assert_eq!(TidDep.join(TidDep), TidDep);
        assert_eq!(TidDep.join(Const(1)), Unknown);
        assert_eq!(RankDep.join(Unknown), Unknown);
    }
}
