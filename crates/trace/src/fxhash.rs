//! A fast, deterministic, non-cryptographic hasher for the detector's
//! internal maps.
//!
//! The detection hot path performs several hash-map operations per event
//! (segment state, per-location history, lockset disjointness memo). The
//! standard library's default SipHash is DoS-resistant but costs more than
//! the FastTrack epoch comparison it guards, so the hot maps use this
//! multiply-rotate hash (the well-known "Fx" scheme) instead. The keys are
//! internal dense ids and enum tags derived from the trace — never
//! attacker-chosen strings — so hash-flooding resistance buys nothing
//! here. Determinism across runs is a feature: detector behavior never
//! depends on a per-process random hash seed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher: each input word is rotated into the state and
/// multiplied by a large odd constant. Not cryptographic, not
/// flood-resistant — strictly for internal keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal_and_maps_work() {
        let mut m: FxHashMap<(Option<u64>, u32), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((Some(i), i as u32), i * 3);
        }
        m.insert((None, 7), 99);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(Some(i), i as u32)), Some(&(i * 3)));
        }
        assert_eq!(m.get(&(None, 7)), Some(&99));
        assert_eq!(m.len(), 1001);
    }

    #[test]
    fn hash_is_deterministic() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"abcdefghij"), hash(b"abcdefghij"));
        assert_ne!(hash(b"abcdefghij"), hash(b"abcdefghik"));
        assert_ne!(hash(b"abcdefghij"), hash(b"abcdefgh"));
    }

    #[test]
    fn sets_deduplicate() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.insert(2));
        assert_eq!(s.len(), 2);
    }
}
