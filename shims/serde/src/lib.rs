//! Offline shim for the `serde` API subset used in this repository.
//!
//! The real serde's visitor-based data model is far larger than what this
//! workspace needs (plain `#[derive(Serialize, Deserialize)]` on concrete
//! types plus `serde_json` string round-trips), so this shim collapses the
//! model to a single JSON-like [`Value`] tree:
//!
//! * [`Serialize`] renders a value into a [`Value`];
//! * [`Deserialize`] rebuilds a value from a [`&Value`][Value];
//! * the `serde_derive` shim generates both impls for structs and enums
//!   (externally tagged, matching serde's default representation);
//! * the `serde_json` shim prints/parses `Value` as JSON text.
//!
//! Unsupported serde features (attributes like `#[serde(rename)]`, generic
//! types, non-string map keys) fail at compile time, not silently.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the whole (de)serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every in-repo integer except huge `u64`s).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered (printed as given).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) => u64::try_from(n).ok(),
            Value::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(n) => Some(n),
            _ => None,
        }
    }

    /// Boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Short tag for error messages.
    fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any message.
    pub fn message(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }

    /// "expected X while decoding Y, found Z" convenience constructor.
    pub fn expected(what: &str, context: &str, found: &Value) -> Error {
        Error::message(format!(
            "expected {what} while decoding {context}, found {}",
            found.kind_name()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Decode a value tree into `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Look up a struct field while decoding; `Option` fields tolerate absence.
pub fn field<T: Deserialize>(
    object: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match object.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v)
            .map_err(|e| Error::message(format!("in field `{context}.{name}`: {e}"))),
        None => T::deserialize(&Value::Null).map_err(|_| {
            Error::message(format!("missing field `{name}` while decoding {context}"))
        }),
    }
}

/// Like [`field`], but an absent key produces `T::default()` — the shim's
/// implementation of `#[serde(default)]`.
pub fn field_default<T: Deserialize + Default>(
    object: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, Error> {
    match object.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v)
            .map_err(|e| Error::message(format!("in field `{context}.{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let out = match *value {
                    Value::Int(n) => <$t>::try_from(n).ok(),
                    Value::UInt(n) => <$t>::try_from(n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| Error::expected("integer", stringify!($t), value))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f64", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", "bool", value))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("single-char string", "char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char", value)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "Vec", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", "tuple", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::message(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", "map", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", "map", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", "set", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", "()", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let v: Vec<u8> = Vec::deserialize(&vec![1u8, 2].serialize()).unwrap();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize(&Value::Int(4)).unwrap(), Some(4));
    }

    #[test]
    fn big_u64_uses_uint() {
        let big = u64::MAX;
        assert_eq!(big.serialize(), Value::UInt(u64::MAX));
        assert_eq!(u64::deserialize(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
        assert!(i64::deserialize(&Value::UInt(u64::MAX)).is_err());
    }

    #[test]
    fn type_mismatch_is_reported() {
        let err = u32::deserialize(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected integer"));
    }

    #[test]
    fn missing_optional_field_is_none() {
        let obj = vec![("a".to_string(), Value::Int(1))];
        let missing: Option<u32> = field(&obj, "b", "T").unwrap();
        assert_eq!(missing, None);
        let present: u32 = field(&obj, "a", "T").unwrap();
        assert_eq!(present, 1);
        assert!(field::<u32>(&obj, "b", "T").is_err());
    }
}
