//! The `home serve` daemon: a Unix-domain-socket collector accepting many
//! concurrent HBT trace streams.
//!
//! ## Protocol
//!
//! Each connection is one request. The first byte decides its shape:
//!
//! * `0x89` (the HBT magic) — the connection is an HBT stream. The client
//!   writes the whole trace, half-closes its write side, and reads back a
//!   single JSON line with the per-submission verdict. One
//!   [`SectionSession`] runs per recorded section, fed record-at-a-time.
//! * anything else — an ASCII command line (`STATUS`, `PING`,
//!   `SHUTDOWN`), answered with a single JSON line.
//!
//! ## Trust model
//!
//! Everything after `accept()` is attacker-controlled bytes. The HBT
//! readers bound every length-prefixed allocation, a read timeout bounds
//! how long a stalled client can hold a session slot, and the session gate
//! bounds how many ingest sessions hold detector state at once — a
//! hostile client can cost one slot and one timeout, never memory or the
//! daemon's life. Malformed streams produce a typed JSON error reply; the
//! daemon never panics on input.

use crate::analyze::{
    combine_verdicts, violation_identity, SectionSession, SectionVerdict, ViolationIdentity,
};
use crate::protocol::{error_reply, status_reply, submit_reply};
use home_core::{EmitOrder, Violation};
use home_stream::{decode_frame_into, scan_layout, FrameBatch, FrameLoc, FrameScratch, HBT_MAGIC};
use home_trace::{FxHasher, HomeError};
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// Maximum concurrent ingest sessions; further connections are
    /// accepted but block on the gate until a slot frees (bounded-memory
    /// backpressure).
    pub max_sessions: usize,
    /// Per-read timeout on ingest connections: a stalled client forfeits
    /// its slot with a typed error instead of holding it forever.
    pub read_timeout: Option<Duration>,
    /// Overall wall-clock deadline for one ingest session. The per-read
    /// timeout alone is not enough: a client trickling one byte per
    /// `read_timeout - ε` would hold a gate slot forever. Past the
    /// deadline the next read fails with a typed error and the slot is
    /// released.
    pub session_deadline: Option<Duration>,
}

impl ServeConfig {
    /// Defaults: 64 concurrent sessions, 30-second read timeout,
    /// 300-second session deadline.
    pub fn new(socket: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            max_sessions: 64,
            read_timeout: Some(Duration::from_secs(30)),
            session_deadline: Some(Duration::from_secs(300)),
        }
    }
}

/// One violation aggregated across every run the daemon has ingested.
#[derive(Debug, Clone)]
pub struct AggViolation {
    /// The violation (first instance seen).
    pub violation: Violation,
    /// Number of runs (sections) it appeared in.
    pub runs: u64,
    /// Minimum canonical emission position across those runs.
    pub order: EmitOrder,
}

/// One seeded section the daemon has already analyzed: its byte-level
/// fingerprint and the verdict it produced. A later v2 submission whose
/// index carries the same seed with the same fingerprint replays this
/// verdict without decompressing the frames; the same seed with a
/// *different* fingerprint rejects the submission.
#[derive(Debug, Clone)]
struct KnownRun {
    fingerprint: u64,
    verdict: SectionVerdict,
}

/// Cross-run aggregate over everything the daemon has ingested.
#[derive(Debug, Default)]
pub struct Fleet {
    /// Connections that delivered a well-formed trace.
    pub submissions: u64,
    /// Connections rejected with a typed trace error.
    pub rejected: u64,
    /// Recorded sections (runs) ingested.
    pub runs: u64,
    /// Events ingested.
    pub events: u64,
    /// Monitored races found.
    pub races: u64,
    /// Races the rules could not classify.
    pub unclassified: u64,
    /// Sections whose verdict was replayed from the cross-run cache by
    /// the v2 index fast path instead of re-analyzed (still counted in
    /// `runs`/`events` — only the decompress + analysis was skipped).
    pub skipped_known_runs: u64,
    violations: BTreeMap<ViolationIdentity, AggViolation>,
    known: BTreeMap<u64, KnownRun>,
}

impl Fleet {
    fn absorb(&mut self, outcome: &crate::analyze::TraceOutcome) {
        self.submissions += 1;
        self.runs += outcome.sections.len() as u64;
        self.events += outcome.events;
        self.races += outcome.races as u64;
        self.unclassified += outcome.unclassified as u64;
        for verdict in &outcome.sections {
            for kv in &verdict.violations {
                let key = violation_identity(&kv.violation);
                match self.violations.get_mut(&key) {
                    Some(agg) => {
                        agg.runs += 1;
                        if kv.order < agg.order {
                            agg.order = kv.order;
                        }
                    }
                    None => {
                        self.violations.insert(
                            key,
                            AggViolation {
                                violation: kv.violation.clone(),
                                runs: 1,
                                order: kv.order,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Aggregated violations sorted by canonical emission position (ties
    /// broken by identity, which the backing map already orders).
    pub fn violations(&self) -> Vec<AggViolation> {
        let mut all: Vec<AggViolation> = self.violations.values().cloned().collect();
        all.sort_by(|a, b| {
            a.order.cmp(&b.order).then_with(|| {
                violation_identity(&a.violation).cmp(&violation_identity(&b.violation))
            })
        });
        all
    }
}

/// Counting gate bounding concurrent ingest sessions.
#[derive(Debug)]
struct Gate {
    max: usize,
    active: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn acquire(&self) {
        let mut active = self.lock();
        while *active >= self.max {
            active = self
                .freed
                .wait(active)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *active += 1;
    }

    fn release(&self) {
        *self.lock() -= 1;
        self.freed.notify_one();
    }

    fn active(&self) -> usize {
        *self.lock()
    }
}

#[derive(Debug)]
struct State {
    socket: PathBuf,
    read_timeout: Option<Duration>,
    session_deadline: Option<Duration>,
    shutdown: AtomicBool,
    gate: Gate,
    fleet: Mutex<Fleet>,
}

impl State {
    fn fleet(&self) -> std::sync::MutexGuard<'_, Fleet> {
        self.fleet
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The listening daemon. [`Server::bind`] claims the socket;
/// [`Server::run`] accepts until a `SHUTDOWN` command arrives.
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    state: Arc<State>,
}

impl Server {
    /// Bind the socket. A leftover socket file from a dead daemon (nothing
    /// accepts on it) is removed and rebound; a live daemon on the same
    /// path is an `AddrInUse` error.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = match UnixListener::bind(&config.socket) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                if UnixStream::connect(&config.socket).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a daemon is already serving on {}", config.socket.display()),
                    ));
                }
                std::fs::remove_file(&config.socket)?;
                UnixListener::bind(&config.socket)?
            }
            Err(e) => return Err(e),
        };
        Ok(Server {
            listener,
            state: Arc::new(State {
                socket: config.socket,
                read_timeout: config.read_timeout,
                session_deadline: config.session_deadline,
                shutdown: AtomicBool::new(false),
                gate: Gate {
                    max: config.max_sessions.max(1),
                    active: Mutex::new(0),
                    freed: Condvar::new(),
                },
                fleet: Mutex::new(Fleet::default()),
            }),
        })
    }

    /// The socket path this server listens on.
    pub fn socket_path(&self) -> &Path {
        &self.state.socket
    }

    /// Accept and serve connections until a `SHUTDOWN` command arrives.
    /// Outstanding ingest sessions are drained before returning; the
    /// socket file is removed on the way out.
    pub fn run(self) -> io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            handlers.retain(|h| !h.is_finished());
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || handle(stream, &state)));
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.state.socket);
        Ok(())
    }
}

/// Serve one connection. Reply write failures are ignored (the client is
/// gone); the fleet aggregate is updated regardless.
fn handle(mut stream: UnixStream, state: &State) {
    let _ = stream.set_read_timeout(state.read_timeout);
    let mut first = [0u8; 1];
    let reply = match stream.read_exact(&mut first) {
        Err(_) => return,
        Ok(()) if first[0] == HBT_MAGIC[0] => {
            // HBT ingest: hold a session slot for the stream's lifetime.
            state.gate.acquire();
            let result = ingest(first[0], &mut stream, state);
            state.gate.release();
            match result {
                Ok(reply) => reply,
                Err(e) => {
                    state.fleet().rejected += 1;
                    error_reply(&e.to_string())
                }
            }
        }
        Ok(()) => command(first[0], &mut stream, state),
    };
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// Re-arms the socket read timeout before every read so an overall
/// session deadline holds on top of the per-read timeout: each read waits
/// at most `min(read_timeout, remaining-until-deadline)`, and once the
/// deadline passes the next read fails with `TimedOut` instead of letting
/// a trickling client start another full timeout window.
struct DeadlineReader<'a> {
    stream: &'a UnixStream,
    per_read: Option<Duration>,
    deadline: Option<Instant>,
}

impl<'a> DeadlineReader<'a> {
    fn new(stream: &'a UnixStream, per_read: Option<Duration>, session: Option<Duration>) -> Self {
        DeadlineReader {
            stream,
            per_read,
            deadline: session.map(|d| Instant::now() + d),
        }
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = match self.deadline {
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "session deadline exceeded",
                    ));
                }
                match self.per_read {
                    Some(per) => Some(per.min(remaining)),
                    None => Some(remaining),
                }
            }
            None => self.per_read,
        };
        let _ = self.stream.set_read_timeout(timeout);
        match self.stream.read(buf) {
            // A blocking-timeout failure on the deadline-shortened window is
            // the deadline itself expiring; name it so the client's error
            // says why the session was cut, not just that a read timed out.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) && self.deadline.is_some_and(|d| Instant::now() >= d) =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "session deadline exceeded",
                ))
            }
            other => other,
        }
    }
}

/// Cap on how much of one submission the daemon buffers for the v2 index
/// fast path. Larger submissions fall back to the record-at-a-time
/// streaming loop (bounded memory, no fast path).
const INGEST_BUFFER_CAP: usize = 512 << 20;

/// Ingest one HBT stream under the session deadline and fold the verdict
/// into the fleet aggregate.
///
/// The stream is buffered (up to [`INGEST_BUFFER_CAP`]) so a v2
/// submission can take the index fast path: [`scan_layout`] validates
/// the seek index against the frame headers actually present, and only
/// then are its `(seed, fingerprint)` pairs trusted to skip
/// decompressing sections the fleet has already analyzed. v1 streams,
/// plain-record v2 streams, and oversized submissions go through the
/// shared [`analyze_stream`](crate::analyze::analyze_stream) loop
/// exactly as before.
fn ingest(first: u8, stream: &mut UnixStream, state: &State) -> Result<String, HomeError> {
    let mut reader = DeadlineReader::new(stream, state.read_timeout, state.session_deadline);
    let mut bytes = vec![first];
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if bytes.len() > INGEST_BUFFER_CAP {
            // Oversized: hand the buffered prefix plus the still-unread
            // tail to the streaming loop without buffering further.
            let prefix = io::Cursor::new(bytes);
            let outcome = crate::analyze::analyze_stream(prefix.chain(reader))?;
            let mut fleet = state.fleet();
            fleet.absorb(&outcome);
            return Ok(submit_reply(&outcome));
        }
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(HomeError::trace_parse(format!(
                    "I/O error reading HBT stream at byte {}: {e}",
                    bytes.len()
                )))
            }
        }
    }
    ingest_buffered(&bytes, state)
}

/// One recorded section of a v2 stream, as its head frame plus any
/// continuation frames.
struct SectionFrames<'a> {
    seed: Option<u64>,
    frames: Vec<&'a FrameLoc>,
}

/// Fingerprint a section's identity: every frame's header fields plus its
/// stored (still-compressed) body bytes. Deliberately excludes the byte
/// offset, so the same section embedded at a different stream position
/// fingerprints identically.
fn section_fingerprint(bytes: &[u8], section: &SectionFrames<'_>) -> Result<u64, HomeError> {
    let mut h = FxHasher::default();
    h.write_usize(section.frames.len());
    for f in &section.frames {
        h.write_u8(u8::from(f.entry.continuation));
        h.write_u8(u8::from(f.compressed()));
        match f.entry.seed {
            Some(s) => {
                h.write_u8(1);
                h.write_u64(s);
            }
            None => h.write_u8(0),
        }
        h.write_u64(f.entry.events);
        h.write_u64(f.entry.incidents);
        h.write_u64(f.entry.raw_len);
        let stored = f.stored(bytes)?;
        h.write_usize(stored.len());
        h.write(stored);
    }
    Ok(h.finish())
}

/// Decode and analyze one v2 section frame-batch-at-a-time, reusing the
/// caller's scratch buffers across frames. Returns `None` for a section
/// that holds no records and no seed (the streaming loop would never
/// open a session for it).
fn analyze_v2_section(
    bytes: &[u8],
    section: &SectionFrames<'_>,
    scratch: &mut FrameScratch,
    batch: &mut FrameBatch,
) -> Result<Option<SectionVerdict>, HomeError> {
    let empty = section
        .frames
        .iter()
        .all(|f| f.entry.events == 0 && f.entry.incidents == 0);
    if section.seed.is_none() && empty {
        return Ok(None);
    }
    let mut session = SectionSession::open(section.seed);
    for frame in &section.frames {
        decode_frame_into(bytes, frame, scratch, batch)?;
        session.feed_batch(&batch.events);
        for i in &batch.incidents {
            session.push_incident(i);
        }
    }
    session.finish().map(Some)
}

/// The verdict of a v2 submission's section: replayed from the cross-run
/// cache, or freshly analyzed (and then offered to the cache).
enum SectionOutcome {
    Cached(SectionVerdict),
    Fresh {
        fingerprint: u64,
        verdict: SectionVerdict,
    },
}

/// Analyze a fully buffered submission, taking the v2 index fast path
/// when the stream carries a validated seek index.
fn ingest_buffered(bytes: &[u8], state: &State) -> Result<String, HomeError> {
    let layout = match scan_layout(bytes)? {
        Some(layout) => layout,
        None => {
            // v1 or plain-record v2: the shared streaming loop, with the
            // exact error surface it has always had.
            let outcome = crate::analyze::analyze_stream(io::Cursor::new(bytes))?;
            let mut fleet = state.fleet();
            fleet.absorb(&outcome);
            return Ok(submit_reply(&outcome));
        }
    };
    // Group frames into sections; scan_layout already rejected a
    // continuation frame without an open section.
    let mut sections: Vec<SectionFrames<'_>> = Vec::new();
    for frame in &layout.frames {
        match sections.last_mut() {
            Some(last) if frame.entry.continuation => last.frames.push(frame),
            _ => sections.push(SectionFrames {
                seed: frame.entry.seed,
                frames: vec![frame],
            }),
        }
    }
    // Decide per section under the fleet lock: replay a cached verdict,
    // or analyze fresh. A known seed with a different fingerprint
    // rejects the whole submission — an index entry claiming an
    // already-seen seed must carry the already-seen records.
    let mut plan: Vec<(u64, Option<SectionVerdict>)> = Vec::with_capacity(sections.len());
    {
        let fleet = state.fleet();
        for section in &sections {
            let fingerprint = section_fingerprint(bytes, section)?;
            let cached = match section.seed.and_then(|s| fleet.known.get(&s)) {
                Some(known) if known.fingerprint == fingerprint => Some(known.verdict.clone()),
                Some(_) => return Err(conflicting_seed_error(section.seed)),
                None => None,
            };
            plan.push((fingerprint, cached));
        }
    }
    // Analyze the sections the cache did not cover — outside the fleet
    // lock, reusing one decompression buffer and one event batch.
    let mut outcomes: Vec<SectionOutcome> = Vec::with_capacity(sections.len());
    let mut scratch = FrameScratch::new();
    let mut batch = FrameBatch::new();
    for (section, (fingerprint, cached)) in sections.iter().zip(plan) {
        match cached {
            Some(verdict) => outcomes.push(SectionOutcome::Cached(verdict)),
            None => {
                if let Some(verdict) = analyze_v2_section(bytes, section, &mut scratch, &mut batch)?
                {
                    outcomes.push(SectionOutcome::Fresh {
                        fingerprint,
                        verdict,
                    });
                }
            }
        }
    }
    // Absorb atomically: re-check every fresh seeded section against the
    // cache (a concurrent submission may have raced us to the seed), and
    // only then fold the whole outcome in. On a conflict nothing is
    // absorbed.
    let mut fleet = state.fleet();
    for outcome in &outcomes {
        if let SectionOutcome::Fresh {
            fingerprint,
            verdict,
        } = outcome
        {
            if let Some(known) = verdict.seed.and_then(|s| fleet.known.get(&s)) {
                if known.fingerprint != *fingerprint {
                    return Err(conflicting_seed_error(verdict.seed));
                }
            }
        }
    }
    let mut skipped = 0u64;
    let mut verdicts = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            SectionOutcome::Cached(verdict) => {
                skipped += 1;
                verdicts.push(verdict);
            }
            SectionOutcome::Fresh {
                fingerprint,
                verdict,
            } => {
                if let Some(seed) = verdict.seed {
                    fleet.known.entry(seed).or_insert_with(|| KnownRun {
                        fingerprint,
                        verdict: verdict.clone(),
                    });
                }
                verdicts.push(verdict);
            }
        }
    }
    let outcome = combine_verdicts(verdicts);
    fleet.absorb(&outcome);
    fleet.skipped_known_runs += skipped;
    drop(fleet);
    Ok(submit_reply(&outcome))
}

fn conflicting_seed_error(seed: Option<u64>) -> HomeError {
    let seed = seed.unwrap_or(0);
    HomeError::seed(
        seed,
        "this HBT submission's index claims a seed the collector has already \
         aggregated, but its records differ from the known run; rejecting the \
         submission (re-record under a fresh seed to submit a different run)",
    )
}

/// Serve one ASCII command line (the first byte was already consumed).
fn command(first: u8, stream: &mut UnixStream, state: &State) -> String {
    let mut line = vec![first];
    let mut byte = [0u8; 1];
    while line.len() < 256 && !line.ends_with(b"\n") {
        match stream.read_exact(&mut byte) {
            Ok(()) => line.push(byte[0]),
            Err(_) => break,
        }
    }
    let cmd = String::from_utf8_lossy(&line).trim().to_ascii_uppercase();
    match cmd.as_str() {
        "PING" => r#"{"ok":true}"#.to_string(),
        "STATUS" => {
            let fleet = state.fleet();
            status_reply(&fleet, state.gate.active())
        }
        "SHUTDOWN" => {
            state.shutdown.store(true, Ordering::Release);
            // Wake the blocking accept with a throwaway connection so the
            // loop observes the flag.
            let _ = UnixStream::connect(&state.socket);
            r#"{"ok":true,"stopping":true}"#.to_string()
        }
        other => error_reply(&format!(
            "unknown command `{other}` (expected PING, STATUS, or SHUTDOWN)"
        )),
    }
}
