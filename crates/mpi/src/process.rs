//! The per-rank MPI call interface.

use crate::collective::{Contribution, ReduceOp, Slot};
use crate::error::{MpiError, MpiResult};
use crate::msg::{Message, Payload, SrcSpec, Status, TagSpec};
use crate::reqs::ReqState;
use crate::world::World;
use home_sched::{current_vtid, BlockReason, Runtime, SimTime, Vtid};
use home_trace::{CommId, MpiCallKind, Rank, ReqId, ThreadLevel, COMM_WORLD};
use std::sync::Arc;

/// Handle through which one MPI process issues calls.
///
/// A `Process` may be cloned and shared among the OpenMP threads of its
/// rank — which is precisely how thread-safety violations arise; the
/// simulator is deliberately permissive and lets the HOME analyses observe
/// the consequences.
#[derive(Clone)]
pub struct Process {
    world: World,
    rank: Rank,
}

fn log2_ceil(n: usize) -> u64 {
    (usize::BITS - (n.max(1) - 1).leading_zeros()) as u64
}

impl Process {
    pub(crate) fn new(world: World, rank: Rank) -> Process {
        Process { world, rank }
    }

    /// This process's world rank.
    pub fn rank(&self) -> u32 {
        self.rank.0
    }

    /// World size (`MPI_Comm_size` on `MPI_COMM_WORLD`).
    pub fn world_size(&self) -> usize {
        self.world.size()
    }

    /// Size of `comm`.
    pub fn comm_size(&self, comm: CommId) -> MpiResult<usize> {
        self.world.lock().comms.size(comm)
    }

    /// This process's rank within `comm`, if it is a member.
    pub fn comm_rank(&self, comm: CommId) -> MpiResult<Option<u32>> {
        self.world.lock().comms.comm_rank(comm, self.rank)
    }

    /// The world this process belongs to.
    pub fn world(&self) -> &World {
        &self.world
    }

    fn rt(&self) -> &Runtime {
        self.world.runtime()
    }

    fn me_vtid(&self) -> Vtid {
        current_vtid().expect("MPI calls must run on a virtual thread")
    }

    fn pre_op(&self) -> MpiResult<ThreadLevel> {
        self.rt().yield_now()?;
        self.world.check_active(self.rank)
    }

    // ---- lifecycle ---------------------------------------------------------

    /// `MPI_Init`: single-threaded initialization (provides
    /// [`ThreadLevel::Single`]).
    pub fn init(&self) -> MpiResult<ThreadLevel> {
        self.init_with(ThreadLevel::Single)
    }

    /// `MPI_Init_thread`: request `required`, receive
    /// `min(required, max_thread_level)`.
    pub fn init_thread(&self, required: ThreadLevel) -> MpiResult<ThreadLevel> {
        let cap = self.world.config().max_thread_level;
        self.init_with(required.min(cap))
    }

    fn init_with(&self, provided: ThreadLevel) -> MpiResult<ThreadLevel> {
        self.rt().yield_now()?;
        let vtid = self.me_vtid();
        let mut st = self.world.lock();
        let p = &mut st.procs[self.rank.index()];
        if p.level.is_some() {
            return Err(MpiError::AlreadyInitialized);
        }
        p.level = Some(provided);
        p.main_vtid = Some(vtid);
        Ok(provided)
    }

    /// The thread level this process was initialized with.
    pub fn thread_level(&self) -> Option<ThreadLevel> {
        self.world.lock().procs[self.rank.index()].level
    }

    /// `MPI_Is_thread_main`: is the calling virtual thread the one that
    /// initialized MPI on this process?
    pub fn is_thread_main(&self) -> bool {
        let vtid = current_vtid();
        self.world.lock().procs[self.rank.index()].main_vtid == vtid && vtid.is_some()
    }

    /// True once `MPI_Init`/`MPI_Init_thread` has run.
    pub fn is_initialized(&self) -> bool {
        self.world.lock().procs[self.rank.index()].level.is_some()
    }

    /// True once `MPI_Finalize` completed.
    pub fn is_finalized(&self) -> bool {
        self.world.lock().procs[self.rank.index()].finalized
    }

    /// `MPI_Finalize`: synchronizes all processes (modelled as a world-wide
    /// rendezvous), then marks this process finalized.
    pub fn finalize(&self) -> MpiResult<()> {
        self.collective(
            COMM_WORLD,
            MpiCallKind::Finalize,
            None,
            None,
            Arc::new(Vec::new()),
            None,
        )?;
        self.world.lock().procs[self.rank.index()].finalized = true;
        Ok(())
    }

    // ---- point-to-point ----------------------------------------------------

    /// `MPI_Send`: eager buffered send (returns as soon as the message is
    /// in flight, as small-message MPI implementations do).
    pub fn send(&self, dest: u32, tag: i32, comm: CommId, data: Payload) -> MpiResult<()> {
        self.pre_op()?;
        let rt = self.rt();
        let cfg = self.world.config().clone();
        rt.advance(cfg.latency.send_overhead);
        let available_at = rt.clock() + cfg.latency.transfer_time(data.len());
        let (woken, _) = self.deliver_message(dest, tag, comm, data, available_at, None)?;
        for w in woken {
            rt.unblock(w);
        }
        Ok(())
    }

    /// `MPI_Ssend`: synchronous (rendezvous) send — returns only once a
    /// matching receive has been posted and consumed the message. The
    /// classic head-to-head `Ssend`/`Ssend` pattern therefore deadlocks,
    /// which the scheduler detects and reports.
    pub fn ssend(&self, dest: u32, tag: i32, comm: CommId, data: Payload) -> MpiResult<()> {
        self.pre_op()?;
        let rt = self.rt();
        let cfg = self.world.config().clone();
        rt.advance(cfg.latency.send_overhead);
        let available_at = rt.clock() + cfg.latency.transfer_time(data.len());
        let me = self.me_vtid();
        let (woken, uid) = self.deliver_message(dest, tag, comm, data, available_at, Some(me))?;
        for w in woken {
            rt.unblock(w);
        }
        // Wait until a receive matches the message (the sweep removes our
        // uid from the sync-waiter table and wakes us).
        loop {
            {
                let st = self.world.lock();
                if !st.sync_waiters.contains_key(&uid) {
                    return Ok(());
                }
            }
            rt.block_current(BlockReason::Message(format!(
                "MPI_Ssend(to={dest}, tag={tag}, {comm}) awaiting matching receive"
            )))?;
        }
    }

    /// Shared delivery path for `send`/`ssend`. Returns threads to wake and
    /// the message uid.
    fn deliver_message(
        &self,
        dest: u32,
        tag: i32,
        comm: CommId,
        data: Payload,
        available_at: SimTime,
        sync_waiter: Option<Vtid>,
    ) -> MpiResult<(Vec<Vtid>, u64)> {
        let mut st = self.world.lock();
        let dst_world = st.comms.world_rank(comm, dest)?;
        let my_crank = st
            .comms
            .comm_rank(comm, self.rank)?
            .ok_or(MpiError::InvalidComm)?;
        let fifo_seq = st.fifo_next(self.rank, dst_world, tag, comm);
        let uid = st.msg_uid();
        if let Some(w) = sync_waiter {
            st.sync_waiters.insert(uid, w);
        }
        let woken = st.deliver(
            dst_world,
            Message {
                src: my_crank,
                src_world: self.rank,
                tag,
                comm,
                data,
                available_at_ns: available_at.as_nanos(),
                fifo_seq,
                uid,
            },
        );
        Ok((woken, uid))
    }

    /// `MPI_Isend`: same transfer as [`Process::send`] plus a request handle
    /// whose completion stands for send-buffer reuse.
    pub fn isend(&self, dest: u32, tag: i32, comm: CommId, data: Payload) -> MpiResult<ReqId> {
        let complete_at = self.rt().clock() + self.world.config().latency.send_overhead;
        self.send(dest, tag, comm, data)?;
        let mut st = self.world.lock();
        Ok(st.reqs.alloc(
            self.rank,
            ReqState::SendInFlight {
                complete_at_ns: complete_at.as_nanos(),
            },
        ))
    }

    /// `MPI_Irecv`: post a nonblocking receive.
    pub fn irecv(&self, src: SrcSpec, tag: TagSpec, comm: CommId) -> MpiResult<ReqId> {
        self.pre_op()?;
        let woken;
        let req;
        {
            let mut st = self.world.lock();
            let size = st.comms.size(comm)?;
            if st.comms.comm_rank(comm, self.rank)?.is_none() {
                return Err(MpiError::InvalidComm);
            }
            if let SrcSpec::Rank(r) = src {
                if r as usize >= size {
                    return Err(MpiError::InvalidRank {
                        rank: r as i32,
                        comm_size: size,
                    });
                }
            }
            let post_seq = st.reqs.next_post_seq();
            req = st.reqs.alloc(
                self.rank,
                ReqState::PendingRecv {
                    dst: self.rank,
                    src,
                    tag,
                    comm,
                    post_seq,
                },
            );
            woken = st.sweep(self.rank);
        }
        for w in woken {
            self.rt().unblock(w);
        }
        Ok(req)
    }

    /// `MPI_Wait`: block until `req` completes. For receive requests the
    /// payload is returned alongside the status.
    pub fn wait(&self, req: ReqId) -> MpiResult<(Option<Payload>, Status)> {
        self.pre_op()?;
        let rt = self.rt();
        let recv_overhead = self.world.config().latency.recv_overhead;
        loop {
            let mut st = self.world.lock();
            let r = st.reqs.get_mut(req)?;
            if r.owner != self.rank {
                // Requests are process-local objects.
                return Err(MpiError::RequestUnknown);
            }
            match &r.state {
                ReqState::ReadyRecv(msg) => {
                    let msg = msg.clone();
                    r.state = ReqState::Consumed;
                    drop(st);
                    rt.merge_clock(SimTime::from_nanos(msg.available_at_ns));
                    rt.advance(recv_overhead);
                    return Ok((Some(Arc::clone(&msg.data)), Status::of(&msg)));
                }
                ReqState::SendInFlight { complete_at_ns } => {
                    let t = *complete_at_ns;
                    r.state = ReqState::Consumed;
                    drop(st);
                    rt.merge_clock(SimTime::from_nanos(t));
                    return Ok((None, Status::empty()));
                }
                ReqState::Consumed => return Err(MpiError::RequestConsumed),
                ReqState::PendingRecv { src, tag, comm, .. } => {
                    let desc = format!(
                        "MPI_Wait({req}: recv src={}, tag={}, {comm})",
                        src.to_i32(),
                        tag.to_i32()
                    );
                    let me = self.me_vtid();
                    r.waiters.push(me);
                    drop(st);
                    rt.block_current(BlockReason::Message(desc))?;
                }
            }
        }
    }

    /// `MPI_Test`: nonblocking completion check.
    pub fn test(&self, req: ReqId) -> MpiResult<Option<(Option<Payload>, Status)>> {
        self.pre_op()?;
        let rt = self.rt();
        let recv_overhead = self.world.config().latency.recv_overhead;
        let mut st = self.world.lock();
        let r = st.reqs.get_mut(req)?;
        match &r.state {
            ReqState::ReadyRecv(msg) => {
                let msg = msg.clone();
                r.state = ReqState::Consumed;
                drop(st);
                rt.merge_clock(SimTime::from_nanos(msg.available_at_ns));
                rt.advance(recv_overhead);
                Ok(Some((Some(Arc::clone(&msg.data)), Status::of(&msg))))
            }
            ReqState::SendInFlight { complete_at_ns } => {
                let t = *complete_at_ns;
                r.state = ReqState::Consumed;
                drop(st);
                rt.merge_clock(SimTime::from_nanos(t));
                Ok(Some((None, Status::empty())))
            }
            ReqState::Consumed => Err(MpiError::RequestConsumed),
            ReqState::PendingRecv { .. } => Ok(None),
        }
    }

    /// `MPI_Waitall`: wait for every request, in order.
    pub fn waitall(&self, reqs: &[ReqId]) -> MpiResult<Vec<Status>> {
        let mut out = Vec::with_capacity(reqs.len());
        for &r in reqs {
            out.push(self.wait(r)?.1);
        }
        Ok(out)
    }

    /// `MPI_Recv`: blocking receive (equivalent to `irecv` + `wait`, which
    /// preserves posting-order matching fairness).
    pub fn recv(&self, src: SrcSpec, tag: TagSpec, comm: CommId) -> MpiResult<(Payload, Status)> {
        let req = self.irecv(src, tag, comm)?;
        let (data, status) = self.wait(req)?;
        Ok((data.expect("receive request must carry a payload"), status))
    }

    /// `MPI_Sendrecv`: combined send and receive without deadlock.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        dest: u32,
        send_tag: i32,
        data: Payload,
        src: SrcSpec,
        recv_tag: TagSpec,
        comm: CommId,
    ) -> MpiResult<(Payload, Status)> {
        let rreq = self.irecv(src, recv_tag, comm)?;
        self.send(dest, send_tag, comm, data)?;
        let (payload, status) = self.wait(rreq)?;
        Ok((
            payload.expect("receive request must carry a payload"),
            status,
        ))
    }

    /// `MPI_Probe`: block until a matching message is visible, without
    /// consuming it.
    pub fn probe(&self, src: SrcSpec, tag: TagSpec, comm: CommId) -> MpiResult<Status> {
        self.pre_op()?;
        let rt = self.rt();
        loop {
            {
                let mut st = self.world.lock();
                st.comms.get(comm)?;
                if let Some(m) = st.mailbox[self.rank.index()]
                    .iter()
                    .find(|m| m.matches(src, tag, comm))
                {
                    let status = Status::of(m);
                    let t = m.available_at_ns;
                    drop(st);
                    rt.merge_clock(SimTime::from_nanos(t));
                    return Ok(status);
                }
                let me = self.me_vtid();
                st.recv_waiters[self.rank.index()].push(me);
            }
            let desc = format!(
                "MPI_Probe(src={}, tag={}, {comm})",
                src.to_i32(),
                tag.to_i32()
            );
            rt.block_current(BlockReason::Message(desc))?;
        }
    }

    /// `MPI_Iprobe`: nonblocking probe.
    pub fn iprobe(&self, src: SrcSpec, tag: TagSpec, comm: CommId) -> MpiResult<Option<Status>> {
        self.pre_op()?;
        let st = self.world.lock();
        st.comms.get(comm)?;
        Ok(st.mailbox[self.rank.index()]
            .iter()
            .find(|m| m.matches(src, tag, comm))
            .map(Status::of))
    }

    // ---- collectives -------------------------------------------------------

    fn collective(
        &self,
        comm: CommId,
        kind: MpiCallKind,
        op: Option<ReduceOp>,
        root: Option<u32>,
        data: Payload,
        color_key: Option<(i32, i32)>,
    ) -> MpiResult<(Payload, Option<CommId>)> {
        self.pre_op()?;
        let rt = self.rt();
        let cfg = self.world.config().clone();
        rt.advance(cfg.collective_overhead);

        // Phase 1: claim a slot and contribute.
        let (my_ix, crank, size) = {
            let mut st = self.world.lock();
            let size = st.comms.size(comm)?;
            let crank = st
                .comms
                .comm_rank(comm, self.rank)?
                .ok_or(MpiError::InvalidComm)?;
            let cs = st.collectives.entry(comm).or_default();
            let my_ix = cs.claim(crank);
            while cs.slots.len() <= my_ix {
                cs.slots.push(Slot::new(kind, op, root));
            }
            let slot = &mut cs.slots[my_ix];
            if let Err(e) = slot.check_match(kind, op, root) {
                slot.failed = Some(e.clone());
                let waiters = std::mem::take(&mut slot.waiters);
                drop(st);
                for w in waiters {
                    rt.unblock(w);
                }
                return Err(e);
            }
            slot.contributions.insert(
                crank,
                Contribution {
                    data,
                    color_key,
                    arrived_at_ns: rt.clock().as_nanos(),
                },
            );
            let full = slot.contributions.len() == size;
            if full {
                let waiters = Self::finalize_slot(&mut st, &cfg, comm, my_ix, size);
                drop(st);
                for w in waiters {
                    rt.unblock(w);
                }
            }
            (my_ix, crank, size)
        };
        let _ = size;

        // Phase 2: wait for the slot to complete.
        loop {
            {
                let mut st = self.world.lock();
                let slot = &mut st.collectives.get_mut(&comm).expect("slot exists").slots[my_ix];
                if let Some(e) = &slot.failed {
                    return Err(e.clone());
                }
                if let Some(res) = &slot.result {
                    let complete = res.complete_at_ns;
                    let payload = res
                        .per_rank
                        .get(crank as usize)
                        .cloned()
                        .unwrap_or_default();
                    let new_comm = res.new_comm.get(crank as usize).copied().flatten();
                    drop(st);
                    rt.merge_clock(SimTime::from_nanos(complete));
                    return Ok((payload, new_comm));
                }
                let me = self.me_vtid();
                slot.waiters.push(me);
            }
            let desc = format!("{kind}({comm}, slot {my_ix})");
            rt.block_current(BlockReason::Barrier(desc))?;
        }
    }

    /// Complete a full slot: compute the result, create communicators for
    /// dup/split, and return the waiters to wake.
    fn finalize_slot(
        st: &mut crate::world::WorldState,
        cfg: &crate::config::MpiConfig,
        comm: CommId,
        ix: usize,
        size: usize,
    ) -> Vec<Vtid> {
        let extra_ns = cfg.latency.base_latency.as_nanos() * log2_ceil(size)
            + cfg.collective_overhead.as_nanos();
        // Snapshot what we need before re-borrowing for communicator work.
        let (kind, color_keys) = {
            let slot = &st.collectives.get(&comm).expect("slot exists").slots[ix];
            let cks: Vec<Option<(i32, i32)>> = (0..size as u32)
                .map(|r| slot.contributions.get(&r).and_then(|c| c.color_key))
                .collect();
            (slot.kind, cks)
        };
        let new_comms: Option<Result<Vec<Option<CommId>>, MpiError>> = match kind {
            MpiCallKind::CommDup => Some(st.comms.dup(comm).map(|id| vec![Some(id); size])),
            MpiCallKind::CommSplit => {
                let cks: Vec<(i32, i32)> =
                    color_keys.iter().map(|ck| ck.unwrap_or((-1, 0))).collect();
                Some(st.comms.split(comm, &cks))
            }
            _ => None,
        };
        let slot = &mut st.collectives.get_mut(&comm).expect("slot exists").slots[ix];
        match slot.compute(size, extra_ns) {
            Ok(_) => match new_comms {
                Some(Ok(nc)) => {
                    slot.result.as_mut().expect("just computed").new_comm = nc;
                }
                Some(Err(e)) => slot.failed = Some(e),
                None => {}
            },
            Err(e) => slot.failed = Some(e),
        }
        std::mem::take(&mut slot.waiters)
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self, comm: CommId) -> MpiResult<()> {
        self.collective(
            comm,
            MpiCallKind::Barrier,
            None,
            None,
            Arc::new(Vec::new()),
            None,
        )?;
        Ok(())
    }

    /// `MPI_Bcast`: returns the root's payload on every rank.
    pub fn bcast(&self, root: u32, data: Payload, comm: CommId) -> MpiResult<Payload> {
        Ok(self
            .collective(comm, MpiCallKind::Bcast, None, Some(root), data, None)?
            .0)
    }

    /// `MPI_Reduce`: root receives the combined payload (`None` elsewhere).
    pub fn reduce(
        &self,
        op: ReduceOp,
        root: u32,
        data: Payload,
        comm: CommId,
    ) -> MpiResult<Option<Payload>> {
        let crank = self.comm_rank(comm)?.ok_or(MpiError::InvalidComm)?;
        let (payload, _) =
            self.collective(comm, MpiCallKind::Reduce, Some(op), Some(root), data, None)?;
        Ok(if crank == root { Some(payload) } else { None })
    }

    /// `MPI_Allreduce`.
    pub fn allreduce(&self, op: ReduceOp, data: Payload, comm: CommId) -> MpiResult<Payload> {
        Ok(self
            .collective(comm, MpiCallKind::Allreduce, Some(op), None, data, None)?
            .0)
    }

    /// `MPI_Gather`: root receives concatenation in rank order.
    pub fn gather(&self, root: u32, data: Payload, comm: CommId) -> MpiResult<Option<Payload>> {
        let crank = self.comm_rank(comm)?.ok_or(MpiError::InvalidComm)?;
        let (payload, _) =
            self.collective(comm, MpiCallKind::Gather, None, Some(root), data, None)?;
        Ok(if crank == root { Some(payload) } else { None })
    }

    /// `MPI_Allgather`.
    pub fn allgather(&self, data: Payload, comm: CommId) -> MpiResult<Payload> {
        Ok(self
            .collective(comm, MpiCallKind::Allgather, None, None, data, None)?
            .0)
    }

    /// `MPI_Scatter`: root's payload is cut into equal chunks.
    pub fn scatter(&self, root: u32, data: Payload, comm: CommId) -> MpiResult<Payload> {
        Ok(self
            .collective(comm, MpiCallKind::Scatter, None, Some(root), data, None)?
            .0)
    }

    /// `MPI_Alltoall`.
    pub fn alltoall(&self, data: Payload, comm: CommId) -> MpiResult<Payload> {
        Ok(self
            .collective(comm, MpiCallKind::Alltoall, None, None, data, None)?
            .0)
    }

    /// `MPI_Comm_dup`.
    pub fn comm_dup(&self, comm: CommId) -> MpiResult<CommId> {
        let (_, nc) = self.collective(
            comm,
            MpiCallKind::CommDup,
            None,
            None,
            Arc::new(Vec::new()),
            None,
        )?;
        nc.ok_or(MpiError::InvalidComm)
    }

    /// `MPI_Comm_split`: negative `color` = `MPI_UNDEFINED` (returns `None`).
    pub fn comm_split(&self, comm: CommId, color: i32, key: i32) -> MpiResult<Option<CommId>> {
        let (_, nc) = self.collective(
            comm,
            MpiCallKind::CommSplit,
            None,
            None,
            Arc::new(Vec::new()),
            Some((color, key)),
        )?;
        Ok(nc)
    }
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process").field("rank", &self.rank).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use crate::msg::payload;
    use home_sched::{Runtime, SchedConfig, SchedError};

    /// Run a closure per rank on a deterministic world; panics propagate.
    fn run_world<F>(n: usize, seed: u64, f: F)
    where
        F: Fn(Process) + Send + Sync + 'static,
    {
        run_world_cfg(n, seed, MpiConfig::test(), f).unwrap();
    }

    fn run_world_cfg<F>(n: usize, seed: u64, cfg: MpiConfig, f: F) -> Result<World, SchedError>
    where
        F: Fn(Process) + Send + Sync + 'static,
    {
        let rt = Runtime::new(SchedConfig::deterministic(seed));
        let world = World::new(rt.clone(), n, cfg);
        let f = Arc::new(f);
        let mut handles = Vec::new();
        for r in 0..n as u32 {
            let p = world.process(r);
            let f = Arc::clone(&f);
            handles.push(rt.spawn(format!("rank{r}"), move || f(p)));
        }
        let result = rt.run();
        for h in handles {
            h.join().expect("rank panicked");
        }
        result.map(|_| world)
    }

    #[test]
    fn init_lifecycle() {
        run_world(2, 0, |p| {
            assert!(!p.is_initialized());
            let lvl = p.init_thread(ThreadLevel::Multiple).unwrap();
            assert_eq!(lvl, ThreadLevel::Multiple);
            assert!(p.is_initialized());
            assert!(p.is_thread_main());
            assert_eq!(p.init(), Err(MpiError::AlreadyInitialized));
            p.finalize().unwrap();
            assert!(p.is_finalized());
            assert_eq!(
                p.send(0, 0, COMM_WORLD, payload(vec![])),
                Err(MpiError::AlreadyFinalized)
            );
        });
    }

    #[test]
    fn thread_level_is_capped() {
        run_world_cfg(
            1,
            0,
            MpiConfig::test().with_max_thread_level(ThreadLevel::Funneled),
            |p| {
                let lvl = p.init_thread(ThreadLevel::Multiple).unwrap();
                assert_eq!(lvl, ThreadLevel::Funneled);
            },
        )
        .unwrap();
    }

    #[test]
    fn call_before_init_fails() {
        run_world(1, 0, |p| {
            assert_eq!(
                p.send(0, 0, COMM_WORLD, payload(vec![])),
                Err(MpiError::NotInitialized)
            );
        });
    }

    #[test]
    fn simple_send_recv() {
        run_world(2, 1, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                p.send(1, 7, COMM_WORLD, payload(vec![1.0, 2.0, 3.0]))
                    .unwrap();
            } else {
                let (data, st) = p
                    .recv(SrcSpec::Rank(0), TagSpec::Tag(7), COMM_WORLD)
                    .unwrap();
                assert_eq!(*data, vec![1.0, 2.0, 3.0]);
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 7);
                assert_eq!(st.count, 3);
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn wildcard_recv_reports_actual_envelope() {
        run_world(3, 2, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 2 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (_, st) = p.recv(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
                    seen.push((st.source, st.tag));
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![(0, 10), (1, 11)]);
            } else {
                let tag = 10 + p.rank() as i32;
                p.send(2, tag, COMM_WORLD, payload(vec![0.0])).unwrap();
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn fifo_non_overtaking_same_channel() {
        run_world(2, 3, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                for i in 0..10 {
                    p.send(1, 0, COMM_WORLD, payload(vec![i as f64])).unwrap();
                }
            } else {
                for i in 0..10 {
                    let (d, _) = p
                        .recv(SrcSpec::Rank(0), TagSpec::Tag(0), COMM_WORLD)
                        .unwrap();
                    assert_eq!(d[0], i as f64, "messages must not overtake");
                }
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn tag_selective_matching() {
        run_world(2, 4, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                p.send(1, 5, COMM_WORLD, payload(vec![5.0])).unwrap();
                p.send(1, 6, COMM_WORLD, payload(vec![6.0])).unwrap();
            } else {
                // Receive the *second* tag first.
                let (d6, _) = p
                    .recv(SrcSpec::Rank(0), TagSpec::Tag(6), COMM_WORLD)
                    .unwrap();
                let (d5, _) = p
                    .recv(SrcSpec::Rank(0), TagSpec::Tag(5), COMM_WORLD)
                    .unwrap();
                assert_eq!((d5[0], d6[0]), (5.0, 6.0));
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn isend_irecv_wait() {
        run_world(2, 5, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                let r = p.isend(1, 0, COMM_WORLD, payload(vec![9.0])).unwrap();
                let (data, st) = p.wait(r).unwrap();
                assert!(data.is_none());
                assert_eq!(st, Status::empty());
                assert_eq!(p.wait(r), Err(MpiError::RequestConsumed));
            } else {
                let r = p.irecv(SrcSpec::Rank(0), TagSpec::Any, COMM_WORLD).unwrap();
                let (data, st) = p.wait(r).unwrap();
                assert_eq!(*data.unwrap(), vec![9.0]);
                assert_eq!(st.tag, 0);
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn test_polls_without_blocking() {
        run_world(2, 6, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 1 {
                let r = p.irecv(SrcSpec::Rank(0), TagSpec::Any, COMM_WORLD).unwrap();
                let mut polls = 0u32;
                loop {
                    if let Some((data, _)) = p.test(r).unwrap() {
                        assert_eq!(*data.unwrap(), vec![4.0]);
                        break;
                    }
                    polls += 1;
                    assert!(polls < 100_000, "sender never arrived");
                }
            } else {
                p.send(1, 3, COMM_WORLD, payload(vec![4.0])).unwrap();
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn waitall_completes_everything() {
        run_world(2, 7, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                let rs: Vec<ReqId> = (0..4)
                    .map(|i| p.isend(1, i, COMM_WORLD, payload(vec![i as f64])).unwrap())
                    .collect();
                p.waitall(&rs).unwrap();
            } else {
                let rs: Vec<ReqId> = (0..4)
                    .map(|i| {
                        p.irecv(SrcSpec::Rank(0), TagSpec::Tag(i), COMM_WORLD)
                            .unwrap()
                    })
                    .collect();
                let sts = p.waitall(&rs).unwrap();
                for (i, st) in sts.iter().enumerate() {
                    assert_eq!(st.tag, i as i32);
                }
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn probe_then_recv() {
        run_world(2, 8, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                p.send(1, 42, COMM_WORLD, payload(vec![1.0, 2.0])).unwrap();
            } else {
                let st = p.probe(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
                assert_eq!(st.tag, 42);
                assert_eq!(st.count, 2);
                // Probe must not consume.
                let (d, _) = p
                    .recv(SrcSpec::Rank(st.source), TagSpec::Tag(st.tag), COMM_WORLD)
                    .unwrap();
                assert_eq!(d.len(), 2);
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn iprobe_is_nonblocking() {
        run_world(1, 9, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            assert_eq!(
                p.iprobe(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap(),
                None
            );
            p.finalize().unwrap();
        });
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        run_world(2, 10, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            let peer = 1 - p.rank();
            let (d, _) = p
                .sendrecv(
                    peer,
                    0,
                    payload(vec![p.rank() as f64]),
                    SrcSpec::Rank(peer),
                    TagSpec::Tag(0),
                    COMM_WORLD,
                )
                .unwrap();
            assert_eq!(d[0], peer as f64);
            p.finalize().unwrap();
        });
    }

    #[test]
    fn ssend_completes_once_received() {
        run_world(2, 30, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                p.ssend(1, 5, COMM_WORLD, payload(vec![7.0])).unwrap();
                // After ssend returns, the receive must have matched.
            } else {
                let (d, st) = p
                    .recv(SrcSpec::Rank(0), TagSpec::Tag(5), COMM_WORLD)
                    .unwrap();
                assert_eq!(*d, vec![7.0]);
                assert_eq!(st.tag, 5);
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn head_to_head_ssend_deadlocks() {
        // The classic rendezvous deadlock: both ranks Ssend first.
        let result = run_world_cfg(2, 31, MpiConfig::test(), |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            let peer = 1 - p.rank();
            let e = p
                .ssend(peer, 0, COMM_WORLD, payload(vec![1.0]))
                .unwrap_err();
            assert!(matches!(e, MpiError::Sched(SchedError::Deadlock(_))));
        });
        match result {
            Err(SchedError::Deadlock(info)) => {
                assert!(info.involves("MPI_Ssend"), "{info}");
            }
            other => panic!("expected rendezvous deadlock, got {other:?}"),
        }
    }

    #[test]
    fn ssend_unblocks_on_late_recv() {
        run_world(2, 32, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                p.ssend(1, 9, COMM_WORLD, payload(vec![1.0])).unwrap();
            } else {
                // Delay before posting the receive; the sender must wait.
                for _ in 0..5 {
                    p.world().runtime().yield_now().unwrap();
                }
                p.recv(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn head_to_head_blocking_recv_deadlocks() {
        // Both ranks recv before sending — the classic deadlock; the
        // scheduler must detect and report it rather than hang.
        let result = run_world_cfg(2, 11, MpiConfig::test(), |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            let peer = 1 - p.rank();
            let e = p
                .recv(SrcSpec::Rank(peer), TagSpec::Tag(0), COMM_WORLD)
                .unwrap_err();
            assert!(matches!(e, MpiError::Sched(SchedError::Deadlock(_))));
        });
        assert!(matches!(result, Err(SchedError::Deadlock(_))));
    }

    #[test]
    fn collectives_barrier_bcast_reduce() {
        run_world(4, 12, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            p.barrier(COMM_WORLD).unwrap();
            let v = if p.rank() == 0 {
                payload(vec![3.5])
            } else {
                payload(vec![])
            };
            let b = p.bcast(0, v, COMM_WORLD).unwrap();
            assert_eq!(*b, vec![3.5]);
            let r = p
                .reduce(ReduceOp::Sum, 0, payload(vec![p.rank() as f64]), COMM_WORLD)
                .unwrap();
            if p.rank() == 0 {
                assert_eq!(*r.unwrap(), vec![0.0 + 1.0 + 2.0 + 3.0]);
            } else {
                assert!(r.is_none());
            }
            let a = p
                .allreduce(ReduceOp::Max, payload(vec![p.rank() as f64]), COMM_WORLD)
                .unwrap();
            assert_eq!(*a, vec![3.0]);
            p.finalize().unwrap();
        });
    }

    #[test]
    fn gather_scatter_allgather_alltoall() {
        run_world(2, 13, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            let g = p
                .gather(0, payload(vec![p.rank() as f64]), COMM_WORLD)
                .unwrap();
            if p.rank() == 0 {
                assert_eq!(*g.unwrap(), vec![0.0, 1.0]);
            }
            let ag = p
                .allgather(payload(vec![p.rank() as f64 + 10.0]), COMM_WORLD)
                .unwrap();
            assert_eq!(*ag, vec![10.0, 11.0]);
            let sc = if p.rank() == 0 {
                p.scatter(0, payload(vec![1.0, 2.0, 3.0, 4.0]), COMM_WORLD)
                    .unwrap()
            } else {
                p.scatter(0, payload(vec![]), COMM_WORLD).unwrap()
            };
            if p.rank() == 0 {
                assert_eq!(*sc, vec![1.0, 2.0]);
            } else {
                assert_eq!(*sc, vec![3.0, 4.0]);
            }
            let base = p.rank() as f64 * 10.0;
            let at = p
                .alltoall(payload(vec![base, base + 1.0]), COMM_WORLD)
                .unwrap();
            if p.rank() == 0 {
                assert_eq!(*at, vec![0.0, 10.0]);
            } else {
                assert_eq!(*at, vec![1.0, 11.0]);
            }
            p.finalize().unwrap();
        });
    }

    #[test]
    fn collective_mismatch_is_poisoned() {
        let result = run_world_cfg(2, 14, MpiConfig::test(), |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            let e = if p.rank() == 0 {
                p.barrier(COMM_WORLD).unwrap_err()
            } else {
                p.bcast(0, payload(vec![1.0]), COMM_WORLD).unwrap_err()
            };
            assert!(
                matches!(e, MpiError::CollectiveMismatch { .. }),
                "got {e:?}"
            );
        });
        // Both ranks saw the poisoned slot and returned; no deadlock needed.
        result.unwrap();
    }

    #[test]
    fn comm_dup_and_split() {
        run_world(4, 15, |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            let dup = p.comm_dup(COMM_WORLD).unwrap();
            assert_ne!(dup, COMM_WORLD);
            assert_eq!(p.comm_size(dup).unwrap(), 4);
            // Split into even/odd halves.
            let half = p
                .comm_split(COMM_WORLD, (p.rank() % 2) as i32, p.rank() as i32)
                .unwrap()
                .unwrap();
            assert_eq!(p.comm_size(half).unwrap(), 2);
            let my_half_rank = p.comm_rank(half).unwrap().unwrap();
            assert_eq!(my_half_rank, p.rank() / 2);
            // Communicate within the split communicator.
            let peer = 1 - my_half_rank;
            let (d, _) = p
                .sendrecv(
                    peer,
                    0,
                    payload(vec![p.rank() as f64]),
                    SrcSpec::Rank(peer),
                    TagSpec::Tag(0),
                    half,
                )
                .unwrap();
            // Peer in my half is my rank ± 2.
            let expect = if p.rank() < 2 {
                p.rank() + 2
            } else {
                p.rank() - 2
            };
            assert_eq!(d[0], expect as f64);
            p.finalize().unwrap();
        });
    }

    #[test]
    fn virtual_time_advances_with_latency() {
        let world = run_world_cfg(2, 16, MpiConfig::cluster(), |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                p.send(1, 0, COMM_WORLD, payload(vec![0.0; 1000])).unwrap();
            } else {
                p.recv(SrcSpec::Rank(0), TagSpec::Tag(0), COMM_WORLD)
                    .unwrap();
            }
            p.finalize().unwrap();
        })
        .unwrap();
        let makespan = world.runtime().makespan();
        // At least base latency must have elapsed.
        assert!(makespan >= MpiConfig::cluster().latency.base_latency);
    }

    #[test]
    fn no_leaked_requests_or_messages_after_clean_run() {
        let world = run_world_cfg(2, 17, MpiConfig::test(), |p| {
            p.init_thread(ThreadLevel::Multiple).unwrap();
            if p.rank() == 0 {
                p.send(1, 0, COMM_WORLD, payload(vec![1.0])).unwrap();
            } else {
                p.recv(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
            }
            p.finalize().unwrap();
        })
        .unwrap();
        assert_eq!(world.live_requests(), 0);
        assert_eq!(world.undelivered_messages(), 0);
        assert!(world.all_finalized());
    }

    #[test]
    fn any_source_race_schedule_dependent() {
        // Two senders to one receiver with ANY_SOURCE: across seeds both
        // arrival orders must occur — the message-race nondeterminism the
        // paper's checks rely on.
        let mut first_sources = std::collections::HashSet::new();
        for seed in 0..40 {
            let rt = Runtime::new(SchedConfig::deterministic(seed));
            let world = World::new(rt.clone(), 3, MpiConfig::test());
            let observed = Arc::new(parking_lot::Mutex::new(None));
            for r in 0..3u32 {
                let p = world.process(r);
                let obs = Arc::clone(&observed);
                rt.spawn(format!("rank{r}"), move || {
                    p.init_thread(ThreadLevel::Multiple).unwrap();
                    if p.rank() == 2 {
                        let (_, st) = p.recv(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
                        *obs.lock() = Some(st.source);
                        let _ = p.recv(SrcSpec::Any, TagSpec::Any, COMM_WORLD).unwrap();
                    } else {
                        p.send(2, 0, COMM_WORLD, payload(vec![p.rank() as f64]))
                            .unwrap();
                    }
                    p.finalize().unwrap();
                });
            }
            rt.run().unwrap();
            first_sources.insert(observed.lock().unwrap());
        }
        assert_eq!(
            first_sources.len(),
            2,
            "both senders should win the race under some seed"
        );
    }
}
