//! The interpreter: executes IR programs over the MPI/OpenMP simulators
//! with tool-controlled selective instrumentation.

use crate::config::RunConfig;
use crate::env::Env;
use home_ir::{Expr, IrReduceOp, IrThreadLevel, MpiStmt, Program, Schedule, Stmt, StmtKind};
use home_mpi::{payload, MpiError, Process, ReduceOp, SrcSpec, TagSpec, World};
use home_omp::{OmpCtx, OmpProc};
use home_sched::{DeadlockInfo, Runtime, SchedError, SimTime};
use home_trace::{
    Collector, CommId, EventKind, MemorySink, MonitoredVar, MpiCallKind, MpiCallRecord, Rank,
    ReqId, SrcLoc, ThreadLevel, Trace, TraceSink, COMM_WORLD,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Fatal interpreter errors (non-fatal MPI misuse becomes an
/// [`MpiIncident`] instead).
#[derive(Debug, Clone)]
pub enum ExecError {
    /// Scheduler-level failure (deadlock/shutdown) — aborts the rank.
    Sched(SchedError),
    /// Program-level error (undeclared variable, nested parallel, …).
    Runtime(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Sched(e) => write!(f, "{e}"),
            ExecError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl From<ExecError> for home_trace::HomeError {
    fn from(e: ExecError) -> Self {
        home_trace::HomeError::Exec {
            rank: None,
            message: e.to_string(),
        }
    }
}

impl From<SchedError> for ExecError {
    fn from(e: SchedError) -> Self {
        ExecError::Sched(e)
    }
}

/// A non-fatal MPI misuse observed at runtime (e.g. a call after finalize,
/// a collective mismatch): recorded and execution continues, so the
/// checkers get a complete trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiIncident {
    /// World rank.
    pub rank: u32,
    /// Source line of the call.
    pub line: u32,
    /// Surface call name.
    pub call: String,
    /// Error description.
    pub error: String,
}

/// Everything a finished run produced.
#[derive(Debug)]
pub struct RunResult {
    /// The recorded event trace (contents depend on the tool's filter).
    pub trace: Trace,
    /// Simulated makespan.
    pub makespan: SimTime,
    /// Events recorded (post-filter).
    pub events_recorded: u64,
    /// Whole-system deadlock, if the run got stuck.
    pub deadlock: Option<DeadlockInfo>,
    /// Non-fatal MPI misuse incidents.
    pub mpi_errors: Vec<MpiIncident>,
    /// Rank-level runtime errors (undeclared variables etc.).
    pub runtime_errors: Vec<(u32, String)>,
    /// Tool label.
    pub tool: String,
}

impl RunResult {
    /// True when the run completed without deadlock or runtime errors.
    pub fn clean(&self) -> bool {
        self.deadlock.is_none() && self.runtime_errors.is_empty()
    }
}

#[derive(Clone)]
struct ProcShared {
    program: Arc<Program>,
    cfg: Arc<RunConfig>,
    mpi: Process,
    omp: OmpProc,
    requests: Arc<Mutex<HashMap<String, ReqId>>>,
    /// Communicator handles created by `mpi_comm_dup`/`mpi_comm_split`,
    /// shared by all threads of the process.
    comms: Arc<Mutex<HashMap<String, CommId>>>,
    incidents: Arc<Mutex<Vec<MpiIncident>>>,
    runtime_errors: Arc<Mutex<Vec<(u32, String)>>>,
}

struct ExecState<'a> {
    shared: ProcShared,
    env: Env,
    omp: Option<&'a OmpCtx>,
    /// Current `call` nesting depth (recursion guard).
    call_depth: u32,
    /// Innermost loop index, used to attribute `compute` accesses to array
    /// *elements* rather than whole arrays (threads of a worksharing loop
    /// touch disjoint rows, and the access trace should say so).
    loop_index: Option<i64>,
}

impl ExecState<'_> {
    fn rt(&self) -> &Runtime {
        self.shared.omp.runtime()
    }

    fn rank(&self) -> u32 {
        self.shared.mpi.rank()
    }

    fn tid(&self) -> u32 {
        self.omp.map(|c| c.tid().0).unwrap_or(0)
    }

    fn nthreads(&self) -> usize {
        self.omp.map(|c| c.nthreads()).unwrap_or(1)
    }

    fn loc(&self, stmt: &Stmt) -> SrcLoc {
        SrcLoc::new(format!("{}.hmp", self.shared.program.name), stmt.line)
    }

    fn emit(&self, loc: &SrcLoc, kind: EventKind) {
        match self.omp {
            Some(ctx) => {
                ctx.set_loc(Some(loc.clone()));
                ctx.emit(kind);
                ctx.set_loc(None);
            }
            None => self.shared.omp.emit_seq(Some(loc.clone()), kind),
        }
    }

    fn incident(&self, stmt: &Stmt, call: &str, error: String) {
        self.shared.incidents.lock().push(MpiIncident {
            rank: self.rank(),
            line: stmt.line,
            call: call.to_string(),
            error,
        });
    }
}

fn eval(st: &ExecState<'_>, e: &Expr) -> Result<i64, ExecError> {
    use home_ir::BinOp::*;
    Ok(match e {
        Expr::Int(v) => *v,
        Expr::Any => -1,
        Expr::Rank => st.rank() as i64,
        Expr::Size => st.shared.mpi.world_size() as i64,
        Expr::ThreadId => st.tid() as i64,
        Expr::NumThreads => st.nthreads() as i64,
        Expr::Var(name) => st
            .env
            .get(name)
            .ok_or_else(|| ExecError::Runtime(format!("undeclared variable `{name}`")))?,
        Expr::Neg(inner) => -eval(st, inner)?,
        Expr::Not(inner) => (eval(st, inner)? == 0) as i64,
        Expr::Bin(op, a, b) => {
            let x = eval(st, a)?;
            // Short-circuit logic.
            match op {
                And if x == 0 => return Ok(0),
                Or if x != 0 => return Ok(1),
                _ => {}
            }
            let y = eval(st, b)?;
            match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(ExecError::Runtime("division by zero".into()));
                    }
                    x / y
                }
                Mod => {
                    if y == 0 {
                        return Err(ExecError::Runtime("modulo by zero".into()));
                    }
                    x % y
                }
                Eq => (x == y) as i64,
                Ne => (x != y) as i64,
                Lt => (x < y) as i64,
                Le => (x <= y) as i64,
                Gt => (x > y) as i64,
                Ge => (x >= y) as i64,
                And => (y != 0) as i64,
                Or => (y != 0) as i64,
            }
        }
    })
}

fn exec_block(st: &mut ExecState<'_>, stmts: &[Stmt]) -> Result<(), ExecError> {
    for s in stmts {
        exec_stmt(st, s)?;
    }
    Ok(())
}

fn exec_stmt(st: &mut ExecState<'_>, stmt: &Stmt) -> Result<(), ExecError> {
    match &stmt.kind {
        StmtKind::Decl { name, shared, init } => {
            let v = eval(st, init)?;
            st.env.declare(name, *shared, v);
            Ok(())
        }
        StmtKind::Assign { name, value } => {
            let v = eval(st, value)?;
            if !st.env.set(name, v) {
                return Err(ExecError::Runtime(format!(
                    "assignment to undeclared variable `{name}`"
                )));
            }
            Ok(())
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            let c = eval(st, cond)?;
            st.env.push();
            let r = if c != 0 {
                exec_block(st, then_block)
            } else {
                exec_block(st, else_block)
            };
            st.env.pop();
            r
        }
        StmtKind::For {
            var,
            from,
            to,
            body,
        } => {
            let lo = eval(st, from)?;
            let hi = eval(st, to)?;
            for i in lo..hi {
                st.env.push();
                st.env.declare(var, false, i);
                let saved = st.loop_index.replace(i);
                let r = exec_block(st, body);
                st.loop_index = saved;
                st.env.pop();
                r?;
            }
            Ok(())
        }
        StmtKind::OmpParallel {
            num_threads,
            body: _,
        } => {
            if st.omp.is_some() {
                return Err(ExecError::Runtime(
                    "nested omp parallel is not supported".into(),
                ));
            }
            let mut n = eval(st, num_threads)?;
            if n <= 0 {
                n = st.shared.cfg.threads_per_proc as i64;
            }
            let shared = st.shared.clone();
            let env_fork = st.env.fork();
            let region_stmt = stmt.id;
            let result = st.shared.omp.parallel(n as usize, move |ctx| {
                let program = Arc::clone(&shared.program);
                // The region statement id comes from this very program, so
                // the lookup only misses on a malformed IR — report it as a
                // per-rank runtime error instead of panicking the worker.
                let body = match program.stmt(region_stmt).map(|s| &s.kind) {
                    Some(StmtKind::OmpParallel { body, .. }) => body,
                    _ => {
                        shared.runtime_errors.lock().push((
                            shared.mpi.rank(),
                            format!(
                                "malformed IR: statement {region_stmt:?} is not a parallel region"
                            ),
                        ));
                        return Ok(());
                    }
                };
                let mut worker = ExecState {
                    shared: shared.clone(),
                    env: env_fork.fork(),
                    omp: Some(ctx),
                    loop_index: None,
                    call_depth: 0,
                };
                match exec_block(&mut worker, body) {
                    Ok(()) => Ok(()),
                    Err(ExecError::Sched(e)) => Err(e),
                    Err(ExecError::Runtime(msg)) => {
                        shared.runtime_errors.lock().push((shared.mpi.rank(), msg));
                        Ok(())
                    }
                }
            });
            // Merge back shared-variable effects: shared slots alias, so
            // nothing to do; private variables keep their pre-region values
            // (firstprivate semantics).
            result.map_err(ExecError::Sched)
        }
        StmtKind::OmpFor {
            var,
            from,
            to,
            schedule,
            body,
        } => {
            let lo = eval(st, from)?;
            let hi = eval(st, to)?;
            let n = (hi - lo).max(0) as u64;
            let ctx = st.omp;
            match ctx {
                None => {
                    // Outside a parallel region the loop degenerates to
                    // sequential execution.
                    for i in lo..hi {
                        st.env.push();
                        st.env.declare(var, false, i);
                        let saved = st.loop_index.replace(i);
                        let r = exec_block(st, body);
                        st.loop_index = saved;
                        st.env.pop();
                        r?;
                    }
                    Ok(())
                }
                Some(ctx) => {
                    match schedule {
                        Schedule::Static => {
                            for i in ctx.for_static(n) {
                                st.env.push();
                                st.env.declare(var, false, lo + i as i64);
                                let saved = st.loop_index.replace(lo + i as i64);
                                let r = exec_block(st, body);
                                st.loop_index = saved;
                                st.env.pop();
                                r?;
                            }
                        }
                        Schedule::Dynamic { chunk } => {
                            for range in ctx.for_dynamic(n, *chunk) {
                                for i in range {
                                    st.env.push();
                                    st.env.declare(var, false, lo + i as i64);
                                    let saved = st.loop_index.replace(lo + i as i64);
                                    let r = exec_block(st, body);
                                    st.loop_index = saved;
                                    st.env.pop();
                                    r?;
                                }
                            }
                        }
                    }
                    // Implicit barrier at the end of a worksharing loop.
                    ctx.barrier()?;
                    Ok(())
                }
            }
        }
        StmtKind::OmpSections { sections } => {
            let ctx = st.omp;
            match ctx {
                None => {
                    for sec in sections {
                        st.env.push();
                        let r = exec_block(st, sec);
                        st.env.pop();
                        r?;
                    }
                    Ok(())
                }
                Some(ctx) => {
                    for range in ctx.for_dynamic(sections.len() as u64, 1) {
                        for ix in range {
                            st.env.push();
                            let r = exec_block(st, &sections[ix as usize]);
                            st.env.pop();
                            r?;
                        }
                    }
                    ctx.barrier()?;
                    Ok(())
                }
            }
        }
        StmtKind::OmpSingle { body } => {
            let ctx = st.omp;
            match ctx {
                None => {
                    st.env.push();
                    let r = exec_block(st, body);
                    st.env.pop();
                    r
                }
                Some(ctx) => {
                    let claimed = ctx.single_nowait(|| ())?.is_some();
                    if claimed {
                        st.env.push();
                        let r = exec_block(st, body);
                        st.env.pop();
                        r?;
                    }
                    ctx.barrier()?;
                    Ok(())
                }
            }
        }
        StmtKind::OmpMaster { body } => {
            if st.tid() == 0 {
                st.env.push();
                let r = exec_block(st, body);
                st.env.pop();
                r
            } else {
                Ok(())
            }
        }
        StmtKind::OmpCritical { name, body } => {
            let ctx = st.omp;
            match ctx {
                None => {
                    st.env.push();
                    let r = exec_block(st, body);
                    st.env.pop();
                    r
                }
                Some(ctx) => {
                    st.env.push();
                    let r = ctx.critical(name, || exec_block(st, body))?;
                    st.env.pop();
                    r
                }
            }
        }
        StmtKind::OmpBarrier => {
            if let Some(ctx) = st.omp {
                ctx.barrier()?;
            }
            Ok(())
        }
        StmtKind::OmpAtomic { name, value } => {
            // An atomic update is a reserved tiny critical section.
            let ctx = st.omp;
            match ctx {
                None => {
                    let v = eval(st, value)?;
                    if !st.env.set(name, v) {
                        return Err(ExecError::Runtime(format!(
                            "atomic update of undeclared variable `{name}`"
                        )));
                    }
                    Ok(())
                }
                Some(ctx) => {
                    let r = ctx.critical("__omp_atomic", || -> Result<(), ExecError> {
                        let v = eval(st, value)?;
                        if !st.env.set(name, v) {
                            return Err(ExecError::Runtime(format!(
                                "atomic update of undeclared variable `{name}`"
                            )));
                        }
                        Ok(())
                    })?;
                    r
                }
            }
        }
        StmtKind::Compute {
            flops,
            reads,
            writes,
        } => {
            let f = eval(st, flops)?.max(0) as u64;
            let cfg = Arc::clone(&st.shared.cfg);
            st.rt().advance(SimTime::from_secs_f64(
                f as f64 * cfg.ns_per_flop * cfg.instrumentation.compute_slowdown / 1e9,
            ));
            // Real floating-point work (scaled) so the benches execute
            // genuine numeric code, not just clock arithmetic.
            let real = f.min(cfg.real_flops_cap);
            let mut x = 1.0001_f64;
            for _ in 0..real {
                x = x.mul_add(1.000_000_1, 1e-12);
            }
            std::hint::black_box(x);
            let loc = st.loc(stmt);
            let mem_loc = |var| match st.loop_index {
                Some(i) => home_trace::MemLoc::Elem(var, i.max(0) as u64),
                None => home_trace::MemLoc::Var(var),
            };
            for r in reads {
                let var = st.shared.omp.collector().intern_var(r);
                st.emit(
                    &loc,
                    EventKind::Access {
                        loc: mem_loc(var),
                        kind: home_trace::AccessKind::Read,
                    },
                );
            }
            for w in writes {
                let var = st.shared.omp.collector().intern_var(w);
                st.emit(
                    &loc,
                    EventKind::Access {
                        loc: mem_loc(var),
                        kind: home_trace::AccessKind::Write,
                    },
                );
            }
            st.rt().yield_now()?;
            Ok(())
        }
        StmtKind::Mpi(call) => exec_mpi(st, stmt, call),
        StmtKind::Call { name } => {
            let program = Arc::clone(&st.shared.program);
            let Some(func) = program.function(name) else {
                return Err(ExecError::Runtime(format!(
                    "call to unknown function `{name}`"
                )));
            };
            if st.call_depth >= 64 {
                return Err(ExecError::Runtime(format!(
                    "call depth limit exceeded in `{name}` (recursion?)"
                )));
            }
            // Inlined semantics: the callee runs in the caller's
            // environment under a fresh scope.
            st.call_depth += 1;
            st.env.push();
            let r = exec_block(st, &func.body);
            st.env.pop();
            st.call_depth -= 1;
            r
        }
    }
}

fn to_trace_level(l: IrThreadLevel) -> ThreadLevel {
    match l {
        IrThreadLevel::Single => ThreadLevel::Single,
        IrThreadLevel::Funneled => ThreadLevel::Funneled,
        IrThreadLevel::Serialized => ThreadLevel::Serialized,
        IrThreadLevel::Multiple => ThreadLevel::Multiple,
    }
}

fn to_reduce_op(op: IrReduceOp) -> ReduceOp {
    match op {
        IrReduceOp::Sum => ReduceOp::Sum,
        IrReduceOp::Prod => ReduceOp::Prod,
        IrReduceOp::Min => ReduceOp::Min,
        IrReduceOp::Max => ReduceOp::Max,
    }
}

/// Monitored variables written by the wrapper of each call class
/// (paper §IV-B: each wrapper stores its arguments before the real call).
fn monitored_vars_of(kind: MpiCallKind) -> &'static [MonitoredVar] {
    use MonitoredVar::*;
    match kind {
        MpiCallKind::Send
        | MpiCallKind::Ssend
        | MpiCallKind::Sendrecv
        | MpiCallKind::Recv
        | MpiCallKind::Isend
        | MpiCallKind::Irecv
        | MpiCallKind::Probe
        | MpiCallKind::Iprobe => &[Src, Tag, Comm],
        MpiCallKind::Wait | MpiCallKind::Test | MpiCallKind::Waitall => &[Request],
        MpiCallKind::Finalize => &[Finalize],
        k if k.is_collective() => &[Collective, Comm],
        _ => &[],
    }
}

/// Map a checklist monitored-variable name onto the trace enum.
fn monitored_var_of_name(name: &str) -> Option<MonitoredVar> {
    use MonitoredVar::*;
    match name {
        "srctmp" => Some(Src),
        "tagtmp" => Some(Tag),
        "commtmp" => Some(Comm),
        "requesttmp" => Some(Request),
        "collectivetmp" => Some(Collective),
        "finalizetmp" => Some(Finalize),
        _ => None,
    }
}

fn exec_mpi(st: &mut ExecState<'_>, stmt: &Stmt, call: &MpiStmt) -> Result<(), ExecError> {
    let cfg = Arc::clone(&st.shared.cfg);
    let instr = &cfg.instrumentation;
    let loc = st.loc(stmt);
    let proc = st.shared.mpi.clone();

    // Selective instrumentation: HOME wraps only checklist-selected sites;
    // unselective tools wrap everything (minus un-wrappable probes).
    let mut instrumented = if instr.selective {
        cfg.checklist
            .as_ref()
            .map(|c| c.should_instrument(stmt.id))
            .unwrap_or(false)
    } else {
        true
    };
    if matches!(call, MpiStmt::Probe { .. } | MpiStmt::Iprobe { .. }) && !instr.wrap_probe {
        instrumented = false;
    }

    // Per-site monitored set from the interprocedural checklist: when the
    // static phase attached one, this site's wrapper stores exactly those
    // variables. Coarse checklists (`monitored: None`) and unselective
    // tools fall back to the per-kind table in `monitored_vars_of`.
    let site_monitored: Option<Vec<MonitoredVar>> = if instr.selective {
        cfg.checklist
            .as_ref()
            .and_then(|c| c.site_monitored(stmt.id))
            .map(|vars| {
                vars.iter()
                    .filter_map(|v| monitored_var_of_name(v))
                    .collect()
            })
    } else {
        None
    };

    // Marmot-style central-manager cost applies to every MPI call when set.
    if instr.mpi_call_extra > SimTime::ZERO {
        st.rt().advance(instr.mpi_call_extra);
    }

    // Resolve an optional communicator handle name to its id; an unknown
    // handle is a recorded incident and the call is skipped.
    let resolve_comm = |st: &ExecState<'_>, name: &Option<String>| -> Option<CommId> {
        match name {
            None => Some(COMM_WORLD),
            Some(n) => {
                let cm = st.shared.comms.lock().get(n).copied();
                if cm.is_none() {
                    st.incident(stmt, call.name(), format!("unknown communicator `{n}`"));
                }
                cm
            }
        }
    };

    let mk_record = |kind: MpiCallKind,
                     peer: Option<i64>,
                     tag: Option<i64>,
                     request: Option<ReqId>,
                     comm: CommId| {
        MpiCallRecord {
            kind,
            peer: peer.map(|p| p as i32),
            tag: tag.map(|t| t as i32),
            comm,
            request,
            is_main_thread: proc.is_thread_main(),
            thread_level: proc.thread_level(),
        }
    };

    let wrap = |st: &ExecState<'_>, record: &MpiCallRecord| {
        if !instrumented {
            return;
        }
        st.emit(
            &loc,
            EventKind::MpiCall {
                call: record.clone(),
            },
        );
        let vars: &[MonitoredVar] = match &site_monitored {
            Some(vars) => vars,
            None => monitored_vars_of(record.kind),
        };
        for &var in vars {
            st.emit(
                &loc,
                EventKind::MonitoredWrite {
                    var,
                    call: record.clone(),
                },
            );
        }
    };

    // Execute, converting scheduler failures to fatal errors and other MPI
    // misuse to recorded incidents.
    macro_rules! check {
        ($st:expr, $res:expr, $name:expr) => {
            match $res {
                Ok(v) => Some(v),
                Err(MpiError::Sched(e)) => return Err(ExecError::Sched(e)),
                Err(other) => {
                    $st.incident(stmt, $name, other.to_string());
                    None
                }
            }
        };
    }

    match call {
        MpiStmt::Init => {
            let res = proc.init();
            if let Some(level) = check!(st, res, "mpi_init") {
                if instrumented || instr.filter.mpi_calls {
                    st.emit(
                        &loc,
                        EventKind::MpiInit {
                            level,
                            requested_by_init_thread: false,
                        },
                    );
                }
            }
        }
        MpiStmt::InitThread { required } => {
            let res = proc.init_thread(to_trace_level(*required));
            if let Some(level) = check!(st, res, "mpi_init_thread") {
                if instrumented || instr.filter.mpi_calls {
                    st.emit(
                        &loc,
                        EventKind::MpiInit {
                            level,
                            requested_by_init_thread: true,
                        },
                    );
                }
            }
        }
        MpiStmt::Finalize => {
            let record = mk_record(MpiCallKind::Finalize, None, None, None, COMM_WORLD);
            wrap(st, &record);
            let res = proc.finalize();
            check!(st, res, "mpi_finalize");
        }
        MpiStmt::Send {
            dest,
            tag,
            count,
            comm,
        } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let d = eval(st, dest)?;
            let t = eval(st, tag)?;
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Send, Some(d), Some(t), None, cm);
            wrap(st, &record);
            let res = proc.send(d.max(0) as u32, t as i32, cm, payload(vec![0.0; c]));
            check!(st, res, "mpi_send");
        }
        MpiStmt::Ssend {
            dest,
            tag,
            count,
            comm,
        } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let d = eval(st, dest)?;
            let t = eval(st, tag)?;
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Ssend, Some(d), Some(t), None, cm);
            wrap(st, &record);
            let res = proc.ssend(d.max(0) as u32, t as i32, cm, payload(vec![0.0; c]));
            check!(st, res, "mpi_ssend");
        }
        MpiStmt::Recv { src, tag, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let s = eval(st, src)?;
            let t = eval(st, tag)?;
            let record = mk_record(MpiCallKind::Recv, Some(s), Some(t), None, cm);
            wrap(st, &record);
            let res = proc.recv(SrcSpec::from_i32(s as i32), TagSpec::from_i32(t as i32), cm);
            check!(st, res, "mpi_recv");
        }
        MpiStmt::Isend {
            dest,
            tag,
            count,
            req,
            comm,
        } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let d = eval(st, dest)?;
            let t = eval(st, tag)?;
            let c = eval(st, count)?.max(0) as usize;
            let res = proc.isend(d.max(0) as u32, t as i32, cm, payload(vec![0.0; c]));
            if let Some(id) = check!(st, res, "mpi_isend") {
                let record = mk_record(MpiCallKind::Isend, Some(d), Some(t), Some(id), cm);
                wrap(st, &record);
                st.shared.requests.lock().insert(req.clone(), id);
            }
        }
        MpiStmt::Irecv {
            src,
            tag,
            req,
            comm,
        } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let s = eval(st, src)?;
            let t = eval(st, tag)?;
            let res = proc.irecv(SrcSpec::from_i32(s as i32), TagSpec::from_i32(t as i32), cm);
            if let Some(id) = check!(st, res, "mpi_irecv") {
                let record = mk_record(MpiCallKind::Irecv, Some(s), Some(t), Some(id), cm);
                wrap(st, &record);
                st.shared.requests.lock().insert(req.clone(), id);
            }
        }
        MpiStmt::Wait { req } => {
            let id = st.shared.requests.lock().get(req).copied();
            match id {
                Some(id) => {
                    let record = mk_record(MpiCallKind::Wait, None, None, Some(id), COMM_WORLD);
                    wrap(st, &record);
                    let res = proc.wait(id);
                    check!(st, res, "mpi_wait");
                }
                None => st.incident(stmt, "mpi_wait", format!("unknown request `{req}`")),
            }
        }
        MpiStmt::Waitall { reqs } => {
            for req in reqs {
                let id = st.shared.requests.lock().get(req).copied();
                match id {
                    Some(id) => {
                        let record =
                            mk_record(MpiCallKind::Waitall, None, None, Some(id), COMM_WORLD);
                        wrap(st, &record);
                        let res = proc.wait(id);
                        check!(st, res, "mpi_waitall");
                    }
                    None => st.incident(stmt, "mpi_waitall", format!("unknown request `{req}`")),
                }
            }
        }
        MpiStmt::Test { req } => {
            let id = st.shared.requests.lock().get(req).copied();
            match id {
                Some(id) => {
                    let record = mk_record(MpiCallKind::Test, None, None, Some(id), COMM_WORLD);
                    wrap(st, &record);
                    let res = proc.test(id);
                    check!(st, res, "mpi_test");
                }
                None => st.incident(stmt, "mpi_test", format!("unknown request `{req}`")),
            }
        }
        MpiStmt::Probe { src, tag, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let s = eval(st, src)?;
            let t = eval(st, tag)?;
            let record = mk_record(MpiCallKind::Probe, Some(s), Some(t), None, cm);
            wrap(st, &record);
            let res = proc.probe(SrcSpec::from_i32(s as i32), TagSpec::from_i32(t as i32), cm);
            check!(st, res, "mpi_probe");
        }
        MpiStmt::Iprobe { src, tag, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let s = eval(st, src)?;
            let t = eval(st, tag)?;
            let record = mk_record(MpiCallKind::Iprobe, Some(s), Some(t), None, cm);
            wrap(st, &record);
            let res = proc.iprobe(SrcSpec::from_i32(s as i32), TagSpec::from_i32(t as i32), cm);
            check!(st, res, "mpi_iprobe");
        }
        MpiStmt::Barrier { comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let record = mk_record(MpiCallKind::Barrier, None, None, None, cm);
            wrap(st, &record);
            let res = proc.barrier(cm);
            check!(st, res, "mpi_barrier");
        }
        MpiStmt::Bcast { root, count, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let r = eval(st, root)?.max(0) as u32;
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Bcast, Some(r as i64), None, None, cm);
            wrap(st, &record);
            let me = proc.comm_rank(cm).ok().flatten();
            let data = if me == Some(r) {
                payload(vec![1.0; c])
            } else {
                payload(vec![])
            };
            let res = proc.bcast(r, data, cm);
            check!(st, res, "mpi_bcast");
        }
        MpiStmt::Reduce {
            op,
            root,
            count,
            comm,
        } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let r = eval(st, root)?.max(0) as u32;
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Reduce, Some(r as i64), None, None, cm);
            wrap(st, &record);
            let res = proc.reduce(
                to_reduce_op(*op),
                r,
                payload(vec![proc.rank() as f64; c]),
                cm,
            );
            check!(st, res, "mpi_reduce");
        }
        MpiStmt::Allreduce { op, count, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Allreduce, None, None, None, cm);
            wrap(st, &record);
            let res = proc.allreduce(to_reduce_op(*op), payload(vec![proc.rank() as f64; c]), cm);
            check!(st, res, "mpi_allreduce");
        }
        MpiStmt::Gather { root, count, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let r = eval(st, root)?.max(0) as u32;
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Gather, Some(r as i64), None, None, cm);
            wrap(st, &record);
            let res = proc.gather(r, payload(vec![proc.rank() as f64; c]), cm);
            check!(st, res, "mpi_gather");
        }
        MpiStmt::Allgather { count, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Allgather, None, None, None, cm);
            wrap(st, &record);
            let res = proc.allgather(payload(vec![proc.rank() as f64; c]), cm);
            check!(st, res, "mpi_allgather");
        }
        MpiStmt::Scatter { root, count, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let r = eval(st, root)?.max(0) as u32;
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Scatter, Some(r as i64), None, None, cm);
            wrap(st, &record);
            let size = proc.comm_size(cm).unwrap_or(1);
            let me = proc.comm_rank(cm).ok().flatten();
            let data = if me == Some(r) {
                payload(vec![0.0; c * size])
            } else {
                payload(vec![])
            };
            let res = proc.scatter(r, data, cm);
            check!(st, res, "mpi_scatter");
        }
        MpiStmt::Alltoall { count, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let c = eval(st, count)?.max(0) as usize;
            let record = mk_record(MpiCallKind::Alltoall, None, None, None, cm);
            wrap(st, &record);
            let size = proc.comm_size(cm).unwrap_or(1);
            let res = proc.alltoall(payload(vec![0.0; c * size]), cm);
            check!(st, res, "mpi_alltoall");
        }
        MpiStmt::CommDup { into, comm } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let record = mk_record(MpiCallKind::CommDup, None, None, None, cm);
            wrap(st, &record);
            let res = proc.comm_dup(cm);
            if let Some(new) = check!(st, res, "mpi_comm_dup") {
                st.shared.comms.lock().insert(into.clone(), new);
            }
        }
        MpiStmt::CommSplit {
            color,
            key,
            into,
            comm,
        } => {
            let Some(cm) = resolve_comm(st, comm) else {
                return Ok(());
            };
            let col = eval(st, color)?;
            let k = eval(st, key)?;
            let record = mk_record(MpiCallKind::CommSplit, None, None, None, cm);
            wrap(st, &record);
            let res = proc.comm_split(cm, col as i32, k as i32);
            if let Some(maybe_new) = check!(st, res, "mpi_comm_split") {
                match maybe_new {
                    Some(new) => {
                        st.shared.comms.lock().insert(into.clone(), new);
                    }
                    None => {
                        // MPI_UNDEFINED: this rank is not in any new group.
                        st.shared.comms.lock().remove(into);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Execute `program` on `cfg.nprocs` simulated MPI processes and return the
/// recorded trace plus run metadata.
pub fn run(program: &Program, cfg: &RunConfig) -> RunResult {
    let sink = Arc::new(MemorySink::new());
    let mut result = run_with_sink(program, cfg, sink.clone());
    result.trace = sink.drain();
    result
}

/// [`run`], but streaming every recorded event into `sink` instead of
/// materializing a trace: the returned [`RunResult::trace`] is empty and
/// the sink sees events live, in recording (sequence) order — the hook the
/// online detection engine (`home-stream`) plugs into.
pub fn run_with_sink(program: &Program, cfg: &RunConfig, sink: Arc<dyn TraceSink>) -> RunResult {
    let program = Arc::new(program.clone());
    let cfg = Arc::new(cfg.clone());
    let rt = Runtime::new(cfg.sched.clone());
    let world = World::new(rt.clone(), cfg.nprocs, cfg.mpi.clone());
    let collector = Collector::new(sink, cfg.instrumentation.filter);
    let incidents = Arc::new(Mutex::new(Vec::new()));
    let runtime_errors = Arc::new(Mutex::new(Vec::new()));

    let mut omp_costs = cfg.omp_costs;
    omp_costs.event = cfg.instrumentation.event_cost;

    for r in 0..cfg.nprocs as u32 {
        let shared = ProcShared {
            program: Arc::clone(&program),
            cfg: Arc::clone(&cfg),
            mpi: world.process(r),
            omp: OmpProc::with_costs(rt.clone(), Rank(r), collector.clone(), omp_costs),
            requests: Arc::new(Mutex::new(HashMap::new())),
            comms: Arc::new(Mutex::new(HashMap::new())),
            incidents: Arc::clone(&incidents),
            runtime_errors: Arc::clone(&runtime_errors),
        };
        let program2 = Arc::clone(&program);
        rt.spawn(format!("rank{r}"), move || {
            let mut st = ExecState {
                shared: shared.clone(),
                env: Env::new(),
                omp: None,
                loop_index: None,
                call_depth: 0,
            };
            match exec_block(&mut st, &program2.body) {
                Ok(()) => {}
                Err(ExecError::Sched(_)) => {
                    // Deadlock/shutdown: recorded at the runtime level.
                }
                Err(ExecError::Runtime(msg)) => {
                    shared.runtime_errors.lock().push((r, msg));
                }
            }
        });
    }

    let sched_result = rt.run();
    let deadlock = match sched_result {
        Err(SchedError::Deadlock(d)) => Some(d),
        _ => None,
    };

    RunResult {
        trace: Trace::default(),
        makespan: rt.makespan(),
        events_recorded: collector.events_recorded(),
        deadlock,
        mpi_errors: Arc::try_unwrap(incidents)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone()),
        runtime_errors: Arc::try_unwrap(runtime_errors)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone()),
        tool: cfg.instrumentation.name.clone(),
    }
}
