//! The dynamic concurrency detector: Eraser-style locksets combined with
//! vector-clock happens-before, per the paper's Section IV-D.
//!
//! The detector runs offline over a recorded [`Trace`], per MPI process.
//! It reconstructs the happens-before partial order from synchronization
//! events (region fork/join, barriers with epochs, lock release→acquire)
//! and simultaneously maintains per-thread locksets. Depending on
//! [`DetectorMode`], a conflicting access pair (same location, different
//! logical threads, at least one write) is reported when it is
//! HB-concurrent, lockset-disjoint, or both (the paper's hybrid — fewer
//! false positives than either alone).
//!
//! Correctness of the single-pass algorithm relies on two recording-order
//! facts guaranteed by the runtime: (1) all pre-barrier events of every
//! participant have smaller sequence numbers than every barrier event of
//! that epoch, and (2) a region's fork event precedes all events of the
//! region's threads, whose events in turn precede the join event.

use crate::races::{Race, RaceAccess};
use home_trace::{
    AccessKind, BarrierId, Event, EventKind, FxHashMap, FxHashSet, HomeError, LockId, LocksetId,
    LocksetTable, MemLoc, Rank, RegionId, Tid, Trace, VectorClock,
};

/// Which predicate flags a conflicting access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorMode {
    /// Lockset-disjoint **and** HB-concurrent (the paper's combination).
    Hybrid,
    /// Lockset-disjoint only (classic Eraser — over-reports across
    /// fork/join and barriers).
    LocksetOnly,
    /// HB-concurrent only (pure happens-before — misses nothing it sees but
    /// depends entirely on sync edges).
    HappensBeforeOnly,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Flagging predicate.
    pub mode: DetectorMode,
    /// Per-location access-history cap (bounds the O(n²) pair check; the
    /// earliest accesses are kept since later duplicates rarely add
    /// distinct pairs).
    pub history_cap: usize,
    /// Ignore lock acquire/release events entirely (used to model the
    /// Intel-Thread-Checker baseline's blindness to `omp critical`).
    pub ignore_locks: bool,
    /// Report at most one race per (location, thread-pair) — keeps reports
    /// readable; disable for exhaustive counting.
    pub dedupe_pairs: bool,
    /// Worker threads for per-rank detection. Ranks are independent (the
    /// detector is offline and shares nothing across ranks), so they fan
    /// out over up to `jobs` threads; results merge back in rank order, so
    /// the output is identical for every value. `1` is exactly the serial
    /// path; the default is the machine's available parallelism.
    pub jobs: usize,
}

/// The machine's available parallelism (used as the default `jobs` value).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl DetectorConfig {
    /// The paper's hybrid configuration.
    pub fn hybrid() -> Self {
        DetectorConfig {
            mode: DetectorMode::Hybrid,
            history_cap: 512,
            ignore_locks: false,
            dedupe_pairs: true,
            jobs: default_jobs(),
        }
    }

    /// Lockset-only (ablation).
    pub fn lockset_only() -> Self {
        DetectorConfig {
            mode: DetectorMode::LocksetOnly,
            ..DetectorConfig::hybrid()
        }
    }

    /// HB-only (ablation).
    pub fn hb_only() -> Self {
        DetectorConfig {
            mode: DetectorMode::HappensBeforeOnly,
            ..DetectorConfig::hybrid()
        }
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig::hybrid()
    }
}

/// A logical thread segment: the sequential master spine is
/// `(None, Tid(0))`; each thread of a region instance is `(Some(r), t)`.
type SegKey = (Option<RegionId>, Tid);

/// One remembered access, stored FastTrack-style.
///
/// Instead of a full vector-clock snapshot, a record keeps only its
/// segment's *epoch* — `(slot, clock)`, the segment's own component at the
/// access. That is enough to decide HB-concurrency against any later
/// access exactly, because the detector's clocks obey two invariants:
///
/// 1. A slot's component only ever increases at its owning segment's
///    `tick`; every cross-clock flow (fork snapshot, release→acquire,
///    barrier join, region join, lazy fork inheritance) joins *full*
///    snapshots of whole clocks. Hence any clock `C` with
///    `C[slot] ≥ clock` has absorbed a snapshot of the owning segment
///    taken at-or-after the access, so `C ≥` the access's full clock.
///    Therefore `prev ≤ cur ⟺ prev.clock ≤ cur[prev.slot]`.
/// 2. The later access's own component was freshly ticked, so no earlier
///    record's clock can dominate it: `cur ≤ prev` is never true.
///
/// Together: `concurrent(prev, cur) ⟺ prev.clock > cur[prev.slot]` — an
/// O(1) comparison with no per-access clock clone. Locksets are interned
/// ids in the rank's [`LocksetTable`] for the same reason.
struct AccessRecord {
    seg: SegKey,
    /// The accessing segment's clock slot.
    slot: usize,
    /// The segment's own clock component at the access (post-tick).
    clock: u64,
    lockset: LocksetId,
    kind: AccessKind,
    access: RaceAccess,
}

/// All per-segment analysis state, held in one map entry so the hot path
/// pays one hash lookup per event instead of one per parallel map.
struct SegState {
    /// The segment's clock slot (unique per segment, never reused).
    slot: usize,
    vc: VectorClock,
    lockset: LocksetId,
}

struct RankState {
    segs: FxHashMap<SegKey, SegState>,
    /// Next clock slot to assign (monotone — slots are never reused, so
    /// remembered epochs can never alias another segment's component).
    next_slot: usize,
    lockset_table: LocksetTable,
    /// VC stored at the last release of each lock.
    release_vc: FxHashMap<LockId, VectorClock>,
    /// Master's VC at each region fork.
    fork_vc: FxHashMap<RegionId, VectorClock>,
    /// Join VC per barrier epoch, computed lazily on first arrival event.
    barrier_join: FxHashMap<(RegionId, BarrierId, u64), VectorClock>,
    history: FxHashMap<MemLoc, Vec<AccessRecord>>,
    history_overflow: bool,
}

impl RankState {
    fn new() -> Self {
        RankState {
            segs: FxHashMap::default(),
            next_slot: 0,
            lockset_table: LocksetTable::new(),
            release_vc: FxHashMap::default(),
            fork_vc: FxHashMap::default(),
            barrier_join: FxHashMap::default(),
            history: FxHashMap::default(),
            history_overflow: false,
        }
    }

    /// The segment's state, lazily initialized on first sight (region
    /// threads inherit the fork VC when one was recorded, and the fresh
    /// clock counts one local step). Unknown segment ids — possible in
    /// hand-built or corrupted offline traces — therefore get a fresh
    /// clock instead of a lookup failure.
    fn seg_mut(&mut self, seg: SegKey) -> &mut SegState {
        let RankState {
            segs,
            next_slot,
            fork_vc,
            ..
        } = self;
        segs.entry(seg).or_insert_with(|| {
            let slot = *next_slot;
            *next_slot += 1;
            let mut vc = match seg.0.and_then(|region| fork_vc.get(&region)) {
                Some(fork_vc) => fork_vc.clone(),
                None => VectorClock::new(),
            };
            vc.tick(slot);
            SegState {
                slot,
                vc,
                lockset: LocksetTable::EMPTY,
            }
        })
    }

    /// Advance the segment's clock one local step, returning
    /// `(slot, new own component)`.
    fn advance(&mut self, seg: SegKey) -> (usize, u64) {
        let state = self.seg_mut(seg);
        let value = state.vc.tick(state.slot);
        (state.slot, value)
    }
}

/// Aggregate statistics from one detection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// True if some location's access history hit the configured cap —
    /// pair coverage beyond the cap was dropped (raise
    /// [`DetectorConfig::history_cap`] to widen it).
    pub history_overflow: bool,
    /// Locations tracked across all ranks.
    pub locations: usize,
    /// Access events analyzed.
    pub accesses: usize,
}

/// Run the detector over a trace.
///
/// Structurally inconsistent input — e.g. a join event referencing a
/// region no fork ever announced, which a hand-built or corrupted offline
/// trace can contain — yields [`HomeError::CorruptTrace`], never a panic.
///
/// ```
/// use home_dynamic::{detect, DetectorConfig};
/// use home_trace::{AccessKind, Event, EventKind, MemLoc, Rank, RegionId, Tid, Trace, VarId};
///
/// // Two threads of one region write the same variable, unsynchronized.
/// let write = |seq, tid| Event {
///     seq,
///     rank: Rank(0),
///     tid: Tid(tid),
///     region: Some(RegionId(0)),
///     time_ns: seq,
///     loc: None,
///     kind: EventKind::Access { loc: MemLoc::Var(VarId(0)), kind: AccessKind::Write },
/// };
/// let trace = Trace::from_events(vec![write(0, 0), write(1, 1)]);
/// let races = detect(&trace, &DetectorConfig::hybrid()).unwrap();
/// assert_eq!(races.len(), 1);
/// ```
pub fn detect(trace: &Trace, config: &DetectorConfig) -> Result<Vec<Race>, HomeError> {
    Ok(detect_with_stats(trace, config)?.0)
}

/// [`detect`], additionally returning coverage statistics (so harnesses can
/// check that the history cap did not silently truncate pair coverage).
///
/// Ranks are analyzed independently (per the paper the detector is an
/// offline per-process pass), so with `config.jobs > 1` they fan out over
/// scoped worker threads. Each rank's result lands in its own indexed slot
/// and the slots are merged in rank order, so the returned races and stats
/// are identical for every `jobs` value.
pub fn detect_with_stats(
    trace: &Trace,
    config: &DetectorConfig,
) -> Result<(Vec<Race>, DetectStats), HomeError> {
    let ranks = trace.ranks();
    let jobs = config.jobs.max(1).min(ranks.len().max(1));

    type RankResult = Result<(Vec<Race>, DetectStats), HomeError>;
    let per_rank: Vec<RankResult> = if jobs <= 1 {
        ranks
            .iter()
            .map(|&rank| detect_rank(trace, rank, config))
            .collect()
    } else {
        let mut slots: Vec<Option<RankResult>> = Vec::new();
        slots.resize_with(ranks.len(), || None);
        let chunk = ranks.len().div_ceil(jobs);
        std::thread::scope(|scope| {
            for (slot_chunk, rank_chunk) in slots.chunks_mut(chunk).zip(ranks.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, &rank) in slot_chunk.iter_mut().zip(rank_chunk) {
                        *slot = Some(detect_rank(trace, rank, config));
                    }
                });
            }
        });
        // Every worker fills its whole chunk before the scope joins; an
        // empty slot would mean a lost worker, reported as an error rather
        // than a panic.
        slots
            .into_iter()
            .zip(ranks)
            .map(|(slot, &rank)| {
                slot.unwrap_or_else(|| {
                    Err(HomeError::corrupt_trace(format!(
                        "detector worker produced no result for {rank}"
                    )))
                })
            })
            .collect()
    };

    let mut races = Vec::new();
    let mut stats = DetectStats::default();
    for rank_result in per_rank {
        let (rank_races, rank_stats) = rank_result?;
        races.extend(rank_races);
        stats.history_overflow |= rank_stats.history_overflow;
        stats.locations += rank_stats.locations;
        stats.accesses += rank_stats.accesses;
    }
    Ok((races, stats))
}

/// Participants of each barrier epoch and of each region, gathered in a
/// pre-scan (needed to compute barrier joins on first arrival).
struct PreScan {
    barrier_participants: FxHashMap<(RegionId, BarrierId, u64), Vec<SegKey>>,
    region_threads: FxHashMap<RegionId, Vec<SegKey>>,
}

fn pre_scan(trace: &Trace, rank: Rank) -> PreScan {
    let mut barrier_participants: FxHashMap<(RegionId, BarrierId, u64), Vec<SegKey>> =
        FxHashMap::default();
    let mut region_threads: FxHashMap<RegionId, Vec<SegKey>> = FxHashMap::default();
    for e in trace.by_rank(rank) {
        let seg: SegKey = (e.region, e.tid);
        if let Some(region) = e.region {
            let v = region_threads.entry(region).or_default();
            if !v.contains(&seg) {
                v.push(seg);
            }
        }
        if let (Some(region), EventKind::Barrier { barrier, epoch }) = (e.region, &e.kind) {
            let v = barrier_participants
                .entry((region, *barrier, *epoch))
                .or_default();
            if !v.contains(&seg) {
                v.push(seg);
            }
        }
    }
    PreScan {
        barrier_participants,
        region_threads,
    }
}

/// Analyze one rank's events, returning its races and coverage stats.
/// Pure in `trace` — callers may run ranks on separate threads. A trace
/// that violates the recording-order invariants (join of a region never
/// forked and never populated) is reported as [`HomeError::CorruptTrace`].
fn detect_rank(
    trace: &Trace,
    rank: Rank,
    config: &DetectorConfig,
) -> Result<(Vec<Race>, DetectStats), HomeError> {
    let mut races = Vec::new();
    let scan = pre_scan(trace, rank);
    let mut st = RankState::new();
    let mut reported: FxHashSet<(MemLoc, SegKey, SegKey, u32, u32)> = FxHashSet::default();

    for e in trace.by_rank(rank) {
        let seg: SegKey = (e.region, e.tid);
        match &e.kind {
            EventKind::Fork { region, .. } => {
                let vc = st.seg_mut(seg).vc.clone();
                st.fork_vc.insert(*region, vc);
                st.advance(seg);
            }
            EventKind::JoinRegion { region } => {
                // A join must refer to a region the trace knows about —
                // either its fork was recorded or some thread ran in it.
                // Anything else is a hand-built/corrupted trace.
                if !st.fork_vc.contains_key(region) && !scan.region_threads.contains_key(region) {
                    return Err(HomeError::corrupt_trace(format!(
                        "join event at seq {} on {rank} references unknown segment {region} \
                         (no fork recorded and no thread events)",
                        e.seq
                    )));
                }
                // Join all region threads' final VCs into the spine. The
                // spine state is temporarily detached so the sibling clocks
                // can be borrowed in place instead of cloned.
                st.seg_mut(seg);
                if let Some(mut state) = st.segs.remove(&seg) {
                    for s in scan.region_threads.get(region).into_iter().flatten() {
                        if let Some(j) = st.segs.get(s) {
                            state.vc.join(&j.vc);
                        }
                    }
                    st.segs.insert(seg, state);
                }
                st.advance(seg);
            }
            EventKind::Barrier { barrier, epoch } => {
                if let Some(region) = e.region {
                    let key = (region, *barrier, *epoch);
                    if !st.barrier_join.contains_key(&key) {
                        // First arrival processed: every participant's
                        // pre-barrier events are already folded into its
                        // current VC (recording-order guarantee), so the
                        // epoch join is computable now, from borrowed
                        // participant clocks.
                        let mut join = VectorClock::new();
                        for p in scan.barrier_participants.get(&key).into_iter().flatten() {
                            join.join(&st.seg_mut(*p).vc);
                        }
                        st.barrier_join.insert(key, join);
                    }
                    st.seg_mut(seg);
                    let RankState {
                        segs, barrier_join, ..
                    } = &mut st;
                    if let (Some(join), Some(state)) = (barrier_join.get(&key), segs.get_mut(&seg))
                    {
                        state.vc.join(join);
                    }
                    st.advance(seg);
                }
            }
            EventKind::Acquire { lock } => {
                if !config.ignore_locks {
                    st.seg_mut(seg);
                    let RankState {
                        segs,
                        release_vc,
                        lockset_table,
                        ..
                    } = &mut st;
                    if let Some(state) = segs.get_mut(&seg) {
                        if let Some(rvc) = release_vc.get(lock) {
                            state.vc.join(rvc);
                        }
                        state.lockset = lockset_table.with_insert(state.lockset, *lock);
                        state.vc.tick(state.slot);
                    }
                }
            }
            EventKind::Release { lock } => {
                if !config.ignore_locks {
                    st.seg_mut(seg);
                    let RankState {
                        segs,
                        release_vc,
                        lockset_table,
                        ..
                    } = &mut st;
                    if let Some(state) = segs.get_mut(&seg) {
                        state.lockset = lockset_table.with_remove(state.lockset, *lock);
                        release_vc.insert(*lock, state.vc.clone());
                        state.vc.tick(state.slot);
                    }
                }
            }
            kind => {
                if let Some((loc, akind)) = kind.access() {
                    let state = st.seg_mut(seg);
                    let clock = state.vc.tick(state.slot);
                    let record = AccessRecord {
                        seg,
                        slot: state.slot,
                        clock,
                        lockset: state.lockset,
                        kind: akind,
                        access: race_access(e, akind),
                    };
                    let RankState {
                        history,
                        lockset_table,
                        history_overflow,
                        segs,
                        ..
                    } = &mut st;
                    if let Some(state) = segs.get(&seg) {
                        check_and_insert(
                            history,
                            lockset_table,
                            history_overflow,
                            rank,
                            loc,
                            record,
                            &state.vc,
                            config,
                            &mut reported,
                            &mut races,
                        );
                    }
                } else {
                    // MpiCall / MpiInit entries advance program order only.
                    st.advance(seg);
                }
            }
        }
    }
    let stats = DetectStats {
        history_overflow: st.history_overflow,
        locations: st.history.len(),
        accesses: st.history.values().map(Vec::len).sum::<usize>(),
    };
    Ok((races, stats))
}

fn race_access(e: &Event, kind: AccessKind) -> RaceAccess {
    RaceAccess {
        seq: e.seq,
        tid: e.tid,
        region: e.region,
        kind,
        loc: e.loc.clone(),
        mpi: e.kind.mpi_call().cloned(),
    }
}

#[allow(clippy::too_many_arguments)]
fn check_and_insert(
    all_history: &mut FxHashMap<MemLoc, Vec<AccessRecord>>,
    lockset_table: &mut LocksetTable,
    history_overflow: &mut bool,
    rank: Rank,
    loc: MemLoc,
    record: AccessRecord,
    cur_vc: &VectorClock,
    config: &DetectorConfig,
    reported: &mut FxHashSet<(MemLoc, SegKey, SegKey, u32, u32)>,
    races: &mut Vec<Race>,
) {
    // Segments of the same physical thread: the spine (None, 0) and any
    // region-master segment (Some(_), 0) share tid 0 of this process and
    // are ordered by fork/join edges anyway; explicit exclusion guards the
    // lockset-only mode.
    let same_physical = |a: SegKey, b: SegKey| a.1 == b.1 && (a.1 == Tid(0) || a.0 == b.0);

    let history = all_history.entry(loc).or_default();
    for prev in history.iter() {
        if prev.seg == record.seg || same_physical(prev.seg, record.seg) {
            continue;
        }
        if prev.kind == AccessKind::Read && record.kind == AccessKind::Read {
            continue;
        }
        // The FastTrack epoch check (see [`AccessRecord`]): `prev` is
        // HB-concurrent with the current access iff its own clock component
        // exceeds the current clock's entry for its slot.
        let hb_concurrent = || prev.clock > cur_vc.get(prev.slot);
        let is_race = match config.mode {
            DetectorMode::Hybrid => {
                hb_concurrent() && lockset_table.disjoint(prev.lockset, record.lockset)
            }
            DetectorMode::LocksetOnly => lockset_table.disjoint(prev.lockset, record.lockset),
            DetectorMode::HappensBeforeOnly => hb_concurrent(),
        };
        if is_race {
            // Dedupe per (location, segment pair, call-site pair): repeated
            // executions of one racy pair report once, but distinct racy
            // call sites each get their own report.
            let line = |a: &RaceAccess| a.loc.as_ref().map(|l| l.line).unwrap_or(0);
            let (la, lb) = (line(&prev.access), line(&record.access));
            let key = (
                loc,
                prev.seg.min(record.seg),
                prev.seg.max(record.seg),
                la.min(lb),
                la.max(lb),
            );
            if config.dedupe_pairs && !reported.insert(key) {
                continue;
            }
            races.push(Race {
                rank,
                loc,
                first: prev.access.clone(),
                second: record.access.clone(),
            });
        }
    }
    if history.len() < config.history_cap {
        history.push(record);
    } else {
        *history_overflow = true;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use home_trace::{MonitoredVar, MpiCallKind, MpiCallRecord, SrcLoc, VarId};

    /// Tiny trace builder for handcrafted scenarios.
    struct TB {
        events: Vec<Event>,
        seq: u64,
    }

    impl TB {
        fn new() -> TB {
            TB {
                events: Vec::new(),
                seq: 0,
            }
        }

        fn ev(&mut self, tid: u32, region: Option<u64>, kind: EventKind) -> &mut Self {
            self.events.push(Event {
                seq: self.seq,
                rank: Rank(0),
                tid: Tid(tid),
                region: region.map(RegionId),
                time_ns: self.seq,
                loc: Some(SrcLoc::new("t.hmp", self.seq as u32 + 1)),
                kind,
            });
            self.seq += 1;
            self
        }

        fn write(&mut self, tid: u32, region: Option<u64>, var: u32) -> &mut Self {
            self.ev(
                tid,
                region,
                EventKind::Access {
                    loc: MemLoc::Var(VarId(var)),
                    kind: AccessKind::Write,
                },
            )
        }

        /// A write whose event carries a fixed source line (same call site
        /// across repetitions).
        fn write_at(&mut self, tid: u32, region: Option<u64>, var: u32, line: u32) -> &mut Self {
            self.events.push(Event {
                seq: self.seq,
                rank: Rank(0),
                tid: Tid(tid),
                region: region.map(RegionId),
                time_ns: self.seq,
                loc: Some(SrcLoc::new("t.hmp", line)),
                kind: EventKind::Access {
                    loc: MemLoc::Var(VarId(var)),
                    kind: AccessKind::Write,
                },
            });
            self.seq += 1;
            self
        }

        fn read(&mut self, tid: u32, region: Option<u64>, var: u32) -> &mut Self {
            self.ev(
                tid,
                region,
                EventKind::Access {
                    loc: MemLoc::Var(VarId(var)),
                    kind: AccessKind::Read,
                },
            )
        }

        fn fork(&mut self, region: u64, n: u32) -> &mut Self {
            self.ev(
                0,
                None,
                EventKind::Fork {
                    region: RegionId(region),
                    nthreads: n,
                },
            )
        }

        fn join(&mut self, region: u64) -> &mut Self {
            self.ev(
                0,
                None,
                EventKind::JoinRegion {
                    region: RegionId(region),
                },
            )
        }

        fn acquire(&mut self, tid: u32, region: u64, lock: u32) -> &mut Self {
            self.ev(tid, Some(region), EventKind::Acquire { lock: LockId(lock) })
        }

        fn release(&mut self, tid: u32, region: u64, lock: u32) -> &mut Self {
            self.ev(tid, Some(region), EventKind::Release { lock: LockId(lock) })
        }

        fn barrier(&mut self, tid: u32, region: u64, epoch: u64) -> &mut Self {
            self.ev(
                tid,
                Some(region),
                EventKind::Barrier {
                    barrier: BarrierId(region as u32),
                    epoch,
                },
            )
        }

        fn trace(&self) -> Trace {
            Trace::from_events(self.events.clone())
        }
    }

    fn hybrid(trace: &Trace) -> Vec<Race> {
        detect(trace, &DetectorConfig::hybrid()).unwrap()
    }

    #[test]
    fn unsynchronized_concurrent_writes_race() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .write(0, Some(0), 7)
            .write(1, Some(0), 7)
            .join(0);
        let races = hybrid(&tb.trace());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].loc, MemLoc::Var(VarId(7)));
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .read(0, Some(0), 7)
            .read(1, Some(0), 7)
            .join(0);
        assert!(hybrid(&tb.trace()).is_empty());
    }

    #[test]
    fn write_read_is_a_race() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .write(0, Some(0), 7)
            .read(1, Some(0), 7)
            .join(0);
        assert_eq!(hybrid(&tb.trace()).len(), 1);
    }

    #[test]
    fn different_locations_do_not_race() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .write(0, Some(0), 7)
            .write(1, Some(0), 8)
            .join(0);
        assert!(hybrid(&tb.trace()).is_empty());
    }

    #[test]
    fn common_lock_prevents_race() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .acquire(0, 0, 1)
            .write(0, Some(0), 7)
            .release(0, 0, 1)
            .acquire(1, 0, 1)
            .write(1, Some(0), 7)
            .release(1, 0, 1)
            .join(0);
        assert!(hybrid(&tb.trace()).is_empty());
    }

    #[test]
    fn disjoint_locks_still_race() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .acquire(0, 0, 1)
            .write(0, Some(0), 7)
            .release(0, 0, 1)
            .acquire(1, 0, 2)
            .write(1, Some(0), 7)
            .release(1, 0, 2)
            .join(0);
        assert_eq!(hybrid(&tb.trace()).len(), 1);
    }

    #[test]
    fn fork_join_orders_spine_accesses() {
        // Spine writes before fork and after join must not race with the
        // region's writes.
        let mut tb = TB::new();
        tb.write(0, None, 7)
            .fork(0, 2)
            .write(1, Some(0), 7)
            .join(0)
            .write(0, None, 7);
        assert!(hybrid(&tb.trace()).is_empty());
    }

    #[test]
    fn barrier_separates_phases() {
        // t0 writes before the barrier, t1 writes after: ordered.
        let mut tb = TB::new();
        tb.fork(0, 2)
            .write(0, Some(0), 7)
            .barrier(0, 0, 0)
            .barrier(1, 0, 0)
            .write(1, Some(0), 7)
            .join(0);
        assert!(hybrid(&tb.trace()).is_empty());
    }

    #[test]
    fn writes_within_same_barrier_phase_race() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .barrier(0, 0, 0)
            .barrier(1, 0, 0)
            .write(0, Some(0), 7)
            .write(1, Some(0), 7)
            .join(0);
        assert_eq!(hybrid(&tb.trace()).len(), 1);
    }

    #[test]
    fn lockset_only_overreports_across_barrier() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .write(0, Some(0), 7)
            .barrier(0, 0, 0)
            .barrier(1, 0, 0)
            .write(1, Some(0), 7)
            .join(0);
        let t = tb.trace();
        assert!(detect(&t, &DetectorConfig::hybrid()).unwrap().is_empty());
        assert_eq!(
            detect(&t, &DetectorConfig::lockset_only()).unwrap().len(),
            1
        );
    }

    #[test]
    fn hb_only_flags_lock_protected_unordered_writes_the_same_as_lock_edges_allow() {
        // With release→acquire edges, lock-protected writes are ordered, so
        // HB-only agrees with hybrid here.
        let mut tb = TB::new();
        tb.fork(0, 2)
            .acquire(0, 0, 1)
            .write(0, Some(0), 7)
            .release(0, 0, 1)
            .acquire(1, 0, 1)
            .write(1, Some(0), 7)
            .release(1, 0, 1)
            .join(0);
        let t = tb.trace();
        assert!(detect(&t, &DetectorConfig::hb_only()).unwrap().is_empty());
    }

    #[test]
    fn ignore_locks_reintroduces_critical_race() {
        // The ITC model: blind to omp critical → reports a false positive.
        let mut tb = TB::new();
        tb.fork(0, 2)
            .acquire(0, 0, 1)
            .write(0, Some(0), 7)
            .release(0, 0, 1)
            .acquire(1, 0, 1)
            .write(1, Some(0), 7)
            .release(1, 0, 1)
            .join(0);
        let t = tb.trace();
        let cfg = DetectorConfig {
            ignore_locks: true,
            ..DetectorConfig::hybrid()
        };
        assert_eq!(
            detect(&t, &cfg).unwrap().len(),
            1,
            "critical-blind detector flags it"
        );
    }

    #[test]
    fn monitored_writes_race_and_carry_mpi_records() {
        let mut tb = TB::new();
        let call = |tag: i32| MpiCallRecord {
            kind: MpiCallKind::Recv,
            peer: Some(0),
            tag: Some(tag),
            comm: home_trace::COMM_WORLD,
            request: None,
            is_main_thread: false,
            thread_level: Some(home_trace::ThreadLevel::Multiple),
        };
        tb.fork(0, 2)
            .ev(
                0,
                Some(0),
                EventKind::MonitoredWrite {
                    var: MonitoredVar::Tag,
                    call: call(0),
                },
            )
            .ev(
                1,
                Some(0),
                EventKind::MonitoredWrite {
                    var: MonitoredVar::Tag,
                    call: call(0),
                },
            )
            .join(0);
        let races = hybrid(&tb.trace());
        assert_eq!(races.len(), 1);
        assert!(races[0].is_monitored());
        assert_eq!(races[0].loc, MemLoc::Monitored(MonitoredVar::Tag));
    }

    #[test]
    fn races_in_different_regions_are_separated_by_spine() {
        let mut tb = TB::new();
        tb.fork(0, 2)
            .write(1, Some(0), 7)
            .join(0)
            .fork(1, 2)
            .write(1, Some(1), 7)
            .join(1);
        assert!(hybrid(&tb.trace()).is_empty());
    }

    #[test]
    fn dedupe_reports_one_race_per_call_site_pair() {
        // The same two call sites (fixed lines) race repeatedly: one report.
        let mut tb = TB::new();
        tb.fork(0, 2);
        for _ in 0..5 {
            tb.write_at(0, Some(0), 7, 100).write_at(1, Some(0), 7, 200);
        }
        tb.join(0);
        let t = tb.trace();
        assert_eq!(hybrid(&t).len(), 1);
        let cfg = DetectorConfig {
            dedupe_pairs: false,
            ..DetectorConfig::hybrid()
        };
        assert!(detect(&t, &cfg).unwrap().len() > 1);
    }

    #[test]
    fn distinct_call_sites_each_report() {
        // Two independent racy pairs at different lines in one region must
        // both be reported (regression: an earlier dedupe keyed only on the
        // thread pair and shadowed the second site).
        let mut tb = TB::new();
        tb.fork(0, 2);
        tb.write_at(0, Some(0), 7, 10).write_at(1, Some(0), 7, 10);
        tb.write_at(0, Some(0), 7, 20).write_at(1, Some(0), 7, 20);
        tb.join(0);
        let races = hybrid(&tb.trace());
        let mut lines: Vec<u32> = races
            .iter()
            .flat_map(|r| [&r.first, &r.second])
            .filter_map(|a| a.loc.as_ref().map(|l| l.line))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        assert!(lines.contains(&10) && lines.contains(&20), "{races:?}");
    }

    #[test]
    fn history_cap_overflow_is_reported_not_silent() {
        let mut tb = TB::new();
        tb.fork(0, 2);
        for _ in 0..20 {
            tb.write(0, Some(0), 7);
        }
        tb.join(0);
        let t = tb.trace();
        let tight = DetectorConfig {
            history_cap: 4,
            ..DetectorConfig::hybrid()
        };
        let (_, stats) = detect_with_stats(&t, &tight).unwrap();
        assert!(stats.history_overflow, "cap of 4 must overflow");
        let (_, stats) = detect_with_stats(&t, &DetectorConfig::hybrid()).unwrap();
        assert!(!stats.history_overflow);
        assert!(stats.locations >= 1);
        assert!(stats.accesses >= 4);
    }

    #[test]
    fn join_of_unknown_segment_is_a_typed_error_not_a_panic() {
        // A hand-built (or corrupted) offline trace whose join event
        // references a region that was never forked and has no thread
        // events: the detector must degrade to a CorruptTrace error.
        let mut tb = TB::new();
        tb.write(0, None, 7).ev(
            0,
            None,
            EventKind::JoinRegion {
                region: RegionId(42),
            },
        );
        let err = detect(&tb.trace(), &DetectorConfig::hybrid()).unwrap_err();
        assert_eq!(err.category(), "corrupt-trace");
        assert!(err.to_string().contains("unknown segment"), "{err}");
        assert!(err.to_string().contains("region42"), "{err}");
    }

    #[test]
    fn join_of_forked_empty_region_is_fine() {
        // Fork immediately followed by join (no thread events) is a legal
        // recording of an empty region — not corruption.
        let mut tb = TB::new();
        tb.fork(3, 2).join(3);
        assert!(hybrid(&tb.trace()).is_empty());
    }

    #[test]
    fn parallel_rank_detection_matches_serial() {
        // A multi-rank trace with real races on each rank: results must be
        // identical whatever the jobs count, including the stats.
        let mut events = Vec::new();
        let mut seq = 0u64;
        for rank in 0..4u32 {
            events.push(Event {
                seq,
                rank: Rank(rank),
                tid: Tid(0),
                region: None,
                time_ns: seq,
                loc: None,
                kind: EventKind::Fork {
                    region: RegionId(0),
                    nthreads: 2,
                },
            });
            seq += 1;
            for tid in 0..2u32 {
                events.push(Event {
                    seq,
                    rank: Rank(rank),
                    tid: Tid(tid),
                    region: Some(RegionId(0)),
                    time_ns: seq,
                    loc: Some(SrcLoc::new("p.hmp", seq as u32 + 1)),
                    kind: EventKind::Access {
                        loc: MemLoc::Var(VarId(rank)),
                        kind: AccessKind::Write,
                    },
                });
                seq += 1;
            }
        }
        let t = Trace::from_events(events);
        let serial = DetectorConfig {
            jobs: 1,
            ..DetectorConfig::hybrid()
        };
        let (races_1, stats_1) = detect_with_stats(&t, &serial).unwrap();
        for jobs in [2, 3, 4, 8] {
            let parallel = DetectorConfig {
                jobs,
                ..DetectorConfig::hybrid()
            };
            let (races_n, stats_n) = detect_with_stats(&t, &parallel).unwrap();
            assert_eq!(stats_1, stats_n, "stats differ at jobs={jobs}");
            assert_eq!(races_1.len(), races_n.len(), "race count at jobs={jobs}");
            for (a, b) in races_1.iter().zip(&races_n) {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "order at jobs={jobs}");
            }
        }
        assert_eq!(races_1.len(), 4, "one race per rank");
    }

    #[test]
    fn ranks_are_analyzed_independently() {
        // Same variable written by threads of *different ranks* — not a
        // shared-memory race.
        let mut events = Vec::new();
        for (seq, rank) in [(0u64, 0u32), (1, 1)] {
            events.push(Event {
                seq,
                rank: Rank(rank),
                tid: Tid(0),
                region: Some(RegionId(0)),
                time_ns: 0,
                loc: None,
                kind: EventKind::Access {
                    loc: MemLoc::Var(VarId(7)),
                    kind: AccessKind::Write,
                },
            });
        }
        let t = Trace::from_events(events);
        assert!(hybrid(&t).is_empty());
    }
}
