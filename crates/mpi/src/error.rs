//! MPI simulator errors.

use home_sched::SchedError;
use home_trace::MpiCallKind;

/// Errors surfaced by simulated MPI calls.
///
/// Real MPI leaves most misuse as undefined behaviour; the simulator instead
/// reports it precisely, which both keeps the harness robust and gives the
/// checkers a ground truth to compare against.
#[derive(Debug, Clone, PartialEq)]
pub enum MpiError {
    /// An MPI call before `MPI_Init`/`MPI_Init_thread`.
    NotInitialized,
    /// `MPI_Init` called twice by the same process.
    AlreadyInitialized,
    /// An MPI call after `MPI_Finalize` on this process.
    AlreadyFinalized,
    /// A rank outside the communicator.
    InvalidRank { rank: i32, comm_size: usize },
    /// Unknown communicator handle.
    InvalidComm,
    /// Two processes (or two threads of one process) reached the same
    /// collective slot with different operations — the observable corruption
    /// caused by concurrent collective calls on one communicator.
    CollectiveMismatch {
        expected: MpiCallKind,
        got: MpiCallKind,
    },
    /// Mismatched payload lengths in a reduction.
    PayloadMismatch { expected: usize, got: usize },
    /// Unknown request handle.
    RequestUnknown,
    /// A request was completed twice (e.g. two threads concurrently waiting
    /// on the same shared request — the paper's request violation).
    RequestConsumed,
    /// The scheduler detected a deadlock or was shut down while this call
    /// was blocked.
    Sched(SchedError),
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::NotInitialized => write!(f, "MPI call before MPI_Init"),
            MpiError::AlreadyInitialized => write!(f, "MPI_Init called twice"),
            MpiError::AlreadyFinalized => write!(f, "MPI call after MPI_Finalize"),
            MpiError::InvalidRank { rank, comm_size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {comm_size}"
                )
            }
            MpiError::InvalidComm => write!(f, "invalid communicator"),
            MpiError::CollectiveMismatch { expected, got } => {
                write!(f, "collective mismatch: slot expects {expected}, got {got}")
            }
            MpiError::PayloadMismatch { expected, got } => {
                write!(f, "payload length mismatch: expected {expected}, got {got}")
            }
            MpiError::RequestUnknown => write!(f, "unknown MPI request"),
            MpiError::RequestConsumed => write!(f, "MPI request already completed/consumed"),
            MpiError::Sched(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MpiError {}

impl From<SchedError> for MpiError {
    fn from(e: SchedError) -> Self {
        MpiError::Sched(e)
    }
}

/// Result alias for simulated MPI calls.
pub type MpiResult<T> = Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert!(MpiError::NotInitialized.to_string().contains("MPI_Init"));
        assert!(MpiError::InvalidRank {
            rank: 9,
            comm_size: 4
        }
        .to_string()
        .contains("9"));
        let m = MpiError::CollectiveMismatch {
            expected: MpiCallKind::Barrier,
            got: MpiCallKind::Bcast,
        };
        assert!(m.to_string().contains("MPI_Barrier"));
        assert!(m.to_string().contains("MPI_Bcast"));
    }

    #[test]
    fn sched_error_converts() {
        let e: MpiError = SchedError::Shutdown.into();
        assert_eq!(e, MpiError::Sched(SchedError::Shutdown));
    }
}
