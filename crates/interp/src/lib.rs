//! # home-interp — executing hybrid programs on the simulators
//!
//! The interpreter plays the role Intel Pin plays in the paper: it runs a
//! hybrid program (as [`home_ir::Program`] IR) on the simulated MPI world
//! and OpenMP runtime, emitting instrumentation events — *selectively*,
//! under control of the static checklist, exactly as HOME's wrapper
//! replacement does, or exhaustively for the baseline tools.
//!
//! Entry point: [`run`] with a [`RunConfig`]; the result carries the
//! recorded [`home_trace::Trace`], the simulated makespan (the quantity the
//! paper's figures plot), any deadlock, and non-fatal MPI misuse incidents.

mod config;
mod env;
mod exec;

pub use config::{Instrumentation, RunConfig};
pub use env::{Env, Slot};
pub use exec::{run, run_with_sink, ExecError, MpiIncident, RunResult};

#[cfg(test)]
mod tests {
    use super::*;
    use home_ir::parse;
    use home_static::analyze;
    use home_trace::{EventKind, MonitoredVar, Rank};
    use std::sync::Arc;

    fn run_src(src: &str, nprocs: usize, seed: u64) -> RunResult {
        let p = parse(src).unwrap();
        run(&p, &RunConfig::test(nprocs, seed))
    }

    #[test]
    fn sequential_program_runs_clean() {
        let r = run_src(
            r#"
            program seq {
                mpi_init_thread(multiple);
                int x = 3;
                x = x * 2 + 1;
                compute(x * 10);
                mpi_finalize();
            }
            "#,
            2,
            0,
        );
        assert!(r.clean(), "{:?} {:?}", r.deadlock, r.runtime_errors);
        assert!(r.mpi_errors.is_empty());
    }

    #[test]
    fn p2p_roundtrip_between_ranks() {
        let r = run_src(
            r#"
            program ring {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 9, count: 4);
                    mpi_recv(from: 1, tag: 10);
                }
                if (rank == 1) {
                    mpi_recv(from: 0, tag: 9);
                    mpi_send(to: 0, tag: 10, count: 4);
                }
                mpi_finalize();
            }
            "#,
            2,
            1,
        );
        assert!(r.clean());
        assert!(r.mpi_errors.is_empty());
    }

    #[test]
    fn parallel_region_uses_team_and_emits_monitored_writes() {
        let r = run_src(
            r#"
            program par {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    mpi_send(to: rank, tag: tid, count: 1);
                    mpi_recv(from: rank, tag: tid);
                }
                mpi_finalize();
            }
            "#,
            1,
            2,
        );
        assert!(r.clean());
        // 2 threads × 2 calls × 3 monitored vars, plus the finalize marker.
        let mw = r.trace.monitored_writes().count();
        assert_eq!(mw, 13);
        assert_eq!(r.trace.monitored_writes_of(MonitoredVar::Tag).count(), 4);
        let tags: Vec<i32> = r
            .trace
            .monitored_writes_of(MonitoredVar::Tag)
            .filter_map(|e| e.kind.mpi_call().and_then(|c| c.tag))
            .collect();
        assert!(tags.contains(&0) && tags.contains(&1));
    }

    #[test]
    fn selective_instrumentation_skips_sequential_calls() {
        let src = r#"
            program filter {
                mpi_init_thread(multiple);
                mpi_barrier();
                omp parallel num_threads(2) {
                    mpi_barrier();
                }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let checklist = Arc::new(analyze(&p).checklist.clone());
        let cfg = RunConfig::test(2, 3)
            .with_instrumentation(Instrumentation::home())
            .with_checklist(checklist);
        let r = run(&p, &cfg);
        // Only the in-region barrier is wrapped: one MonitoredWrite set per
        // rank per thread for collective+comm, nothing for the sequential
        // barrier or finalize.
        let collective_writes = r
            .trace
            .monitored_writes_of(MonitoredVar::Collective)
            .count();
        assert_eq!(collective_writes, 2 * 2, "2 ranks × 2 threads");
        assert_eq!(
            r.trace.monitored_writes_of(MonitoredVar::Finalize).count(),
            0
        );
    }

    #[test]
    fn per_site_checklist_shrinks_monitored_writes_but_not_mpi_calls() {
        let src = r#"
            program shrink {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    mpi_send(to: rank, tag: tid, count: 1);
                    mpi_recv(from: rank, tag: tid);
                    mpi_barrier();
                }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let checklist = analyze(&p).checklist;
        let run_with = |cl: home_static::Checklist, seed: u64| {
            let cfg = RunConfig::test(1, seed)
                .with_instrumentation(Instrumentation::home())
                .with_checklist(Arc::new(cl));
            run(&p, &cfg)
        };
        let per_site = run_with(checklist.clone(), 5);
        let coarse = run_with(checklist.coarse(), 5);
        // Same sites wrapped either way.
        assert_eq!(
            per_site.trace.mpi_calls().count(),
            coarse.trace.mpi_calls().count()
        );
        // Coarse: p2p writes src+tag+comm, barrier writes collective+comm.
        // Per-site: p2p writes only tagtmp, barrier only collectivetmp.
        let mw_coarse = coarse.trace.monitored_writes().count();
        let mw_per_site = per_site.trace.monitored_writes().count();
        assert_eq!(
            mw_coarse,
            2 * (2 * 3 + 2),
            "2 threads × (2 p2p × 3 + collective × 2)"
        );
        assert_eq!(mw_per_site, 6, "2 threads × (2 p2p × 1 + collective × 1)");
        assert!(mw_per_site < mw_coarse);
        // The rule-bearing writes are untouched.
        assert_eq!(
            per_site
                .trace
                .monitored_writes_of(MonitoredVar::Tag)
                .count(),
            coarse.trace.monitored_writes_of(MonitoredVar::Tag).count()
        );
        assert_eq!(
            per_site
                .trace
                .monitored_writes_of(MonitoredVar::Collective)
                .count(),
            coarse
                .trace
                .monitored_writes_of(MonitoredVar::Collective)
                .count()
        );
    }

    #[test]
    fn unselective_tools_ignore_per_site_sets() {
        let src = r#"
            program unsel {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) { mpi_barrier(); }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let checklist = Arc::new(analyze(&p).checklist);
        // `RunConfig::test` wraps everything (selective = false): the
        // per-kind table applies even though the checklist carries
        // per-site sets.
        let r = run(&p, &RunConfig::test(1, 4).with_checklist(checklist));
        assert_eq!(
            r.trace.monitored_writes_of(MonitoredVar::Comm).count(),
            2,
            "collective wrapper still writes commtmp when unselective"
        );
        assert_eq!(
            r.trace.monitored_writes_of(MonitoredVar::Finalize).count(),
            1
        );
    }

    #[test]
    fn case_study_2_same_tag_runs_but_mixes_messages_across_threads() {
        // Paper Figure 2: both threads of each rank send/recv with the same
        // tag, so arrival messages are not differentiated per thread. The
        // message *count* balances, so the run completes — but which thread
        // receives which message is schedule-dependent (the concurrency
        // violation HOME flags on srctmp/tagtmp). We check the monitored
        // writes expose the shared-tag calls from both threads.
        let src = r#"
            program case2 {
                mpi_init_thread(multiple);
                shared int tag = 0;
                omp parallel num_threads(2) {
                    if (rank == 0) {
                        mpi_send(to: 1, tag: tag, count: 1);
                        mpi_recv(from: 1, tag: tag);
                    }
                    if (rank == 1) {
                        mpi_recv(from: 0, tag: tag);
                        mpi_send(to: 0, tag: tag, count: 1);
                    }
                }
                mpi_finalize();
            }
        "#;
        for seed in 0..10 {
            let r = run_src(src, 2, seed);
            assert!(r.deadlock.is_none(), "balanced exchange completes");
            // Both threads of each rank wrote tagtmp with the same tag 0.
            let mut per_rank_threads: std::collections::HashMap<
                Rank,
                std::collections::HashSet<home_trace::Tid>,
            > = Default::default();
            for e in r.trace.monitored_writes_of(MonitoredVar::Tag) {
                assert_eq!(e.kind.mpi_call().unwrap().tag, Some(0));
                per_rank_threads.entry(e.rank).or_default().insert(e.tid);
            }
            assert!(per_rank_threads.values().all(|t| t.len() == 2));
        }
    }

    #[test]
    fn unbalanced_same_tag_recv_deadlocks_and_is_reported() {
        // A genuinely stuck variant: rank 0 sends a single message while
        // both rank-1 threads block in recv with the same tag — one thread
        // can never be served. The scheduler's whole-system deadlock
        // detection must catch and describe it.
        let src = r#"
            program stuck {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 0, count: 1);
                    mpi_recv(from: 1, tag: 7);
                }
                if (rank == 1) {
                    omp parallel num_threads(2) {
                        mpi_recv(from: 0, tag: 0);
                    }
                    mpi_send(to: 0, tag: 7, count: 1);
                }
                mpi_finalize();
            }
        "#;
        for seed in 0..5 {
            let r = run_src(src, 2, seed);
            let d = r.deadlock.expect("must deadlock");
            assert!(
                d.involves("MPI_Wait") || d.involves("MPI_Recv") || d.involves("recv"),
                "deadlock report should mention the blocked receive: {d}"
            );
        }
    }

    #[test]
    fn thread_distinct_tags_fix_case_study_2() {
        let src = r#"
            program case2fixed {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    if (rank == 0) {
                        mpi_send(to: 1, tag: tid, count: 1);
                        mpi_recv(from: 1, tag: tid);
                    }
                    if (rank == 1) {
                        mpi_recv(from: 0, tag: tid);
                        mpi_send(to: 0, tag: tid, count: 1);
                    }
                }
                mpi_finalize();
            }
        "#;
        for seed in 0..30 {
            let r = run_src(src, 2, seed);
            assert!(r.deadlock.is_none(), "seed {seed} deadlocked");
        }
    }

    #[test]
    fn omp_for_distributes_iterations() {
        let r = run_src(
            r#"
            program loops {
                mpi_init_thread(multiple);
                shared int acc = 0;
                omp parallel num_threads(4) {
                    omp for i in 0..16 {
                        omp critical(sum) { acc = acc + i; }
                    }
                }
                mpi_finalize();
            }
            "#,
            1,
            5,
        );
        assert!(r.clean());
    }

    #[test]
    fn sections_and_single_and_master_run() {
        let r = run_src(
            r#"
            program ctor {
                mpi_init_thread(multiple);
                omp parallel num_threads(3) {
                    omp sections {
                        section { compute(5); }
                        section { compute(6); }
                    }
                    omp single { compute(7); }
                    omp master { compute(8); }
                    omp barrier;
                }
                mpi_finalize();
            }
            "#,
            1,
            6,
        );
        assert!(r.clean(), "{:?}", r.runtime_errors);
    }

    #[test]
    fn collectives_in_and_out_of_regions() {
        let r = run_src(
            r#"
            program colls {
                mpi_init_thread(multiple);
                mpi_bcast(root: 0, count: 8);
                mpi_allreduce(sum, count: 4);
                omp parallel num_threads(2) {
                    omp master { mpi_barrier(); }
                }
                mpi_reduce(max, root: 0, count: 2);
                mpi_finalize();
            }
            "#,
            4,
            7,
        );
        assert!(r.clean());
        assert!(r.mpi_errors.is_empty());
    }

    #[test]
    fn nonblocking_requests_roundtrip() {
        let r = run_src(
            r#"
            program nb {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_isend(to: 1, tag: 3, count: 2, req: s);
                    mpi_wait(req: s);
                }
                if (rank == 1) {
                    mpi_irecv(from: 0, tag: 3, req: m);
                    mpi_wait(req: m);
                }
                mpi_finalize();
            }
            "#,
            2,
            8,
        );
        assert!(r.clean());
        assert!(r.mpi_errors.is_empty());
    }

    #[test]
    fn shared_request_double_wait_is_an_incident() {
        // Two threads wait on the same shared request: the second completion
        // is the paper's request violation — the simulator reports it as a
        // non-fatal incident and execution continues.
        let src = r#"
            program reqrace {
                mpi_init_thread(multiple);
                if (rank == 0) {
                    mpi_send(to: 1, tag: 0, count: 1);
                }
                if (rank == 1) {
                    mpi_irecv(from: 0, tag: 0, req: shared_r);
                    omp parallel num_threads(2) {
                        mpi_wait(req: shared_r);
                    }
                }
                mpi_finalize();
            }
        "#;
        let mut saw_consumed = false;
        for seed in 0..20 {
            let r = run_src(src, 2, seed);
            if r.mpi_errors
                .iter()
                .any(|i| i.error.contains("already completed"))
            {
                saw_consumed = true;
            }
            assert!(r.deadlock.is_none());
        }
        assert!(saw_consumed, "double-wait incident must be observed");
    }

    #[test]
    fn probe_then_recv_works() {
        let r = run_src(
            r#"
            program pr {
                mpi_init_thread(multiple);
                if (rank == 0) { mpi_send(to: 1, tag: 5, count: 1); }
                if (rank == 1) {
                    mpi_probe(from: 0, tag: 5);
                    mpi_recv(from: 0, tag: 5);
                }
                mpi_finalize();
            }
            "#,
            2,
            9,
        );
        assert!(r.clean());
    }

    #[test]
    fn base_instrumentation_records_nothing() {
        let p = parse(
            "program quiet { mpi_init_thread(multiple); omp parallel num_threads(2) { mpi_barrier(); } mpi_finalize(); }",
        )
        .unwrap();
        let cfg = RunConfig::test(2, 10).with_instrumentation(Instrumentation::base());
        let r = run(&p, &cfg);
        assert!(r.clean());
        assert_eq!(r.trace.len(), 0);
        assert_eq!(r.events_recorded, 0);
    }

    #[test]
    fn runtime_errors_are_reported() {
        let r = run_src(
            r#"
            program bad {
                mpi_init_thread(multiple);
                if (rank == 0) { nosuchvar = 3; }
                mpi_finalize();
            }
            "#,
            2,
            11,
        );
        assert!(!r.runtime_errors.is_empty());
    }

    #[test]
    fn deterministic_trace_for_fixed_seed() {
        let src = r#"
            program det {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) {
                    mpi_send(to: rank, tag: tid, count: 1);
                    mpi_recv(from: rank, tag: tid);
                }
                mpi_finalize();
            }
        "#;
        let r1 = run_src(src, 2, 42);
        let r2 = run_src(src, 2, 42);
        assert_eq!(r1.trace.len(), r2.trace.len());
        let k1: Vec<String> = r1.trace.events().iter().map(|e| e.to_string()).collect();
        let k2: Vec<String> = r2.trace.events().iter().map(|e| e.to_string()).collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn fork_and_join_events_present_per_rank() {
        let r = run_src(
            r#"
            program fj {
                mpi_init_thread(multiple);
                omp parallel num_threads(2) { compute(1); }
                mpi_finalize();
            }
            "#,
            2,
            12,
        );
        for rank in [Rank(0), Rank(1)] {
            let forks = r
                .trace
                .by_rank(rank)
                .filter(|e| matches!(e.kind, EventKind::Fork { .. }))
                .count();
            let joins = r
                .trace
                .by_rank(rank)
                .filter(|e| matches!(e.kind, EventKind::JoinRegion { .. }))
                .count();
            assert_eq!((forks, joins), (1, 1));
        }
    }

    #[test]
    fn events_carry_source_locations() {
        let r = run_src(
            "program locs {\nmpi_init_thread(multiple);\nomp parallel num_threads(2) {\nmpi_barrier();\n}\nmpi_finalize();\n}",
            1,
            13,
        );
        let barrier_write = r
            .trace
            .monitored_writes_of(MonitoredVar::Collective)
            .next()
            .expect("instrumented barrier present");
        let loc = barrier_write.loc.as_ref().unwrap();
        assert_eq!(loc.file, "locs.hmp");
        assert_eq!(loc.line, 4);
    }
}
