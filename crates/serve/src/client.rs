//! The client side of the serve protocol: submit a trace, query status,
//! stop the daemon. One connection per request; errors are strings ready
//! for CLI diagnostics.

use crate::protocol::{parse_reply, Reply};
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::Path;

fn connect(socket: &Path) -> Result<UnixStream, String> {
    UnixStream::connect(socket)
        .map_err(|e| format!("cannot connect to daemon at {}: {e}", socket.display()))
}

fn read_reply(stream: UnixStream) -> Result<Reply, String> {
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read daemon reply: {e}"))?;
    if line.trim().is_empty() {
        return Err("daemon closed the connection without replying".to_string());
    }
    parse_reply(&line)
}

/// Submit one HBT trace (raw bytes, header included) and return the
/// daemon's verdict. The write side is half-closed after sending so the
/// daemon sees a definite end of stream even for truncated traces.
pub fn submit(socket: &Path, trace: &[u8]) -> Result<Reply, String> {
    let mut stream = connect(socket)?;
    stream
        .write_all(trace)
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send trace to daemon: {e}"))?;
    stream
        .shutdown(Shutdown::Write)
        .map_err(|e| format!("cannot half-close the stream: {e}"))?;
    read_reply(stream)
}

fn command(socket: &Path, line: &str) -> Result<Reply, String> {
    let mut stream = connect(socket)?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send command to daemon: {e}"))?;
    read_reply(stream)
}

/// Fetch the daemon's aggregated fleet report.
pub fn status(socket: &Path) -> Result<Reply, String> {
    command(socket, "STATUS")
}

/// Liveness probe.
pub fn ping(socket: &Path) -> Result<Reply, String> {
    command(socket, "PING")
}

/// Ask the daemon to stop accepting and exit once in-flight ingest
/// sessions drain.
pub fn stop(socket: &Path) -> Result<Reply, String> {
    command(socket, "SHUTDOWN")
}
