//! Parallel HBT trace decoding for `home replay` / `home analyze`.
//!
//! v2 streams carry a seek index and self-contained compressed frames
//! ([`home_stream::scan_layout`]), so frame bodies inflate and decode
//! independently — this module fans them across the same scoped-thread
//! worker pattern the seed pipeline uses. v1 streams (and v2 streams
//! carrying plain records) fall back to the serial
//! [`home_stream::decode_sections`] path; both paths produce identical
//! sections, so downstream verdicts are byte-identical for every
//! `--jobs` value.

use crate::fanout::fan_out_indexed;
use home_stream::{
    decode_frame_records, decode_sections, scan_layout, sections_from_records, HbtSection,
};
use home_trace::HomeError;

/// Decode an HBT byte stream into its trace sections, inflating v2
/// frames in parallel across `jobs` workers. The first frame error in
/// stream order wins, matching what the serial reader would report
/// first.
pub fn decode_trace(bytes: &[u8], jobs: usize) -> Result<Vec<HbtSection>, HomeError> {
    let layout = match scan_layout(bytes)? {
        Some(layout) if jobs > 1 && layout.frames.len() > 1 => layout,
        _ => return decode_sections(bytes),
    };
    let slots = fan_out_indexed(&layout.frames, jobs, |_, frame| {
        decode_frame_records(bytes, frame)
    });
    let mut records = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let decoded = slot.unwrap_or_else(|| {
            Err(HomeError::corrupt_trace(format!(
                "HBT frame {i} produced no decode result"
            )))
        })?;
        records.extend(decoded);
    }
    Ok(sections_from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use home_stream::HbtWriter;
    use home_trace::{BarrierId, Event, EventKind, Rank, RegionId, SrcLoc, Tid};

    fn sample_event(seq: u64) -> Event {
        Event {
            seq,
            rank: Rank(1),
            tid: Tid(2),
            region: Some(RegionId(3)),
            time_ns: 400,
            loc: Some(SrcLoc::new("x.hmp", 9)),
            kind: EventKind::Barrier {
                barrier: BarrierId(0),
                epoch: 1,
            },
        }
    }

    fn big_v2_stream() -> Vec<u8> {
        let mut w = HbtWriter::new_compressed(Vec::new()).unwrap();
        for seed in [7u64, 8, 9] {
            w.begin_run(seed).unwrap();
            for seq in 0..40_000 {
                w.write_event(&sample_event(seq)).unwrap();
            }
        }
        w.finish().unwrap()
    }

    #[test]
    fn parallel_decode_matches_serial_for_every_jobs() {
        let bytes = big_v2_stream();
        let serial = decode_sections(&bytes).unwrap();
        for jobs in [1, 2, 4, 8] {
            let parallel = decode_trace(&bytes, jobs).unwrap();
            assert_eq!(parallel.len(), serial.len(), "jobs {jobs}");
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.seed, s.seed);
                assert_eq!(p.trace.events(), s.trace.events());
                assert_eq!(p.incidents, s.incidents);
            }
        }
    }

    #[test]
    fn parallel_decode_of_corrupt_frame_is_typed_error() {
        let mut bytes = big_v2_stream();
        // Flip a byte deep inside a frame body (past the header region).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        for jobs in [1, 4] {
            let err = match decode_trace(&bytes, jobs) {
                Err(e) => e,
                Ok(_) => continue, // the flip may land in slack the codec tolerates
            };
            assert!(format!("{err}").contains("byte"), "jobs {jobs}: {err}");
        }
    }
}
