//! # home-sched — deterministic virtual-thread scheduler
//!
//! The substrate underneath the HOME checker's simulated MPI ranks and
//! OpenMP threads. Every concurrent entity in the simulation (an MPI rank,
//! an OpenMP worker inside a rank) is a *virtual thread*: an OS thread whose
//! progress is gated by this scheduler.
//!
//! Two execution modes are supported:
//!
//! * [`SchedMode::Free`] — no gating; virtual threads run with real OS
//!   concurrency. Useful for stress testing and wall-clock benchmarks.
//! * [`SchedMode::Deterministic`] — exactly one virtual thread runs at a
//!   time; at every *yield point* the scheduler picks the next runnable
//!   thread according to a [`SchedPolicy`] (seeded random, round-robin, or
//!   earliest-virtual-clock-first). A fixed seed reproduces the exact same
//!   interleaving, which is what lets the test suite reproduce
//!   schedule-dependent behaviour such as races that only manifest under
//!   some interleavings.
//!
//! The scheduler also maintains a **virtual clock** per thread (nanosecond
//! resolution). Simulated compute charges time with [`Runtime::advance_ns`],
//! message deliveries propagate clocks across threads, and the maximum
//! per-thread clock at the end of a run is the simulated makespan reported
//! by the benchmark harness.
//!
//! Finally, the deterministic mode performs **whole-system deadlock
//! detection**: if every live virtual thread is blocked, all blocked threads
//! are woken with [`SchedError::Deadlock`], carrying a report of who was
//! blocked on what. This is how the paper's Figure 2 case study (two threads
//! per rank receiving with the same tag) is caught deterministically.
//!
//! ## Example
//!
//! ```
//! use home_sched::{Runtime, SchedConfig};
//!
//! let rt = Runtime::new(SchedConfig::deterministic(42));
//! let h1 = rt.spawn("worker-0", {
//!     let rt = rt.clone();
//!     move || { rt.advance_ns(100); 1 }
//! });
//! let h2 = rt.spawn("worker-1", {
//!     let rt = rt.clone();
//!     move || { rt.advance_ns(250); 2 }
//! });
//! rt.run();
//! assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 3);
//! assert_eq!(rt.makespan().as_nanos(), 250);
//! ```

mod clock;
mod config;
mod deadlock;
mod handle;
mod policy;
mod runtime;
mod semaphore;
mod state;
mod vtid;

pub use clock::SimTime;
pub use config::{SchedConfig, SchedMode, PRIORITY_BASE_MAX, PRIORITY_BASE_MIN};
pub use deadlock::{BlockedThread, DeadlockInfo};
pub use handle::{JoinError, JoinHandle};
pub use policy::SchedPolicy;
pub use runtime::{current_runtime, current_vtid, Runtime};
pub use semaphore::SimSemaphore;
pub use state::BlockReason;
pub use vtid::Vtid;

/// Errors surfaced to virtual threads by scheduler primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Every live virtual thread was blocked; the run cannot make progress.
    Deadlock(DeadlockInfo),
    /// The runtime was shut down while this thread was blocked.
    Shutdown,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Deadlock(info) => write!(f, "deadlock detected: {info}"),
            SchedError::Shutdown => write!(f, "runtime shut down"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Result alias for scheduler primitives that can observe a deadlock.
pub type SchedResult<T> = Result<T, SchedError>;
