//! The paper's Figure 2 case study: two processes × two threads exchanging
//! messages with one shared tag under `MPI_THREAD_MULTIPLE`. Arrival
//! messages are not differentiated per thread, violating the thread-safety
//! specification; the paper's fix is "to use thread ID as tag".
//!
//! ```text
//! cargo run --example case_study_2
//! ```

use home::prelude::*;

const FIGURE_2: &str = r#"
program case_study_2 {
    mpi_init_thread(multiple);
    shared int tag = 0;
    omp parallel num_threads(2) {
        if (rank == 0) {
            mpi_send(to: 1, tag: tag, count: 1);
            mpi_recv(from: 1, tag: tag);
        }
        if (rank == 1) {
            mpi_recv(from: 0, tag: tag);
            mpi_send(to: 0, tag: tag, count: 1);
        }
    }
    mpi_finalize();
}
"#;

const FIGURE_2_FIXED: &str = r#"
program case_study_2_fixed {
    mpi_init_thread(multiple);
    omp parallel num_threads(2) {
        if (rank == 0) {
            mpi_send(to: 1, tag: tid, count: 1);
            mpi_recv(from: 1, tag: tid);
        }
        if (rank == 1) {
            mpi_recv(from: 0, tag: tid);
            mpi_send(to: 0, tag: tid, count: 1);
        }
    }
    mpi_finalize();
}
"#;

fn main() {
    let program = parse(FIGURE_2).expect("valid DSL");
    let report = check(&program, &CheckOptions::default());
    print!("{}", report.render());
    assert!(
        report.has(ViolationKind::ConcurrentRecv),
        "HOME must flag the shared-tag concurrent receives"
    );
    println!("\nFigure 2 verdict: concurrent-receive violation detected (shared tag 0).");

    // The static phase already hints at the precision story: the shared-tag
    // receives are not thread-distinct; the fixed version's are.
    let sr = analyze(&program);
    let broken_tags = sr
        .checklist
        .sites
        .iter()
        .filter(|s| s.instrument && s.tag_thread_distinct == Some(false))
        .count();
    println!("static hint: {broken_tags} instrumented call(s) with non-thread-distinct tags");

    let fixed = parse(FIGURE_2_FIXED).expect("valid DSL");
    let report_fixed = check(&fixed, &CheckOptions::default());
    assert!(
        report_fixed.violations.is_empty(),
        "thread-id tags fix it: {}",
        report_fixed.render()
    );
    println!("With `tag: tid` (the paper's fix): no violations, no deadlocks.");
}
