//! # home-explore — guided schedule-space exploration
//!
//! The HOME detector is predictive (lockset + happens-before: races need
//! not manifest to be reported), but it can only analyze code that
//! *executed*. A schedule-dependent branch that never runs is invisible,
//! and seeded uniform-random interleaving — the checker's default — is
//! exactly the coverage strategy whose misses the paper measures in its
//! Marmot comparison. This crate turns the deterministic step-token
//! scheduler into a bug hunter: it drives the existing
//! `sched`/`interp`/`core::Session` pipeline through many schedules,
//! choosing *which* schedules to run.
//!
//! Three strategies, layered on [`home_sched::SchedPolicy::Priority`]:
//!
//! * **PCT priority schedules** ([`Strategy::Pct`]) — every thread draws a
//!   random priority at spawn, the highest-priority runnable thread always
//!   runs, and `d` seed-derived priority-change points demote the would-be
//!   winner. For a bug of depth `d` this finds it with probability
//!   ≥ 1/(k·n^(d-1)) per schedule (Burckhardt et al., ASPLOS 2010) —
//!   polynomial where uniform random is exponential. Each schedule is the
//!   reproducible token `(seed, depth)`.
//! * **Race-directed rescheduling** ([`Strategy::Directed`]) — when a run
//!   surfaces a *suspect* (a plain-variable race, or a monitored race the
//!   rules could not classify), the explorer re-runs the same seed with
//!   the two racing threads' priorities pinned to flip the observed order
//!   of the two accesses, forcing the interleaving that would confirm or
//!   kill the suspicion.
//! * **DPOR-lite pruning** (always on) — every executed schedule is
//!   reduced to a [`schedule_fingerprint`]: a hash of its
//!   happens-before-relevant per-rank event projections. Detection is
//!   per-rank, so two schedules with equal fingerprints get identical
//!   verdicts; the second one is counted as *deduplicated* and skipped
//!   instead of re-detected.
//!
//! The [`explore`] budget loop fans fixed-size schedule batches over the
//! same indexed fan-out the seed pipeline uses, so reports are
//! byte-identical for every `--jobs` value, and aggregates violations by
//! the core identity key `(kind, rank, locations)` — first schedule to
//! find a violation wins the attribution.

// Same posture as home-core: exploration must degrade (failed schedule →
// partial report), never abort.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod explorer;
mod fingerprint;
mod token;

pub use explorer::{explore, Coverage, ExploreOptions, ExploreReport, FoundViolation, Strategy};
pub use fingerprint::schedule_fingerprint;
pub use token::{ScheduleToken, DIRECTED_HIGH, DIRECTED_LOW};
