//! Recursive-descent parser for the hybrid mini-language.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.to_string(),
            line: e.line,
        }
    }
}

/// Parse a whole program:
///
/// ```text
/// program name {
///     mpi_init_thread(multiple);
///     shared int tag = 0;
///     omp parallel num_threads(2) {
///         if (rank == 0) { mpi_send(to: 1, tag: tag, count: 1); }
///     }
///     mpi_finalize();
/// }
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_id: 0,
    };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek()))
        }
    }

    fn new_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn mk(&mut self, line: u32, kind: StmtKind) -> Stmt {
        Stmt {
            id: self.new_id(),
            line,
            kind,
        }
    }

    // ---- grammar ----------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect_kw("program")?;
        let name = self.expect_ident()?;
        // Program block, with `fn name() { ... }` definitions allowed at
        // the top level alongside statements.
        self.expect(Tok::LBrace)?;
        let mut functions = Vec::new();
        let mut body = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return self.err("unexpected end of input inside program");
            }
            if matches!(self.peek(), Tok::Ident(s) if s == "fn") {
                let line = self.line();
                self.bump();
                let fname = self.expect_ident()?;
                self.expect(Tok::LParen)?;
                self.expect(Tok::RParen)?;
                let fbody = self.block()?;
                if functions.iter().any(|f: &FuncDef| f.name == fname) {
                    return Err(ParseError {
                        msg: format!("duplicate function `{fname}`"),
                        line,
                    });
                }
                functions.push(FuncDef {
                    name: fname,
                    line,
                    body: fbody,
                });
            } else {
                body.push(self.stmt()?);
            }
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Eof)?;
        Ok(Program {
            name,
            functions,
            body,
            node_count: self.next_id,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return self.err("unexpected end of input inside block");
            }
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Ident(kw) => match kw.as_str() {
                "shared" => {
                    self.bump();
                    self.expect_kw("int")?;
                    self.decl(line, true)
                }
                "int" => {
                    self.bump();
                    self.decl(line, false)
                }
                "if" => self.if_stmt(line),
                "for" => {
                    self.bump();
                    let var = self.expect_ident()?;
                    self.expect_kw("in")?;
                    let from = self.expr()?;
                    self.expect(Tok::DotDot)?;
                    let to = self.expr()?;
                    let body = self.block()?;
                    Ok(self.mk(
                        line,
                        StmtKind::For {
                            var,
                            from,
                            to,
                            body,
                        },
                    ))
                }
                "omp" => self.omp_stmt(line),
                "compute" => self.compute_stmt(line),
                "call" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(Tok::LParen)?;
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Semi)?;
                    Ok(self.mk(line, StmtKind::Call { name }))
                }
                name if name.starts_with("mpi_") => self.mpi_stmt(line),
                _ => {
                    // Assignment.
                    let name = self.expect_ident()?;
                    self.expect(Tok::Assign)?;
                    let value = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(self.mk(line, StmtKind::Assign { name, value }))
                }
            },
            other => self.err(format!("expected statement, found {other}")),
        }
    }

    fn decl(&mut self, line: u32, shared: bool) -> Result<Stmt, ParseError> {
        let name = self.expect_ident()?;
        let init = if *self.peek() == Tok::Assign {
            self.bump();
            self.expr()?
        } else {
            Expr::Int(0)
        };
        self.expect(Tok::Semi)?;
        Ok(self.mk(line, StmtKind::Decl { name, shared, init }))
    }

    fn if_stmt(&mut self, line: u32) -> Result<Stmt, ParseError> {
        self.expect_kw("if")?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_block = self.block()?;
        let else_block = if self.eat_kw("else") {
            self.block()?
        } else {
            Vec::new()
        };
        Ok(self.mk(
            line,
            StmtKind::If {
                cond,
                then_block,
                else_block,
            },
        ))
    }

    fn omp_stmt(&mut self, line: u32) -> Result<Stmt, ParseError> {
        self.expect_kw("omp")?;
        let which = self.expect_ident()?;
        match which.as_str() {
            "parallel" => {
                let num_threads = if self.eat_kw("num_threads") {
                    self.expect(Tok::LParen)?;
                    let e = self.expr()?;
                    self.expect(Tok::RParen)?;
                    e
                } else {
                    Expr::Int(2)
                };
                let body = self.block()?;
                Ok(self.mk(line, StmtKind::OmpParallel { num_threads, body }))
            }
            "for" => {
                let schedule = if self.eat_kw("schedule") {
                    self.expect(Tok::LParen)?;
                    let s = self.expect_ident()?;
                    let sched = match s.as_str() {
                        "static" => Schedule::Static,
                        "dynamic" => {
                            let chunk = if *self.peek() == Tok::Comma {
                                self.bump();
                                match self.bump() {
                                    Tok::Int(v) if v > 0 => v as u64,
                                    other => {
                                        return self
                                            .err(format!("expected chunk size, found {other}"))
                                    }
                                }
                            } else {
                                1
                            };
                            Schedule::Dynamic { chunk }
                        }
                        other => return self.err(format!("unknown schedule `{other}`")),
                    };
                    self.expect(Tok::RParen)?;
                    sched
                } else {
                    Schedule::Static
                };
                let var = self.expect_ident()?;
                self.expect_kw("in")?;
                let from = self.expr()?;
                self.expect(Tok::DotDot)?;
                let to = self.expr()?;
                let body = self.block()?;
                Ok(self.mk(
                    line,
                    StmtKind::OmpFor {
                        var,
                        from,
                        to,
                        schedule,
                        body,
                    },
                ))
            }
            "sections" => {
                self.expect(Tok::LBrace)?;
                let mut sections = Vec::new();
                while self.eat_kw("section") {
                    sections.push(self.block()?);
                }
                self.expect(Tok::RBrace)?;
                if sections.is_empty() {
                    return self.err("omp sections needs at least one section");
                }
                Ok(self.mk(line, StmtKind::OmpSections { sections }))
            }
            "single" => {
                let body = self.block()?;
                Ok(self.mk(line, StmtKind::OmpSingle { body }))
            }
            "master" => {
                let body = self.block()?;
                Ok(self.mk(line, StmtKind::OmpMaster { body }))
            }
            "critical" => {
                let name = if *self.peek() == Tok::LParen {
                    self.bump();
                    let n = self.expect_ident()?;
                    self.expect(Tok::RParen)?;
                    n
                } else {
                    "unnamed".to_string()
                };
                let body = self.block()?;
                Ok(self.mk(line, StmtKind::OmpCritical { name, body }))
            }
            "barrier" => {
                self.expect(Tok::Semi)?;
                Ok(self.mk(line, StmtKind::OmpBarrier))
            }
            "atomic" => {
                let name = self.expect_ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(self.mk(line, StmtKind::OmpAtomic { name, value }))
            }
            other => self.err(format!("unknown omp construct `{other}`")),
        }
    }

    fn compute_stmt(&mut self, line: u32) -> Result<Stmt, ParseError> {
        self.expect_kw("compute")?;
        self.expect(Tok::LParen)?;
        let flops = self.expr()?;
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        while *self.peek() == Tok::Comma {
            self.bump();
            let key = self.expect_ident()?;
            self.expect(Tok::Colon)?;
            let list = match key.as_str() {
                "reads" => &mut reads,
                "writes" => &mut writes,
                other => return self.err(format!("unknown compute clause `{other}`")),
            };
            // One or more identifiers.
            list.push(self.expect_ident()?);
            while matches!(self.peek(), Tok::Ident(_)) {
                list.push(self.expect_ident()?);
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        Ok(self.mk(
            line,
            StmtKind::Compute {
                flops,
                reads,
                writes,
            },
        ))
    }

    /// Parse `key: expr` argument lists for MPI calls.
    fn mpi_args(&mut self) -> Result<Vec<(String, Expr)>, ParseError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let key = self.expect_ident()?;
                // Bare keyword argument (thread level / reduce op).
                if *self.peek() == Tok::Colon {
                    self.bump();
                    let value = self.expr()?;
                    args.push((key, value));
                } else {
                    args.push((key, Expr::Int(i64::MIN))); // marker for bare keyword
                }
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn take_arg(&self, args: &mut Vec<(String, Expr)>, keys: &[&str]) -> Option<Expr> {
        let pos = args.iter().position(|(k, _)| keys.contains(&k.as_str()))?;
        Some(args.remove(pos).1)
    }

    fn take_bare(&self, args: &mut Vec<(String, Expr)>) -> Option<String> {
        let pos = args.iter().position(|(_, v)| *v == Expr::Int(i64::MIN))?;
        Some(args.remove(pos).0)
    }

    fn mpi_stmt(&mut self, line: u32) -> Result<Stmt, ParseError> {
        let name = self.expect_ident()?;
        let mut args = self.mpi_args()?;
        self.expect(Tok::Semi)?;
        let one = Expr::Int(1);
        let call = match name.as_str() {
            "mpi_init" => MpiStmt::Init,
            "mpi_init_thread" => {
                let level = self.take_bare(&mut args).ok_or_else(|| ParseError {
                    msg: "mpi_init_thread needs a thread level".into(),
                    line,
                })?;
                let required = match level.as_str() {
                    "single" => IrThreadLevel::Single,
                    "funneled" => IrThreadLevel::Funneled,
                    "serialized" => IrThreadLevel::Serialized,
                    "multiple" => IrThreadLevel::Multiple,
                    other => {
                        return Err(ParseError {
                            msg: format!("unknown thread level `{other}`"),
                            line,
                        })
                    }
                };
                MpiStmt::InitThread { required }
            }
            "mpi_finalize" => MpiStmt::Finalize,
            "mpi_send" => MpiStmt::Send {
                dest: self
                    .take_arg(&mut args, &["to", "dest"])
                    .ok_or_else(|| ParseError {
                        msg: "mpi_send needs `to:`".into(),
                        line,
                    })?,
                tag: self.take_arg(&mut args, &["tag"]).unwrap_or(Expr::Int(0)),
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_ssend" => MpiStmt::Ssend {
                dest: self
                    .take_arg(&mut args, &["to", "dest"])
                    .ok_or_else(|| ParseError {
                        msg: "mpi_ssend needs `to:`".into(),
                        line,
                    })?,
                tag: self.take_arg(&mut args, &["tag"]).unwrap_or(Expr::Int(0)),
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_recv" => MpiStmt::Recv {
                src: self
                    .take_arg(&mut args, &["from", "src"])
                    .unwrap_or(Expr::Any),
                tag: self.take_arg(&mut args, &["tag"]).unwrap_or(Expr::Any),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_isend" => {
                let req = self.req_arg(&mut args, line)?;
                MpiStmt::Isend {
                    dest: self
                        .take_arg(&mut args, &["to", "dest"])
                        .ok_or_else(|| ParseError {
                            msg: "mpi_isend needs `to:`".into(),
                            line,
                        })?,
                    tag: self.take_arg(&mut args, &["tag"]).unwrap_or(Expr::Int(0)),
                    count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                    req,
                    comm: self.comm_arg(&mut args, line)?,
                }
            }
            "mpi_irecv" => {
                let req = self.req_arg(&mut args, line)?;
                MpiStmt::Irecv {
                    src: self
                        .take_arg(&mut args, &["from", "src"])
                        .unwrap_or(Expr::Any),
                    tag: self.take_arg(&mut args, &["tag"]).unwrap_or(Expr::Any),
                    req,
                    comm: self.comm_arg(&mut args, line)?,
                }
            }
            "mpi_wait" => MpiStmt::Wait {
                req: self.req_arg(&mut args, line)?,
            },
            "mpi_test" => MpiStmt::Test {
                req: self.req_arg(&mut args, line)?,
            },
            "mpi_waitall" => {
                // `reqs:` takes one or more bare identifiers; the first is
                // parsed as the keyed value, the rest arrive as bare args.
                let mut reqs = Vec::new();
                if let Some(Expr::Var(first)) = self.take_arg(&mut args, &["reqs", "req"]) {
                    reqs.push(first);
                }
                while let Some(name) = self.take_bare(&mut args) {
                    reqs.push(name);
                }
                if reqs.is_empty() {
                    return Err(ParseError {
                        msg: "mpi_waitall needs `reqs: r1 r2 ...`".into(),
                        line,
                    });
                }
                MpiStmt::Waitall { reqs }
            }
            "mpi_probe" => MpiStmt::Probe {
                src: self
                    .take_arg(&mut args, &["from", "src"])
                    .unwrap_or(Expr::Any),
                tag: self.take_arg(&mut args, &["tag"]).unwrap_or(Expr::Any),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_iprobe" => MpiStmt::Iprobe {
                src: self
                    .take_arg(&mut args, &["from", "src"])
                    .unwrap_or(Expr::Any),
                tag: self.take_arg(&mut args, &["tag"]).unwrap_or(Expr::Any),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_barrier" => MpiStmt::Barrier {
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_bcast" => MpiStmt::Bcast {
                root: self.take_arg(&mut args, &["root"]).unwrap_or(Expr::Int(0)),
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_reduce" => MpiStmt::Reduce {
                op: self.reduce_op(&mut args, line)?,
                root: self.take_arg(&mut args, &["root"]).unwrap_or(Expr::Int(0)),
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_allreduce" => MpiStmt::Allreduce {
                op: self.reduce_op(&mut args, line)?,
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_gather" => MpiStmt::Gather {
                root: self.take_arg(&mut args, &["root"]).unwrap_or(Expr::Int(0)),
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_allgather" => MpiStmt::Allgather {
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_scatter" => MpiStmt::Scatter {
                root: self.take_arg(&mut args, &["root"]).unwrap_or(Expr::Int(0)),
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one.clone()),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_alltoall" => MpiStmt::Alltoall {
                count: self.take_arg(&mut args, &["count"]).unwrap_or(one),
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_comm_dup" => MpiStmt::CommDup {
                into: self.handle_arg(&mut args, "into", line)?,
                comm: self.comm_arg(&mut args, line)?,
            },
            "mpi_comm_split" => MpiStmt::CommSplit {
                color: self
                    .take_arg(&mut args, &["color"])
                    .ok_or_else(|| ParseError {
                        msg: "mpi_comm_split needs `color:`".into(),
                        line,
                    })?,
                key: self.take_arg(&mut args, &["key"]).unwrap_or(Expr::Rank),
                into: self.handle_arg(&mut args, "into", line)?,
                comm: self.comm_arg(&mut args, line)?,
            },
            other => {
                return Err(ParseError {
                    msg: format!("unknown MPI call `{other}`"),
                    line,
                })
            }
        };
        if let Some((k, _)) = args.first() {
            return Err(ParseError {
                msg: format!("unexpected argument `{k}` for {name}"),
                line,
            });
        }
        Ok(self.mk(line, StmtKind::Mpi(call)))
    }

    /// Optional `comm: name` argument (the value must be an identifier).
    fn comm_arg(
        &self,
        args: &mut Vec<(String, Expr)>,
        line: u32,
    ) -> Result<Option<String>, ParseError> {
        match self.take_arg(args, &["comm"]) {
            Some(Expr::Var(name)) => Ok(Some(name)),
            Some(_) => Err(ParseError {
                msg: "`comm:` must name a communicator variable".into(),
                line,
            }),
            None => Ok(None),
        }
    }

    /// Named handle argument (e.g. `into: c`), value must be an identifier.
    fn handle_arg(
        &self,
        args: &mut Vec<(String, Expr)>,
        key: &str,
        line: u32,
    ) -> Result<String, ParseError> {
        match self.take_arg(args, &[key]) {
            Some(Expr::Var(name)) => Ok(name),
            _ => Err(ParseError {
                msg: format!("missing `{key}:` handle argument"),
                line,
            }),
        }
    }

    fn req_arg(&self, args: &mut Vec<(String, Expr)>, line: u32) -> Result<String, ParseError> {
        match self.take_arg(args, &["req"]) {
            Some(Expr::Var(name)) => Ok(name),
            Some(_) => Err(ParseError {
                msg: "`req:` must name a request variable".into(),
                line,
            }),
            None => match args.iter().position(|(_, v)| *v == Expr::Int(i64::MIN)) {
                // Allow `mpi_wait(r1)` — bare identifier.
                Some(pos) => Ok(args.remove(pos).0),
                None => Err(ParseError {
                    msg: "missing `req:` argument".into(),
                    line,
                }),
            },
        }
    }

    fn reduce_op(
        &self,
        args: &mut Vec<(String, Expr)>,
        line: u32,
    ) -> Result<IrReduceOp, ParseError> {
        let bare = self.take_bare_op(args);
        match bare.as_deref() {
            Some("sum") => Ok(IrReduceOp::Sum),
            Some("prod") => Ok(IrReduceOp::Prod),
            Some("min") => Ok(IrReduceOp::Min),
            Some("max") => Ok(IrReduceOp::Max),
            Some(other) => Err(ParseError {
                msg: format!("unknown reduce op `{other}`"),
                line,
            }),
            None => Ok(IrReduceOp::Sum),
        }
    }

    fn take_bare_op(&self, args: &mut Vec<(String, Expr)>) -> Option<String> {
        self.take_bare(args)
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.unary_expr()?)))
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(match s.as_str() {
                    "rank" => Expr::Rank,
                    "size" => Expr::Size,
                    "tid" => Expr::ThreadId,
                    "nthreads" => Expr::NumThreads,
                    "any" => Expr::Any,
                    _ => Expr::Var(s),
                })
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_case_study_2() {
        let src = r#"
            program case2 {
                mpi_init_thread(multiple);
                shared int tag = 0;
                omp parallel num_threads(2) {
                    for j in 0..2 {
                        if (rank == 0) {
                            mpi_send(to: 1, tag: tag, count: 1);
                            mpi_recv(from: 1, tag: tag);
                        }
                        if (rank == 1) {
                            mpi_recv(from: 0, tag: tag);
                            mpi_send(to: 0, tag: tag, count: 1);
                        }
                    }
                }
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.name, "case2");
        assert_eq!(p.mpi_calls().len(), 6);
        // Node ids dense and unique.
        let mut ids = Vec::new();
        p.visit(&mut |s| ids.push(s.id.0));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert_eq!(p.node_count as usize, ids.len());
    }

    #[test]
    fn parses_sections_single_master_critical_barrier() {
        let src = r#"
            program constructs {
                omp parallel num_threads(4) {
                    omp sections {
                        section { compute(10); }
                        section { compute(20); }
                    }
                    omp single { compute(1); }
                    omp master { compute(2); }
                    omp critical(update) { compute(3); }
                    omp barrier;
                }
            }
        "#;
        let p = parse(src).unwrap();
        // parallel + sections + 2 section computes + single + compute +
        // master + compute + critical + compute + barrier = 11 statements.
        assert_eq!(p.stmt_count(), 11);
    }

    #[test]
    fn parses_omp_for_schedules() {
        let src = r#"
            program loops {
                omp parallel {
                    omp for i in 0..100 { compute(i); }
                    omp for schedule(static) i in 0..10 { compute(1); }
                    omp for schedule(dynamic, 4) i in 0..10 { compute(1); }
                }
            }
        "#;
        let p = parse(src).unwrap();
        let mut schedules = Vec::new();
        p.visit(&mut |s| {
            if let StmtKind::OmpFor { schedule, .. } = &s.kind {
                schedules.push(schedule.clone());
            }
        });
        assert_eq!(
            schedules,
            vec![
                Schedule::Static,
                Schedule::Static,
                Schedule::Dynamic { chunk: 4 }
            ]
        );
    }

    #[test]
    fn parses_nonblocking_and_probe() {
        let src = r#"
            program nb {
                mpi_init_thread(multiple);
                mpi_irecv(from: any, tag: any, req: r1);
                mpi_isend(to: 1, tag: 5, count: 10, req: r2);
                mpi_wait(r1);
                mpi_test(r2);
                mpi_probe(from: 0, tag: 3);
                mpi_iprobe(from: any, tag: any);
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.mpi_calls().len(), 8);
        let mut reqs = Vec::new();
        p.visit(&mut |s| {
            if let StmtKind::Mpi(MpiStmt::Wait { req } | MpiStmt::Test { req }) = &s.kind {
                reqs.push(req.clone());
            }
        });
        assert_eq!(reqs, vec!["r1".to_string(), "r2".to_string()]);
    }

    #[test]
    fn parses_collectives() {
        let src = r#"
            program colls {
                mpi_init_thread(multiple);
                mpi_barrier();
                mpi_bcast(root: 0, count: 4);
                mpi_reduce(sum, root: 0, count: 2);
                mpi_allreduce(max, count: 1);
                mpi_gather(root: 1, count: 3);
                mpi_allgather(count: 1);
                mpi_scatter(root: 0, count: 8);
                mpi_alltoall(count: 2);
                mpi_finalize();
            }
        "#;
        let p = parse(src).unwrap();
        let colls = p
            .mpi_calls()
            .iter()
            .filter(|s| matches!(&s.kind, StmtKind::Mpi(m) if m.is_collective()))
            .count();
        assert_eq!(colls, 8);
    }

    #[test]
    fn expression_precedence() {
        let src =
            "program e { int x = 1 + 2 * 3; int y = (1 + 2) * 3; int z = rank == 0 && tid != 1; }";
        let p = parse(src).unwrap();
        let inits: Vec<&Expr> = p
            .body
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Decl { init, .. } => Some(init),
                _ => None,
            })
            .collect();
        assert_eq!(
            *inits[0],
            Expr::bin(
                BinOp::Add,
                Expr::int(1),
                Expr::bin(BinOp::Mul, Expr::int(2), Expr::int(3))
            )
        );
        assert_eq!(
            *inits[1],
            Expr::bin(
                BinOp::Mul,
                Expr::bin(BinOp::Add, Expr::int(1), Expr::int(2)),
                Expr::int(3)
            )
        );
        assert!(matches!(*inits[2], Expr::Bin(BinOp::And, _, _)));
    }

    #[test]
    fn error_reports_line() {
        let src = "program bad {\n  int x = ;\n}";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_mpi_call_is_rejected() {
        let e = parse("program bad { mpi_frobnicate(); }").unwrap_err();
        assert!(e.msg.contains("mpi_frobnicate"));
    }

    #[test]
    fn extra_argument_is_rejected() {
        let e = parse("program bad { mpi_send(to: 1, tag: 0, bogus: 3); }").unwrap_err();
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn source_lines_recorded() {
        let src = "program l {\nmpi_init();\n\nmpi_finalize();\n}";
        let p = parse(src).unwrap();
        assert_eq!(p.body[0].line, 2);
        assert_eq!(p.body[1].line, 4);
    }

    #[test]
    fn compute_clauses() {
        let p = parse("program c { compute(100, reads: a b, writes: c); }").unwrap();
        match &p.body[0].kind {
            StmtKind::Compute {
                flops,
                reads,
                writes,
            } => {
                assert_eq!(*flops, Expr::int(100));
                assert_eq!(reads, &vec!["a".to_string(), "b".to_string()]);
                assert_eq!(writes, &vec!["c".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
